"""Shared configuration for the experiment drivers.

The paper's software experiments run full-size RoBERTa / MobileBERT on real
GLUE / SQuAD data on a GPU; the reproduction uses scaled-down encoders and
synthetic tasks (see DESIGN.md).  This module centralises the experiment
scale so the table drivers, the examples and the benchmark harness all use
the same settings — and so a single knob (``ExperimentScale``) can shrink
everything for smoke tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..api import BackendSpec
from ..transformer.nonlinear_backend import ALL_OPS

__all__ = [
    "ExperimentScale",
    "DEFAULT_SCALE",
    "SMOKE_SCALE",
    "METHOD_LABELS",
    "PER_OPERATOR_GROUPS",
    "backend_variant_specs",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how much work the software experiments do."""

    #: Synthetic-task sizes (per task).
    num_train: int = 256
    num_test: int = 128
    sequence_length: int = 48
    #: Which GLUE tasks to run (None = all eight).
    glue_tasks: Sequence[str] | None = None
    #: Encoder seed (the "pre-trained checkpoint" identity).
    model_seed: int = 3
    #: Task / head seed.
    task_seed: int = 0
    #: LUT size used throughout (the paper's setting).
    num_lut_entries: int = 16
    #: Table-5 sequence-length sweep (None = the paper's full eight points).
    table5_sequence_lengths: Sequence[int] | None = None

    def spec_overrides(self) -> Dict[str, object]:
        """Overrides applied to every GLUE task spec."""
        return {
            "num_train": self.num_train,
            "num_test": self.num_test,
            "sequence_length": self.sequence_length,
        }


#: Scale used by the benchmark harness and EXPERIMENTS.md numbers.
DEFAULT_SCALE = ExperimentScale()

#: Much smaller scale for CI-style smoke runs and unit tests.
SMOKE_SCALE = ExperimentScale(
    num_train=96,
    num_test=64,
    sequence_length=32,
    glue_tasks=("SST-2", "MRPC"),
    table5_sequence_lengths=(16, 128, 1024),
)


#: Report-row labels per approximation method.
METHOD_LABELS: Dict[str, str] = {
    "exact": "Baseline",
    "nn_lut": "NN-LUT",
    "linear_lut": "Linear-LUT",
    "ibert": "I-BERT",
}

#: The per-operator sweep of Table 2(a): row-label suffix -> operators replaced.
PER_OPERATOR_GROUPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("GELU only", ("gelu",)),
    ("Softmax only", ("softmax",)),
    ("LayerNorm only", ("layernorm",)),
    ("Altogether", ALL_OPS),
)


def backend_variant_specs(
    num_entries: int = 16,
    methods: Sequence[str] = ("linear_lut", "nn_lut"),
    groups: Sequence[Tuple[str, Sequence[str]]] = PER_OPERATOR_GROUPS,
    precisions: Sequence[str] = ("fp32",),
    input_scaling: bool = True,
) -> Dict[str, BackendSpec]:
    """Labelled grid of backend variants: method x operator group x precision.

    This is the one definition of the variant dictionaries the table drivers
    sweep (Table 2(a)'s per-operator rows, Table 3's Softmax-only precision
    rows) — previously duplicated across ``table2.py`` and ``table3.py``.
    The precision tag only appears in labels when more than one precision is
    requested, matching the papers' row-naming conventions.
    """
    lut_methods = {"nn_lut", "linear_lut"}
    specs: Dict[str, BackendSpec] = {}
    for method in methods:
        # Only the LUT methods have precision/entry variants, and only the
        # non-exact methods vary per operator group; sweeping the rest would
        # fabricate duplicate rows under distinct labels.
        method_precisions: Sequence[str | None] = (
            precisions if method in lut_methods else (None,)
        )
        method_groups = groups if method != "exact" else (("", ()),)
        for group_label, ops in method_groups:
            for precision in method_precisions:
                parts = [METHOD_LABELS.get(method, method)]
                if group_label:
                    parts.append(group_label)
                if precision is not None and len(precisions) > 1:
                    parts.append(precision.upper())
                kwargs: Dict[str, object] = {}
                if method != "exact":
                    kwargs["replace"] = tuple(ops)
                if precision is not None:
                    kwargs.update(
                        precision=precision,
                        num_entries=num_entries,
                        input_scaling=input_scaling,
                    )
                label = " ".join(parts)
                if label in specs:
                    raise ValueError(
                        f"duplicate variant label {label!r}; a sweep row would be "
                        "silently dropped — give groups distinct labels"
                    )
                specs[label] = BackendSpec.from_method(method, **kwargs)
    return specs
