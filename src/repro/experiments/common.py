"""Shared configuration for the experiment drivers.

The paper's software experiments run full-size RoBERTa / MobileBERT on real
GLUE / SQuAD data on a GPU; the reproduction uses scaled-down encoders and
synthetic tasks (see DESIGN.md).  This module centralises the experiment
scale so the table drivers, the examples and the benchmark harness all use
the same settings — and so a single knob (``ExperimentScale``) can shrink
everything for smoke tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

__all__ = ["ExperimentScale", "DEFAULT_SCALE", "SMOKE_SCALE"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how much work the software experiments do."""

    #: Synthetic-task sizes (per task).
    num_train: int = 256
    num_test: int = 128
    sequence_length: int = 48
    #: Which GLUE tasks to run (None = all eight).
    glue_tasks: Sequence[str] | None = None
    #: Encoder seed (the "pre-trained checkpoint" identity).
    model_seed: int = 3
    #: Task / head seed.
    task_seed: int = 0
    #: LUT size used throughout (the paper's setting).
    num_lut_entries: int = 16

    def spec_overrides(self) -> Dict[str, object]:
        """Overrides applied to every GLUE task spec."""
        return {
            "num_train": self.num_train,
            "num_test": self.num_test,
            "sequence_length": self.sequence_length,
        }


#: Scale used by the benchmark harness and EXPERIMENTS.md numbers.
DEFAULT_SCALE = ExperimentScale()

#: Much smaller scale for CI-style smoke runs and unit tests.
SMOKE_SCALE = ExperimentScale(
    num_train=96,
    num_test=64,
    sequence_length=32,
    glue_tasks=("SST-2", "MRPC"),
)
