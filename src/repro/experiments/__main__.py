"""CLI for the experiment drivers.

Run any table / figure of the paper by name::

    PYTHONPATH=src python -m repro.experiments table2a
    PYTHONPATH=src python -m repro.experiments all --smoke

``--smoke`` switches the software experiments to the CI-sized scale
(``SMOKE_SCALE``) so a full sweep finishes in minutes.
"""

from __future__ import annotations

import argparse

from . import DEFAULT_SCALE, EXPERIMENT_NAMES, SMOKE_SCALE, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENT_NAMES + ("all",),
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the software experiments at the CI smoke scale",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else DEFAULT_SCALE
    names = EXPERIMENT_NAMES if args.experiment == "all" else (args.experiment,)
    for name in names:
        print(run_experiment(name, scale=scale).report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
