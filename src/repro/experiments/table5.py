"""Table 5: system-level cycle breakdown of RoBERTa inference on the NPU model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..analysis.reporting import format_table
from ..hardware.performance import (
    PAPER_SEQUENCE_LENGTHS,
    SystemComparison,
    run_system_comparison,
)

__all__ = ["Table5Result", "run_table5", "PAPER_SPEEDUPS"]

#: Speedups reported in the last row of the paper's Table 5.
PAPER_SPEEDUPS: Dict[int, float] = {
    16: 1.08, 32: 1.08, 64: 1.09, 128: 1.10, 256: 1.13, 384: 1.16, 512: 1.18, 1024: 1.26,
}


@dataclass
class Table5Result:
    """Cycle-breakdown sweep plus the speedup row."""

    comparison: SystemComparison

    def speedups(self) -> Dict[int, float]:
        return self.comparison.speedups()

    def report(self) -> str:
        categories = ("GELU", "LayerNorm", "Softmax", "MatMul", "etc.")
        rows = []
        for point in self.comparison.points:
            for label, breakdown in (("I-BERT", point.ibert), ("NN-LUT", point.nn_lut)):
                relative = breakdown.relative()
                rows.append(
                    [point.sequence_length, label] + [relative[c] for c in categories]
                )
        table = format_table(
            ["seq len", "method", "GELU %", "LayerNorm %", "Softmax %", "MatMul %", "etc. %"],
            rows,
        )
        speedup_rows = [
            [sl, speedup, PAPER_SPEEDUPS.get(sl, float("nan"))]
            for sl, speedup in self.speedups().items()
        ]
        speedup_table = format_table(
            ["seq len", "speedup (model)", "speedup (paper)"], speedup_rows, float_format="{:.3f}"
        )
        return (
            "Table 5 reproduction — relative computation cycles (%)\n"
            + table
            + "\n\nEnd-to-end speedup of NN-LUT over I-BERT\n"
            + speedup_table
        )


def run_table5(sequence_lengths: Sequence[int] = PAPER_SEQUENCE_LENGTHS) -> Table5Result:
    """Run the Table-5 sweep on the default RoBERTa-base workload."""
    return Table5Result(comparison=run_system_comparison(sequence_lengths))


def main() -> None:  # pragma: no cover - convenience entry point
    from . import run_experiment

    print(run_experiment("table5").report())


if __name__ == "__main__":  # pragma: no cover
    main()
