"""Figure 2: operator-level approximation accuracy, NN-LUT vs Linear-LUT."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.approx_error import operator_error_summary
from ..analysis.reporting import format_mapping_table
from ..baselines.linear_lut import linear_lut_for
from ..core.registry import LutRegistry, default_registry

__all__ = ["Figure2Result", "run_figure2"]


@dataclass
class Figure2Result:
    """Mean L1 error per operator for each approximation method."""

    errors: Dict[str, Dict[str, float]]
    num_entries: int

    def report(self) -> str:
        header = (
            f"Figure 2 reproduction — mean L1 error per operator "
            f"({self.num_entries}-entry LUTs)\n"
        )
        return header + format_mapping_table(self.errors, row_label="method", float_format="{:.4f}")


def run_figure2(
    num_entries: int = 16,
    registry: LutRegistry | None = None,
    num_points: int = 512,
    seed: int = 0,
) -> Figure2Result:
    """Compute the Figure-2 error comparison.

    The expected reproduction shape: both methods approximate GELU well;
    NN-LUT is substantially more accurate than Linear-LUT on Softmax and
    (especially) LayerNorm, whose primitives have a large dynamic range.
    """
    registry = registry or default_registry()
    nn_lut = {
        name: registry.lut(name, num_entries=num_entries)
        for name in ("gelu", "exp", "reciprocal", "rsqrt")
    }
    linear_lut = {
        name: linear_lut_for(name, num_entries=num_entries)
        for name in ("gelu", "exp", "reciprocal", "rsqrt")
    }
    errors = operator_error_summary(
        {"NN-LUT": nn_lut, "Linear-LUT": linear_lut}, num_points=num_points, seed=seed
    )
    return Figure2Result(errors=errors, num_entries=num_entries)


def main() -> None:  # pragma: no cover - convenience entry point
    print(run_figure2().report())


if __name__ == "__main__":  # pragma: no cover
    main()
