"""Table 3: MobileBERT / SQuAD with Softmax approximated (FP32 and FP16).

MobileBERT's transformer block uses ReLU and NoNorm, so Softmax is its only
transcendental operator; Table 3 therefore isolates the Softmax approximation
quality.  The reproduction compares Linear-LUT and NN-LUT, each with FP32 and
FP16 tables, against the exact baseline on the synthetic span-extraction task
(the MatMuls run in FP16 for the FP16 rows, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.reporting import format_table
from ..core.registry import LutRegistry, default_registry
from ..tasks.evaluation import SquadResult, evaluate_squad
from ..tasks.squad import SquadTaskSpec, generate_squad_task
from ..transformer.models import MobileBertLikeModel
from .common import DEFAULT_SCALE, ExperimentScale, backend_variant_specs

__all__ = ["Table3Result", "run_table3"]


@dataclass
class Table3Result:
    """F1 / EM per method for the Softmax-only approximation experiment."""

    results: Dict[str, SquadResult]

    def report(self) -> str:
        rows = [
            [name, result.f1, result.exact_match, result.f1 - self.results["Baseline"].f1]
            for name, result in self.results.items()
        ]
        table = format_table(["method", "F1", "EM", "F1 loss"], rows, float_format="{:.1f}")
        return "Table 3 reproduction — MobileBERT-like / synthetic SQuAD, Softmax only\n" + table


def run_table3(
    scale: ExperimentScale = DEFAULT_SCALE,
    registry: LutRegistry | None = None,
) -> Table3Result:
    """Softmax-only approximation on the MobileBERT-like span model."""
    registry = registry or default_registry()
    entries = scale.num_lut_entries
    # A shallow (2-layer) span model keeps the frozen-encoder baseline high
    # (~90 F1), mirroring the paper's fine-tuned MobileBERT baseline; see
    # EXPERIMENTS.md for the fidelity discussion of this experiment.
    model = MobileBertLikeModel.build(seed=scale.model_seed, num_layers=2)
    spec = SquadTaskSpec(
        sequence_length=scale.sequence_length,
        num_train=scale.num_train,
        num_test=scale.num_test,
        topic_strength=0.95,
    )
    data = generate_squad_task(vocab_size=model.config.vocab_size, seed=scale.task_seed, spec=spec)

    backends = backend_variant_specs(
        num_entries=entries,
        groups=(("", ("softmax",)),),
        precisions=("fp32", "fp16"),
    )
    results = evaluate_squad(
        model, backends, seed=scale.task_seed, data=data, registry=registry
    )
    return Table3Result(results=results)


def main() -> None:  # pragma: no cover - convenience entry point
    print(run_table3().report())


if __name__ == "__main__":  # pragma: no cover
    main()
