"""Table 2: GLUE accuracy under approximation of the non-linear operations.

Part (a): direct approximation on the FP32 RoBERTa-like model — Linear-LUT
and NN-LUT, each replacing GELU only, Softmax only, LayerNorm only, and all
three together.

Part (b): the INT8-matmul model — I-BERT's integer approximations versus
NN-LUT in FP32 and INT32, with and without the dataset-free calibration of
the LayerNorm table ("+C" rows).

Every variant is declared as a :class:`repro.api.BackendSpec` and realised
through :func:`repro.api.build_backend`; the per-operator sweep comes from
:func:`repro.experiments.common.backend_variant_specs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis.reporting import format_mapping_table
from ..api import BackendSpec, build_backend, calibrate_primitive_luts
from ..core.calibration import CalibrationConfig
from ..core.lut import LookupTable
from ..core.registry import LutRegistry, default_registry
from ..tasks.evaluation import GlueBenchmark
from ..tasks.glue import list_glue_tasks
from ..transformer.models import RobertaLikeModel
from ..transformer.nonlinear_backend import NonlinearBackend
from .common import DEFAULT_SCALE, ExperimentScale, backend_variant_specs

__all__ = [
    "Table2aResult",
    "Table2bResult",
    "run_table2a",
    "run_table2b",
    "calibrate_layernorm_lut",
]


@dataclass
class Table2aResult:
    """Scores per method per task for the direct-approximation experiment."""

    scores: Dict[str, Dict[str, float]]

    def report(self) -> str:
        header = "Table 2(a) reproduction — direct approximation on the FP32 model\n"
        return header + format_mapping_table(self.scores, row_label="method")


@dataclass
class Table2bResult:
    """Scores per method per task for the INT8-matmul experiment, plus averages."""

    scores: Dict[str, Dict[str, float]]

    def averages(self) -> Dict[str, float]:
        return {
            method: float(np.mean(list(task_scores.values())))
            for method, task_scores in self.scores.items()
        }

    def report(self) -> str:
        header = "Table 2(b) reproduction — INT8 MatMul model\n"
        body = format_mapping_table(self.scores, row_label="method")
        avg_lines = "\n".join(
            f"  {method:22s} avg = {value:.1f}" for method, value in self.averages().items()
        )
        return f"{header}{body}\n\nAverages:\n{avg_lines}"


def _task_names(scale: ExperimentScale) -> List[str]:
    return list(scale.glue_tasks) if scale.glue_tasks is not None else list_glue_tasks()


def _build_benchmark(scale: ExperimentScale, matmul_precision: str = "fp32") -> GlueBenchmark:
    model = RobertaLikeModel.build(seed=scale.model_seed, matmul_precision=matmul_precision)
    return GlueBenchmark.build(
        model,
        task_names=_task_names(scale),
        seed=scale.task_seed,
        spec_overrides=scale.spec_overrides(),
    )


def run_table2a(
    scale: ExperimentScale = DEFAULT_SCALE,
    registry: LutRegistry | None = None,
) -> Table2aResult:
    """Direct approximation on the FP32 model (Table 2a)."""
    registry = registry or default_registry()
    benchmark = _build_benchmark(scale, matmul_precision="fp32")

    variants: Dict[str, NonlinearBackend] = {
        "Baseline": build_backend(BackendSpec.exact(), registry=registry)
    }
    for label, spec in backend_variant_specs(num_entries=scale.num_lut_entries).items():
        variants[label] = build_backend(spec, registry=registry)

    scores = {name: benchmark.score_all(backend) for name, backend in variants.items()}
    return Table2aResult(scores=scores)


def calibrate_layernorm_lut(
    benchmark: GlueBenchmark,
    registry: LutRegistry,
    scale: ExperimentScale,
    max_sequences: int = 64,
    calibration_config: CalibrationConfig | None = None,
) -> LookupTable:
    """Dataset-free calibration of the LayerNorm (1/sqrt) table.

    Mirrors Sec. 3.3.3: run the frozen model over a small set of *unlabelled*
    training sequences while recording what actually reaches the LayerNorm
    sites, then re-fit the 1/sqrt approximation on that distribution (the
    query-point mapping and the network re-fit live in
    :func:`repro.api.calibrate_primitive_luts`).
    """
    backend = build_backend(BackendSpec.exact(), registry=registry)
    with backend.recording() as recorder:
        # A small unlabelled subset (about one tenth of the training data, as
        # in the paper) drawn from the benchmark's existing tasks.
        count = 0
        for task in benchmark.tasks.values():
            tokens = task.train_tokens[: max(4, max_sequences // max(1, len(benchmark.tasks)))]
            benchmark.model.forward(tokens, backend=backend)
            count += tokens.shape[0]
            if count >= max_sequences:
                break
    calibrated = calibrate_primitive_luts(
        recorder,
        registry,
        operators=("layernorm",),
        num_entries=scale.num_lut_entries,
        config=calibration_config,
    )
    return calibrated["rsqrt"]


def run_table2b(
    scale: ExperimentScale = DEFAULT_SCALE,
    registry: LutRegistry | None = None,
) -> Table2bResult:
    """INT8-matmul model comparison against I-BERT, with calibration (Table 2b)."""
    registry = registry or default_registry()
    benchmark = _build_benchmark(scale, matmul_precision="int8")
    entries = scale.num_lut_entries

    overrides = {"rsqrt": calibrate_layernorm_lut(benchmark, registry, scale)}

    def nn_lut(precision: str, calibrated: bool) -> NonlinearBackend:
        spec = BackendSpec.nn_lut(precision=precision, num_entries=entries)
        if calibrated:
            spec = spec.with_calibration("layernorm")
        return build_backend(
            spec, registry=registry, lut_overrides=overrides if calibrated else None
        )

    variants: Dict[str, NonlinearBackend] = {
        "Baseline": build_backend(BackendSpec.exact(), registry=registry),
        "I-BERT": build_backend(BackendSpec.ibert(), registry=registry),
        "NN-LUT FP32": nn_lut("fp32", calibrated=False),
        "NN-LUT FP32+C": nn_lut("fp32", calibrated=True),
        "NN-LUT INT32": nn_lut("int32", calibrated=False),
        "NN-LUT INT32+C": nn_lut("int32", calibrated=True),
    }
    scores = {name: benchmark.score_all(backend) for name, backend in variants.items()}
    return Table2bResult(scores=scores)


def main() -> None:  # pragma: no cover - convenience entry point
    print(run_table2a().report())
    print()
    print(run_table2b().report())


if __name__ == "__main__":  # pragma: no cover
    main()
