"""Table 2: GLUE accuracy under approximation of the non-linear operations.

Part (a): direct approximation on the FP32 RoBERTa-like model — Linear-LUT
and NN-LUT, each replacing GELU only, Softmax only, LayerNorm only, and all
three together.

Part (b): the INT8-matmul model — I-BERT's integer approximations versus
NN-LUT in FP32 and INT32, with and without the dataset-free calibration of
the LayerNorm table ("+C" rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..analysis.reporting import format_mapping_table
from ..core import functions
from ..core.calibration import CalibrationConfig, calibrate_network
from ..core.conversion import network_to_lut
from ..core.lut import LookupTable
from ..core.registry import LutRegistry, default_registry
from ..core.scaling import InputScaler
from ..tasks.evaluation import GlueBenchmark
from ..tasks.glue import list_glue_tasks
from ..transformer.models import RobertaLikeModel
from ..transformer.nonlinear_backend import (
    NonlinearBackend,
    exact_backend,
    ibert_backend,
    linear_lut_backend,
    nn_lut_backend,
)
from .common import DEFAULT_SCALE, ExperimentScale

__all__ = [
    "Table2aResult",
    "Table2bResult",
    "run_table2a",
    "run_table2b",
    "calibrate_layernorm_lut",
]


@dataclass
class Table2aResult:
    """Scores per method per task for the direct-approximation experiment."""

    scores: Dict[str, Dict[str, float]]

    def report(self) -> str:
        header = "Table 2(a) reproduction — direct approximation on the FP32 model\n"
        return header + format_mapping_table(self.scores, row_label="method")


@dataclass
class Table2bResult:
    """Scores per method per task for the INT8-matmul experiment, plus averages."""

    scores: Dict[str, Dict[str, float]]

    def averages(self) -> Dict[str, float]:
        return {
            method: float(np.mean(list(task_scores.values())))
            for method, task_scores in self.scores.items()
        }

    def report(self) -> str:
        header = "Table 2(b) reproduction — INT8 MatMul model\n"
        body = format_mapping_table(self.scores, row_label="method")
        avg_lines = "\n".join(
            f"  {method:22s} avg = {value:.1f}" for method, value in self.averages().items()
        )
        return f"{header}{body}\n\nAverages:\n{avg_lines}"


def _task_names(scale: ExperimentScale) -> List[str]:
    return list(scale.glue_tasks) if scale.glue_tasks is not None else list_glue_tasks()


def _build_benchmark(scale: ExperimentScale, matmul_precision: str = "fp32") -> GlueBenchmark:
    model = RobertaLikeModel.build(seed=scale.model_seed, matmul_precision=matmul_precision)
    return GlueBenchmark.build(
        model,
        task_names=_task_names(scale),
        seed=scale.task_seed,
        spec_overrides=scale.spec_overrides(),
    )


def run_table2a(
    scale: ExperimentScale = DEFAULT_SCALE,
    registry: LutRegistry | None = None,
) -> Table2aResult:
    """Direct approximation on the FP32 model (Table 2a)."""
    registry = registry or default_registry()
    benchmark = _build_benchmark(scale, matmul_precision="fp32")
    entries = scale.num_lut_entries

    variants: Dict[str, NonlinearBackend] = {"Baseline": exact_backend()}
    per_op = (("GELU only", ["gelu"]), ("Softmax only", ["softmax"]),
              ("LayerNorm only", ["layernorm"]), ("Altogether", ["gelu", "softmax", "layernorm"]))
    for label, ops in per_op:
        variants[f"Linear-LUT {label}"] = linear_lut_backend(num_entries=entries, replace=ops)
    for label, ops in per_op:
        variants[f"NN-LUT {label}"] = nn_lut_backend(
            registry=registry, num_entries=entries, replace=ops
        )

    scores = {name: benchmark.score_all(backend) for name, backend in variants.items()}
    return Table2aResult(scores=scores)


def calibrate_layernorm_lut(
    benchmark: GlueBenchmark,
    registry: LutRegistry,
    scale: ExperimentScale,
    max_sequences: int = 64,
    calibration_config: CalibrationConfig | None = None,
) -> LookupTable:
    """Dataset-free calibration of the LayerNorm (1/sqrt) table.

    Mirrors Sec. 3.3.3: run the frozen model over a small set of *unlabelled*
    training sequences, record what actually reaches the LayerNorm sites,
    convert those activations into the 1/sqrt query points (variance, with the
    input-scaling mapping applied), and re-fit the approximation network
    against the exact reference on that distribution.
    """
    backend = exact_backend()
    backend.recorder.enabled = True
    scaler = InputScaler()

    # A small unlabelled subset (about one tenth of the training data, as in
    # the paper) drawn from the benchmark's existing tasks.
    count = 0
    for task in benchmark.tasks.values():
        tokens = task.train_tokens[: max(4, max_sequences // max(1, len(benchmark.tasks)))]
        benchmark.model.forward(tokens, backend=backend)
        count += tokens.shape[0]
        if count >= max_sequences:
            break

    variance_samples: List[np.ndarray] = []
    for recorded in backend.recorder.layernorm_inputs:
        mean = np.mean(recorded, axis=-1, keepdims=True)
        variance = np.mean((recorded - mean) ** 2, axis=-1) + 1e-5
        variance_samples.append(variance.ravel())
    if not variance_samples:
        raise RuntimeError("no LayerNorm activations were recorded for calibration")
    variance = np.concatenate(variance_samples)
    # The table is queried at S*var for small variances (input scaling).
    queries = np.where(variance < scaler.threshold, variance * scaler.scale, variance)
    # Mix in a small share of generic log-uniform samples over the training
    # range so the calibrated table keeps its global shape outside the
    # recorded distribution (guards against extrapolation damage).
    rng = np.random.default_rng(0)
    num_generic = max(1, queries.size // 5)
    generic = np.exp(rng.uniform(np.log(1.0), np.log(1024.0), size=num_generic))
    queries = np.concatenate([queries, generic])

    primitive = registry.get("rsqrt", num_entries=scale.num_lut_entries)
    config = calibration_config or CalibrationConfig(epochs=5, learning_rate=5e-4)
    calibrated = calibrate_network(primitive.network, functions.rsqrt, queries, config)
    lut = network_to_lut(calibrated, name="rsqrt")
    return lut.with_metadata(calibrated=True, num_calibration_samples=int(queries.size))


def run_table2b(
    scale: ExperimentScale = DEFAULT_SCALE,
    registry: LutRegistry | None = None,
) -> Table2bResult:
    """INT8-matmul model comparison against I-BERT, with calibration (Table 2b)."""
    registry = registry or default_registry()
    benchmark = _build_benchmark(scale, matmul_precision="int8")
    entries = scale.num_lut_entries

    calibrated_rsqrt = calibrate_layernorm_lut(benchmark, registry, scale)
    overrides = {"rsqrt": calibrated_rsqrt}

    variants: Dict[str, NonlinearBackend] = {
        "Baseline": exact_backend(),
        "I-BERT": ibert_backend(),
        "NN-LUT FP32": nn_lut_backend(registry=registry, num_entries=entries, precision="fp32"),
        "NN-LUT FP32+C": nn_lut_backend(
            registry=registry, num_entries=entries, precision="fp32", lut_overrides=overrides
        ),
        "NN-LUT INT32": nn_lut_backend(registry=registry, num_entries=entries, precision="int32"),
        "NN-LUT INT32+C": nn_lut_backend(
            registry=registry, num_entries=entries, precision="int32", lut_overrides=overrides
        ),
    }
    scores = {name: benchmark.score_all(backend) for name, backend in variants.items()}
    return Table2bResult(scores=scores)


def main() -> None:  # pragma: no cover - convenience entry point
    print(run_table2a().report())
    print()
    print(run_table2b().report())


if __name__ == "__main__":  # pragma: no cover
    main()
