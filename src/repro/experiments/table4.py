"""Table 4: arithmetic-unit hardware cost, I-BERT vs NN-LUT."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.reporting import format_table
from ..hardware.arithmetic_unit import UnitCost, build_table4_units
from ..hardware.components import ComponentLibrary

__all__ = ["Table4Result", "run_table4", "PAPER_TABLE4"]

#: The paper's reported numbers, for side-by-side comparison in the report.
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "I-BERT INT32": {"area_um2": 2654.32, "power_mw": 2.1421, "delay_ns": 2.67},
    "NN-LUT INT32": {"area_um2": 1008.92, "power_mw": 0.0591, "delay_ns": 0.68},
    "NN-LUT FP16": {"area_um2": 498.38, "power_mw": 0.0250, "delay_ns": 1.36},
    "NN-LUT FP32": {"area_um2": 1133.60, "power_mw": 0.0437, "delay_ns": 1.60},
}


@dataclass
class Table4Result:
    """Modelled unit costs plus the headline ratios."""

    units: List[UnitCost]

    def _unit(self, name: str, precision: str) -> UnitCost:
        for unit in self.units:
            if unit.name == name and unit.precision == precision:
                return unit
        raise KeyError(f"no unit {name} {precision} in the result")

    def ratios(self) -> Dict[str, float]:
        """I-BERT / NN-LUT(INT32) ratios (paper: 2.63x area, 36.4x power, 3.93x delay)."""
        ibert = self._unit("I-BERT", "INT32")
        nn_lut = self._unit("NN-LUT", "INT32")
        return {
            "area_ratio": ibert.area_um2 / nn_lut.area_um2,
            "power_ratio": ibert.power_mw / nn_lut.power_mw,
            "delay_ratio": ibert.delay_ns / nn_lut.delay_ns,
        }

    def report(self) -> str:
        rows = []
        for unit in self.units:
            key = f"{unit.name} {unit.precision}"
            paper = PAPER_TABLE4.get(key, {})
            rows.append(
                [
                    key,
                    unit.area_um2,
                    paper.get("area_um2", float("nan")),
                    unit.power_mw,
                    paper.get("power_mw", float("nan")),
                    unit.delay_ns,
                    paper.get("delay_ns", float("nan")),
                    max(unit.latency_cycles.values()),
                ]
            )
        table = format_table(
            [
                "unit",
                "area um2",
                "paper area",
                "power mW",
                "paper power",
                "delay ns",
                "paper delay",
                "max latency",
            ],
            rows,
            float_format="{:.3f}",
        )
        ratios = self.ratios()
        footer = (
            f"\nI-BERT vs NN-LUT(INT32): area {ratios['area_ratio']:.2f}x, "
            f"power {ratios['power_ratio']:.1f}x, delay {ratios['delay_ratio']:.2f}x "
            "(paper: 2.63x / 36.4x / 3.93x)"
        )
        return "Table 4 reproduction — arithmetic-unit comparison\n" + table + footer


def run_table4(
    library: ComponentLibrary | None = None, num_entries: int = 16
) -> Table4Result:
    """Assemble both arithmetic units and collect their modelled costs."""
    return Table4Result(units=build_table4_units(library=library, num_entries=num_entries))


def main() -> None:  # pragma: no cover - convenience entry point
    from . import run_experiment

    print(run_experiment("table4").report())


if __name__ == "__main__":  # pragma: no cover
    main()
