"""Experiment drivers: one module per table / figure of the paper.

* :mod:`repro.experiments.figure2` — operator-level approximation accuracy.
* :mod:`repro.experiments.table2` — GLUE accuracy under approximation
  (direct FP32 and INT8-matmul + calibration).
* :mod:`repro.experiments.table3` — MobileBERT-like / SQuAD Softmax-only.
* :mod:`repro.experiments.table4` — arithmetic-unit hardware comparison.
* :mod:`repro.experiments.table5` — system-level cycle breakdown / speedup.
"""

from .common import DEFAULT_SCALE, SMOKE_SCALE, ExperimentScale
from .figure2 import Figure2Result, run_figure2
from .table2 import Table2aResult, Table2bResult, calibrate_layernorm_lut, run_table2a, run_table2b
from .table3 import Table3Result, run_table3
from .table4 import PAPER_TABLE4, Table4Result, run_table4
from .table5 import PAPER_SPEEDUPS, Table5Result, run_table5

__all__ = [
    "ExperimentScale",
    "DEFAULT_SCALE",
    "SMOKE_SCALE",
    "Figure2Result",
    "run_figure2",
    "Table2aResult",
    "Table2bResult",
    "run_table2a",
    "run_table2b",
    "calibrate_layernorm_lut",
    "Table3Result",
    "run_table3",
    "Table4Result",
    "run_table4",
    "PAPER_TABLE4",
    "Table5Result",
    "run_table5",
    "PAPER_SPEEDUPS",
]
