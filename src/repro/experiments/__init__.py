"""Experiment drivers: one module per table / figure of the paper.

* :mod:`repro.experiments.figure2` — operator-level approximation accuracy.
* :mod:`repro.experiments.table2` — GLUE accuracy under approximation
  (direct FP32 and INT8-matmul + calibration).
* :mod:`repro.experiments.table3` — MobileBERT-like / SQuAD Softmax-only.
* :mod:`repro.experiments.table4` — arithmetic-unit hardware comparison.
* :mod:`repro.experiments.table5` — system-level cycle breakdown / speedup.

All experiments are also reachable through a single registry —
:func:`run_experiment` / :data:`EXPERIMENT_NAMES` — and the package runs as
a CLI: ``python -m repro.experiments <name> [--smoke]``.
"""

from typing import Callable, Dict, Tuple

from ..core.registry import LutRegistry
from .common import (
    DEFAULT_SCALE,
    METHOD_LABELS,
    PER_OPERATOR_GROUPS,
    SMOKE_SCALE,
    ExperimentScale,
    backend_variant_specs,
)
from .figure2 import Figure2Result, run_figure2
from .table2 import Table2aResult, Table2bResult, calibrate_layernorm_lut, run_table2a, run_table2b
from .table3 import Table3Result, run_table3
from .table4 import PAPER_TABLE4, Table4Result, run_table4
from .table5 import PAPER_SPEEDUPS, Table5Result, run_table5

__all__ = [
    "ExperimentScale",
    "DEFAULT_SCALE",
    "SMOKE_SCALE",
    "METHOD_LABELS",
    "PER_OPERATOR_GROUPS",
    "backend_variant_specs",
    "Figure2Result",
    "run_figure2",
    "Table2aResult",
    "Table2bResult",
    "run_table2a",
    "run_table2b",
    "calibrate_layernorm_lut",
    "Table3Result",
    "run_table3",
    "Table4Result",
    "run_table4",
    "PAPER_TABLE4",
    "Table5Result",
    "run_table5",
    "PAPER_SPEEDUPS",
    "EXPERIMENT_NAMES",
    "run_experiment",
]

#: name -> runner(scale, registry).  The software experiments thread both
#: through; table4 is scale-free, and table5 honours the scale's
#: ``table5_sequence_lengths`` sweep (None = the paper's full eight points).
_RUNNERS: Dict[str, Callable] = {
    "figure2": lambda scale, registry: run_figure2(
        num_entries=scale.num_lut_entries, registry=registry
    ),
    "table2a": lambda scale, registry: run_table2a(scale=scale, registry=registry),
    "table2b": lambda scale, registry: run_table2b(scale=scale, registry=registry),
    "table3": lambda scale, registry: run_table3(scale=scale, registry=registry),
    "table4": lambda scale, registry: run_table4(),
    "table5": lambda scale, registry: (
        run_table5(sequence_lengths=tuple(scale.table5_sequence_lengths))
        if scale.table5_sequence_lengths is not None
        else run_table5()
    ),
}

EXPERIMENT_NAMES: Tuple[str, ...] = tuple(_RUNNERS)


def run_experiment(
    name: str,
    scale: ExperimentScale | None = None,
    registry: LutRegistry | None = None,
):
    """Run one named experiment and return its result object (has ``.report()``)."""
    if name not in _RUNNERS:
        raise ValueError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENT_NAMES)}"
        )
    return _RUNNERS[name](scale or DEFAULT_SCALE, registry)
