"""Pluggable non-linear operator backends for the Transformer substrate.

A :class:`NonlinearBackend` bundles the three operator implementations the
encoder needs — GELU, Softmax, LayerNorm — so a single encoder instance can be
evaluated with:

* the exact FP32 reference ("Baseline" rows of Tables 2/3),
* NN-LUT approximations in FP32 / FP16 / INT32, per-operator or altogether,
* the Linear-LUT baseline,
* the I-BERT integer approximations,
* calibrated NN-LUT variants (Table 2(b) "+C" rows).

A backend can also *record* the tensors flowing into each operator site,
which is what the dataset-free calibration pass consumes — use the
:meth:`NonlinearBackend.recording` context manager.

Backends are declared with :class:`repro.api.BackendSpec` and realised by
:func:`repro.api.build_backend`.  The module-level ``exact_backend`` /
``nn_lut_backend`` / ``linear_lut_backend`` / ``ibert_backend`` constructors
remain as thin deprecated shims over that factory; :func:`backend_from_luts`
stays as the low-level assembler for callers that bring their own primitive
approximators (e.g. the benchmark harness's seed-path replicas).
"""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..core.approximators import (
    ExactGelu,
    ExactLayerNorm,
    ExactSoftmax,
    LutGelu,
    LutLayerNorm,
    LutSoftmax,
)
from ..core.lut import LookupTable
from ..core.registry import LutRegistry
from ..core.scaling import InputScaler

__all__ = [
    "ALL_OPS",
    "OperatorRecorder",
    "NonlinearBackend",
    "exact_backend",
    "nn_lut_backend",
    "linear_lut_backend",
    "ibert_backend",
    "backend_from_luts",
]

#: Operator names accepted by the ``replace=`` argument of the factories.
ALL_OPS: Tuple[str, ...] = ("gelu", "softmax", "layernorm")


@dataclass
class OperatorRecorder:
    """Accumulates the tensors that reached each non-linear operator site."""

    enabled: bool = False
    max_arrays_per_op: int = 256
    gelu_inputs: List[np.ndarray] = field(default_factory=list)
    softmax_inputs: List[np.ndarray] = field(default_factory=list)
    layernorm_inputs: List[np.ndarray] = field(default_factory=list)

    def record(self, op: str, value: np.ndarray) -> None:
        if not self.enabled:
            return
        store = getattr(self, f"{op}_inputs")
        if len(store) < self.max_arrays_per_op:
            store.append(np.asarray(value, dtype=np.float64).copy())

    def clear(self) -> None:
        self.gelu_inputs.clear()
        self.softmax_inputs.clear()
        self.layernorm_inputs.clear()


@dataclass
class NonlinearBackend:
    """The three operator implementations used by an encoder."""

    name: str
    gelu: Callable[[np.ndarray], np.ndarray]
    softmax: Callable[..., np.ndarray]
    layernorm: Callable[..., np.ndarray]
    recorder: OperatorRecorder = field(default_factory=OperatorRecorder)
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Compute kernel for fused epilogues (set by ``build_backend`` when the
    #: spec selects a non-default kernel); None keeps the plain op sequence.
    kernel: object | None = None

    # Recording is guarded at the call sites so the disabled (inference) case
    # costs a single attribute check — no call, no np.asarray(...).copy().

    def apply_gelu(self, x: np.ndarray) -> np.ndarray:
        if self.recorder.enabled:
            self.recorder.record("gelu", x)
        return self.gelu(x)

    def apply_softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        if self.recorder.enabled:
            self.recorder.record("softmax", x)
        return self.softmax(x, axis=axis)

    def apply_layernorm(
        self,
        x: np.ndarray,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
        axis: int = -1,
    ) -> np.ndarray:
        if self.recorder.enabled:
            self.recorder.record("layernorm", x)
        return self.layernorm(x, gamma=gamma, beta=beta, axis=axis)

    @contextmanager
    def recording(self, enabled: bool = True) -> Iterator[OperatorRecorder]:
        """Scoped operator-input recording.

        The previous recorder state is restored on exit *even if the body
        raises* — the manual ``backend.recorder.enabled = True/False`` pattern
        this replaces leaked an enabled recorder (and its per-call tensor
        copies) into subsequent inference whenever the calibration pass
        failed midway.
        """
        previous = self.recorder.enabled
        self.recorder.enabled = enabled
        try:
            yield self.recorder
        finally:
            self.recorder.enabled = previous


def _validate_replace(replace: Iterable[str]) -> Tuple[str, ...]:
    ops = tuple(replace)
    unknown = [op for op in ops if op not in ALL_OPS]
    if unknown:
        raise ValueError(f"Unknown operator(s) {unknown}; valid operators: {ALL_OPS}")
    return ops


def _exact_backend() -> NonlinearBackend:
    """Internal exact backend — the ``backend=None`` default of the substrate.

    Kept warning-free and import-cycle-free (``repro.api`` builds *on* this
    package); public callers should use ``repro.api.BackendSpec.exact()``.
    """
    return NonlinearBackend(
        name="exact",
        gelu=ExactGelu(),
        softmax=ExactSoftmax(),
        layernorm=ExactLayerNorm(),
        metadata={"method": "exact"},
    )


def backend_from_luts(
    luts: Dict[str, Callable[[np.ndarray], np.ndarray]],
    replace: Sequence[str] = ALL_OPS,
    input_scaling: bool = True,
    name: str = "nn-lut",
) -> NonlinearBackend:
    """Assemble a backend from per-primitive approximators.

    ``luts`` maps primitive names (``"gelu"``, ``"exp"``, ``"reciprocal"``,
    ``"rsqrt"``) to callables.  Operators not listed in ``replace`` fall back
    to the exact implementation.  This is the low-level escape hatch for
    hand-built primitives; declarative scenarios should go through
    :func:`repro.api.build_backend`.
    """
    ops = _validate_replace(replace)
    gelu_op: Callable[[np.ndarray], np.ndarray] = ExactGelu()
    softmax_op: Callable[..., np.ndarray] = ExactSoftmax()
    layernorm_op: Callable[..., np.ndarray] = ExactLayerNorm()

    if "gelu" in ops:
        gelu_op = LutGelu(luts["gelu"])
    if "softmax" in ops:
        softmax_op = LutSoftmax(luts["exp"], luts["reciprocal"])
    if "layernorm" in ops:
        layernorm_op = LutLayerNorm(
            luts["rsqrt"], scaler=InputScaler() if input_scaling else None
        )
    return NonlinearBackend(
        name=name,
        gelu=gelu_op,
        softmax=softmax_op,
        layernorm=layernorm_op,
        metadata={"method": name, "replaced": ops, "input_scaling": input_scaling},
    )


# --------------------------------------------------------------------------- #
# Deprecated shims over repro.api.build_backend
# --------------------------------------------------------------------------- #
def _deprecated(legacy: str, replacement: str) -> None:
    warnings.warn(
        f"repro.transformer.{legacy}() is deprecated; declare the backend with "
        f"repro.api.BackendSpec.{replacement}(...) and realise it with "
        "repro.api.build_backend(spec)",
        DeprecationWarning,
        stacklevel=3,
    )


def exact_backend() -> NonlinearBackend:
    """Deprecated: use ``build_backend(BackendSpec.exact())``."""
    from ..api.spec import BackendSpec, build_backend

    _deprecated("exact_backend", "exact")
    return build_backend(BackendSpec.exact())


def nn_lut_backend(
    registry: LutRegistry | None = None,
    num_entries: int = 16,
    precision: str = "fp32",
    replace: Sequence[str] = ALL_OPS,
    input_scaling: bool = True,
    lut_overrides: Dict[str, LookupTable] | None = None,
) -> NonlinearBackend:
    """Deprecated: use ``build_backend(BackendSpec.nn_lut(...))``.

    ``lut_overrides`` maps primitive names to replacement tables (e.g.
    calibrated LUTs) and corresponds to the ``lut_overrides`` argument of
    :func:`repro.api.build_backend`.
    """
    from ..api.spec import BackendSpec, build_backend

    _deprecated("nn_lut_backend", "nn_lut")
    spec = BackendSpec.nn_lut(
        precision=precision,
        num_entries=num_entries,
        replace=replace,
        input_scaling=input_scaling,
    )
    return build_backend(spec, registry=registry, lut_overrides=lut_overrides)


def linear_lut_backend(
    num_entries: int = 16,
    precision: str = "fp32",
    replace: Sequence[str] = ALL_OPS,
    input_scaling: bool = True,
) -> NonlinearBackend:
    """Deprecated: use ``build_backend(BackendSpec.linear_lut(...))``."""
    from ..api.spec import BackendSpec, build_backend

    _deprecated("linear_lut_backend", "linear_lut")
    spec = BackendSpec.linear_lut(
        precision=precision,
        num_entries=num_entries,
        replace=replace,
        input_scaling=input_scaling,
    )
    return build_backend(spec)


def ibert_backend(replace: Sequence[str] = ALL_OPS) -> NonlinearBackend:
    """Deprecated: use ``build_backend(BackendSpec.ibert(...))``."""
    from ..api.spec import BackendSpec, build_backend

    _deprecated("ibert_backend", "ibert")
    return build_backend(BackendSpec.ibert(replace=replace))
