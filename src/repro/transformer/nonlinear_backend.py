"""Pluggable non-linear operator backends for the Transformer substrate.

A :class:`NonlinearBackend` bundles the three operator implementations the
encoder needs — GELU, Softmax, LayerNorm — so a single encoder instance can be
evaluated with:

* the exact FP32 reference ("Baseline" rows of Tables 2/3),
* NN-LUT approximations in FP32 / FP16 / INT32, per-operator or altogether,
* the Linear-LUT baseline,
* the I-BERT integer approximations,
* calibrated NN-LUT variants (Table 2(b) "+C" rows).

A backend can also *record* the tensors flowing into each operator site,
which is what the dataset-free calibration pass consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..baselines.ibert import IBertGelu, IBertLayerNorm, IBertSoftmax
from ..baselines.linear_lut import linear_lut_for
from ..core import functions
from ..core.approximators import (
    ExactGelu,
    ExactLayerNorm,
    ExactSoftmax,
    LutGelu,
    LutLayerNorm,
    LutSoftmax,
)
from ..core.functions import get_training_range
from ..core.lut import LookupTable
from ..core.quantization import quantize_lut_fp16, quantize_lut_int32
from ..core.registry import LutRegistry, default_registry
from ..core.scaling import InputScaler

__all__ = [
    "ALL_OPS",
    "OperatorRecorder",
    "NonlinearBackend",
    "exact_backend",
    "nn_lut_backend",
    "linear_lut_backend",
    "ibert_backend",
    "backend_from_luts",
]

#: Operator names accepted by the ``replace=`` argument of the factories.
ALL_OPS: Tuple[str, ...] = ("gelu", "softmax", "layernorm")


@dataclass
class OperatorRecorder:
    """Accumulates the tensors that reached each non-linear operator site."""

    enabled: bool = False
    max_arrays_per_op: int = 256
    gelu_inputs: List[np.ndarray] = field(default_factory=list)
    softmax_inputs: List[np.ndarray] = field(default_factory=list)
    layernorm_inputs: List[np.ndarray] = field(default_factory=list)

    def record(self, op: str, value: np.ndarray) -> None:
        if not self.enabled:
            return
        store = getattr(self, f"{op}_inputs")
        if len(store) < self.max_arrays_per_op:
            store.append(np.asarray(value, dtype=np.float64).copy())

    def clear(self) -> None:
        self.gelu_inputs.clear()
        self.softmax_inputs.clear()
        self.layernorm_inputs.clear()


@dataclass
class NonlinearBackend:
    """The three operator implementations used by an encoder."""

    name: str
    gelu: Callable[[np.ndarray], np.ndarray]
    softmax: Callable[..., np.ndarray]
    layernorm: Callable[..., np.ndarray]
    recorder: OperatorRecorder = field(default_factory=OperatorRecorder)
    metadata: Dict[str, object] = field(default_factory=dict)

    # Recording is guarded at the call sites so the disabled (inference) case
    # costs a single attribute check — no call, no np.asarray(...).copy().

    def apply_gelu(self, x: np.ndarray) -> np.ndarray:
        if self.recorder.enabled:
            self.recorder.record("gelu", x)
        return self.gelu(x)

    def apply_softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        if self.recorder.enabled:
            self.recorder.record("softmax", x)
        return self.softmax(x, axis=axis)

    def apply_layernorm(
        self,
        x: np.ndarray,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
        axis: int = -1,
    ) -> np.ndarray:
        if self.recorder.enabled:
            self.recorder.record("layernorm", x)
        return self.layernorm(x, gamma=gamma, beta=beta, axis=axis)


def _validate_replace(replace: Iterable[str]) -> Tuple[str, ...]:
    ops = tuple(replace)
    unknown = [op for op in ops if op not in ALL_OPS]
    if unknown:
        raise ValueError(f"Unknown operator(s) {unknown}; valid operators: {ALL_OPS}")
    return ops


def exact_backend() -> NonlinearBackend:
    """Exact FP32/FP64 reference backend (the paper's "Baseline")."""
    return NonlinearBackend(
        name="exact",
        gelu=ExactGelu(),
        softmax=ExactSoftmax(),
        layernorm=ExactLayerNorm(),
        metadata={"method": "exact"},
    )


def _apply_precision(
    lut: LookupTable, precision: str, function_name: str
) -> Callable[[np.ndarray], np.ndarray]:
    """Wrap a float LUT in the requested precision variant."""
    if precision == "fp32":
        return lut
    if precision == "fp16":
        return quantize_lut_fp16(lut)
    if precision == "int32":
        return quantize_lut_int32(lut, input_range=get_training_range(function_name))
    raise ValueError(f"precision must be 'fp32', 'fp16' or 'int32', got {precision!r}")


def backend_from_luts(
    luts: Dict[str, Callable[[np.ndarray], np.ndarray]],
    replace: Sequence[str] = ALL_OPS,
    input_scaling: bool = True,
    name: str = "nn-lut",
) -> NonlinearBackend:
    """Assemble a backend from per-primitive approximators.

    ``luts`` maps primitive names (``"gelu"``, ``"exp"``, ``"reciprocal"``,
    ``"rsqrt"``) to callables.  Operators not listed in ``replace`` fall back
    to the exact implementation — this is how the per-operator rows of
    Table 2(a) ("GELU only", "Softmax only", "LayerNorm only") are produced.
    """
    ops = _validate_replace(replace)
    gelu_op: Callable[[np.ndarray], np.ndarray] = ExactGelu()
    softmax_op: Callable[..., np.ndarray] = ExactSoftmax()
    layernorm_op: Callable[..., np.ndarray] = ExactLayerNorm()

    if "gelu" in ops:
        gelu_op = LutGelu(luts["gelu"])
    if "softmax" in ops:
        softmax_op = LutSoftmax(luts["exp"], luts["reciprocal"])
    if "layernorm" in ops:
        layernorm_op = LutLayerNorm(
            luts["rsqrt"], scaler=InputScaler() if input_scaling else None
        )
    return NonlinearBackend(
        name=name,
        gelu=gelu_op,
        softmax=softmax_op,
        layernorm=layernorm_op,
        metadata={"method": name, "replaced": ops, "input_scaling": input_scaling},
    )


def nn_lut_backend(
    registry: LutRegistry | None = None,
    num_entries: int = 16,
    precision: str = "fp32",
    replace: Sequence[str] = ALL_OPS,
    input_scaling: bool = True,
    lut_overrides: Dict[str, LookupTable] | None = None,
) -> NonlinearBackend:
    """NN-LUT backend built from the (shared) fitted-primitive registry.

    Parameters
    ----------
    registry:
        Source of fitted tables; defaults to the process-wide registry.
    num_entries:
        LUT size (16 in the paper).
    precision:
        ``"fp32"``, ``"fp16"`` or ``"int32"`` table/datapath precision.
    replace:
        Which Transformer operators to approximate; the rest stay exact.
    input_scaling:
        Enable the Sec.-3.3.2 input scaling for LayerNorm's 1/sqrt.
    lut_overrides:
        Optional replacement tables per primitive (e.g. calibrated LUTs).
    """
    registry = registry or default_registry()
    lut_overrides = lut_overrides or {}
    primitives: Dict[str, Callable[[np.ndarray], np.ndarray]] = {}
    for primitive in ("gelu", "exp", "reciprocal", "rsqrt"):
        lut = lut_overrides.get(primitive, None)
        if lut is None:
            lut = registry.lut(primitive, num_entries=num_entries)
        primitives[primitive] = _apply_precision(lut, precision, primitive)
    suffix = "+cal" if lut_overrides else ""
    return backend_from_luts(
        primitives,
        replace=replace,
        input_scaling=input_scaling,
        name=f"nn-lut-{precision}{suffix}",
    )


def linear_lut_backend(
    num_entries: int = 16,
    precision: str = "fp32",
    replace: Sequence[str] = ALL_OPS,
    input_scaling: bool = True,
) -> NonlinearBackend:
    """Linear-mode LUT baseline backend (fixed equally-spaced breakpoints)."""
    primitives: Dict[str, Callable[[np.ndarray], np.ndarray]] = {}
    for primitive in ("gelu", "exp", "reciprocal", "rsqrt"):
        lut = linear_lut_for(primitive, num_entries=num_entries)
        primitives[primitive] = _apply_precision(lut, precision, primitive)
    return backend_from_luts(
        primitives,
        replace=replace,
        input_scaling=input_scaling,
        name=f"linear-lut-{precision}",
    )


def ibert_backend(replace: Sequence[str] = ALL_OPS) -> NonlinearBackend:
    """I-BERT integer-approximation backend."""
    ops = _validate_replace(replace)
    return NonlinearBackend(
        name="i-bert",
        gelu=IBertGelu() if "gelu" in ops else ExactGelu(),
        softmax=IBertSoftmax() if "softmax" in ops else ExactSoftmax(),
        layernorm=IBertLayerNorm() if "layernorm" in ops else ExactLayerNorm(),
        metadata={"method": "i-bert", "replaced": ops},
    )
