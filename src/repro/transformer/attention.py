"""Multi-head self-attention with a pluggable Softmax implementation."""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

from dataclasses import dataclass

import numpy as np

from .config import TransformerConfig
from .layers import Linear
from .nonlinear_backend import NonlinearBackend

__all__ = ["MultiHeadSelfAttention"]


@dataclass
class MultiHeadSelfAttention:
    """Standard scaled dot-product multi-head self-attention.

    The Softmax over attention scores is routed through the encoder's
    :class:`NonlinearBackend`, which is where NN-LUT / Linear-LUT / I-BERT
    approximations plug in.
    """

    query: Linear
    key: Linear
    value: Linear
    output: Linear
    num_heads: int

    @classmethod
    def initialize(
        cls, config: TransformerConfig, rng: np.random.Generator
    ) -> "MultiHeadSelfAttention":
        hidden = config.hidden_size
        engine = dict(
            precision=config.matmul_precision,
            compute_dtype=config.compute_dtype,
            kernel=config.kernel,
        )
        return cls(
            query=Linear.initialize(hidden, hidden, rng, **engine),
            key=Linear.initialize(hidden, hidden, rng, **engine),
            value=Linear.initialize(hidden, hidden, rng, **engine),
            output=Linear.initialize(hidden, hidden, rng, **engine),
            num_heads=config.num_heads,
        )

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, seq, hidden) -> (batch, heads, seq, head_dim)."""
        batch, seq, hidden = x.shape
        head_dim = hidden // self.num_heads
        return x.reshape(batch, seq, self.num_heads, head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, heads, seq, head_dim) -> (batch, seq, hidden)."""
        batch, heads, seq, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)

    def __call__(
        self,
        hidden_states: np.ndarray,
        backend: NonlinearBackend,
        attention_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply self-attention.

        Parameters
        ----------
        hidden_states:
            Array of shape ``(batch, seq, hidden)``.
        backend:
            Non-linear backend providing the Softmax implementation.
        attention_mask:
            Optional ``(batch, seq)`` array with 1 for valid tokens and 0 for
            padding; masked positions receive a large negative score.
        """
        return self.output(self._context(hidden_states, backend, attention_mask))

    def forward_prebias(
        self,
        hidden_states: np.ndarray,
        backend: NonlinearBackend,
        attention_mask: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Attention with the output projection's bias left un-added.

        Returns ``(context W_o, bias)`` so a fused compute-kernel epilogue
        can fold the bias add into the residual pass (see
        :meth:`repro.transformer.layers.Linear.call_prebias`).
        """
        return self.output.call_prebias(
            self._context(hidden_states, backend, attention_mask)
        )

    def _context(
        self,
        hidden_states: np.ndarray,
        backend: NonlinearBackend,
        attention_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Merged-head attention context, before the output projection."""
        if hidden_states.ndim != 3:
            raise ValueError(
                f"hidden_states must be (batch, seq, hidden), got {hidden_states.shape}"
            )
        q = self._split_heads(self.query(hidden_states))
        k = self._split_heads(self.key(hidden_states))
        v = self._split_heads(self.value(hidden_states))
        head_dim = q.shape[-1]

        scores = np.matmul(q, k.transpose(0, 1, 3, 2))
        scores /= np.sqrt(head_dim)
        if attention_mask is not None:
            mask = np.asarray(attention_mask)[:, None, None, :]
            np.copyto(scores, -1e4, where=mask <= 0)
        probabilities = backend.apply_softmax(scores, axis=-1)
        context = np.matmul(probabilities, v)
        return self._merge_heads(context)

    def num_parameters(self) -> int:
        return sum(
            layer.num_parameters() for layer in (self.query, self.key, self.value, self.output)
        )
