"""Transformer encoder configurations.

Full-size configurations matching RoBERTa-base and MobileBERT are provided
for completeness (and are what the hardware workload model in
``repro.hardware.workload`` uses to count operations), while the software
accuracy experiments default to proportionally scaled-down encoders so the
pure-numpy forward passes stay fast.  The scaled-down models keep the
architectural properties that matter for the reproduction: pre-/post-LN
placement, GELU vs ReLU feed-forward activation, and MobileBERT's property
that Softmax is the only transcendental non-linearity in its transformer
block (its normalisation is the element-wise affine "NoNorm").
"""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

from dataclasses import dataclass, field

from ..core.kernels import KERNEL_NAMES

__all__ = [
    "TransformerConfig",
    "roberta_base_config",
    "roberta_like_small_config",
    "mobilebert_config",
    "mobilebert_like_small_config",
    "tiny_test_config",
]


@dataclass(frozen=True)
class TransformerConfig:
    """Hyper-parameters of an encoder-only Transformer.

    Attributes
    ----------
    hidden_size:
        Model (embedding) dimension.
    num_layers:
        Number of encoder layers.
    num_heads:
        Attention heads; must divide ``hidden_size``.
    intermediate_size:
        Feed-forward inner dimension.
    max_sequence_length:
        Longest supported sequence (sizes the position embeddings).
    vocab_size:
        Token vocabulary size (synthetic tasks use small vocabularies).
    activation:
        ``"gelu"`` (BERT/RoBERTa) or ``"relu"`` (MobileBERT blocks).
    normalization:
        ``"layernorm"`` or ``"nonorm"`` (MobileBERT's element-wise affine).
    matmul_precision:
        ``"fp32"``, ``"fp16"`` or ``"int8"`` — precision of the linear layers,
        selecting the Table 2(b) / Table 3 settings.
    compute_dtype:
        Float width of the inference engine's tensors: ``"float32"`` (the
        vectorized fast path, default) or ``"float64"`` (reproduces the seed
        numerics bit for bit; opt in for reference comparisons).
    kernel:
        Compute kernel running the linear layers' GEMMs (see
        :mod:`repro.core.kernels`): ``"numpy"`` (the reference, default) or
        ``"native"`` (compiled int8 GEMM + fused epilogues, bitwise-equal
        results, falls back to numpy when no C toolchain is available).
    name:
        Human-readable tag used in experiment reports.
    """

    hidden_size: int = 128
    num_layers: int = 4
    num_heads: int = 4
    intermediate_size: int = 512
    max_sequence_length: int = 128
    vocab_size: int = 1000
    activation: str = "gelu"
    normalization: str = "layernorm"
    matmul_precision: str = "fp32"
    compute_dtype: str = "float32"
    kernel: str = "numpy"
    layer_norm_eps: float = 1e-5
    name: str = "transformer"

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size ({self.hidden_size}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )
        if self.activation not in ("gelu", "relu"):
            raise ValueError(f"activation must be 'gelu' or 'relu', got {self.activation!r}")
        if self.normalization not in ("layernorm", "nonorm"):
            raise ValueError(
                f"normalization must be 'layernorm' or 'nonorm', got {self.normalization!r}"
            )
        if self.matmul_precision not in ("fp32", "fp16", "int8"):
            raise ValueError(
                "matmul_precision must be 'fp32', 'fp16' or 'int8', "
                f"got {self.matmul_precision!r}"
            )
        if self.compute_dtype not in ("float32", "float64"):
            raise ValueError(
                "compute_dtype must be 'float32' or 'float64', "
                f"got {self.compute_dtype!r}"
            )
        if self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"kernel must be one of {KERNEL_NAMES}, got {self.kernel!r}"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads


def roberta_base_config(**overrides: object) -> TransformerConfig:
    """RoBERTa-base: 12 layers, hidden 768, 12 heads, FFN 3072, GELU."""
    params = dict(
        hidden_size=768,
        num_layers=12,
        num_heads=12,
        intermediate_size=3072,
        max_sequence_length=1024,
        vocab_size=50265,
        activation="gelu",
        normalization="layernorm",
        name="roberta-base",
    )
    params.update(overrides)
    return TransformerConfig(**params)


def roberta_like_small_config(**overrides: object) -> TransformerConfig:
    """Scaled-down RoBERTa-like encoder used by the software experiments."""
    params = dict(
        hidden_size=128,
        num_layers=4,
        num_heads=4,
        intermediate_size=512,
        max_sequence_length=128,
        vocab_size=2000,
        activation="gelu",
        normalization="layernorm",
        name="roberta-like-small",
    )
    params.update(overrides)
    return TransformerConfig(**params)


def mobilebert_config(**overrides: object) -> TransformerConfig:
    """MobileBERT: 24 thin layers, ReLU feed-forward, NoNorm normalisation.

    (The real MobileBERT uses bottleneck blocks with stacked FFNs; for the
    purposes of this reproduction the relevant property is that Softmax is the
    only transcendental non-linearity in its transformer block.)
    """
    params = dict(
        hidden_size=512,
        num_layers=24,
        num_heads=4,
        intermediate_size=512,
        max_sequence_length=512,
        vocab_size=30522,
        activation="relu",
        normalization="nonorm",
        name="mobilebert",
    )
    params.update(overrides)
    return TransformerConfig(**params)


def mobilebert_like_small_config(**overrides: object) -> TransformerConfig:
    """Scaled-down MobileBERT-like encoder used by the SQuAD-style experiment."""
    params = dict(
        hidden_size=128,
        num_layers=4,
        num_heads=4,
        intermediate_size=128,
        max_sequence_length=128,
        vocab_size=2000,
        activation="relu",
        normalization="nonorm",
        name="mobilebert-like-small",
    )
    params.update(overrides)
    return TransformerConfig(**params)


def tiny_test_config(**overrides: object) -> TransformerConfig:
    """Very small configuration for fast unit tests."""
    params = dict(
        hidden_size=32,
        num_layers=2,
        num_heads=2,
        intermediate_size=64,
        max_sequence_length=32,
        vocab_size=100,
        activation="gelu",
        normalization="layernorm",
        name="tiny-test",
    )
    params.update(overrides)
    return TransformerConfig(**params)
