"""Encoder models: RoBERTa-like and MobileBERT-like feature extractors.

The software experiments evaluate how much *accuracy of a fixed, trained
model* changes when its non-linear operators are swapped for approximations.
Here a "model" is a frozen randomly-initialised encoder (the substitute for a
pre-trained checkpoint, see DESIGN.md) plus task heads trained on top of the
exact-backend features by ``repro.tasks.finetune``.  The same encoder instance
is then re-run with each approximate backend and the fixed heads, mirroring
the paper's direct-approximation protocol (no approximation-aware
fine-tuning).
"""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

from dataclasses import dataclass, field
from typing import Dict, Iterator

import numpy as np

from .config import (
    TransformerConfig,
    mobilebert_like_small_config,
    roberta_like_small_config,
)
from .encoder import TransformerEncoder
from .layers import Embedding, Linear, NormParameters
from .nonlinear_backend import NonlinearBackend, _exact_backend

__all__ = ["EncoderModel", "RobertaLikeModel", "MobileBertLikeModel"]


class _ZeroFillGenerator:
    """Duck-typed ``Generator`` whose draws are all zeros.

    Lets :meth:`EncoderModel.skeleton` reuse the exact ``initialize``
    construction path (same layers, same shapes, same engine settings)
    without paying for random fills that are about to be overwritten.
    """

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None) -> np.ndarray:
        return np.zeros(() if size is None else size, dtype=np.float64)


@dataclass
class EncoderModel:
    """Embeddings + encoder stack + pooler.

    ``forward`` returns the full sequence of hidden states; ``pooled`` returns
    the first-token representation passed through a tanh pooler (the BERT
    convention used by the classification heads).
    """

    config: TransformerConfig
    embedding: Embedding
    encoder: TransformerEncoder
    embedding_norm: NormParameters
    pooler: Linear

    @classmethod
    def initialize(cls, config: TransformerConfig, seed: int = 0) -> "EncoderModel":
        rng = np.random.default_rng(seed)
        return cls._build(config, rng)

    @classmethod
    def skeleton(cls, config: TransformerConfig) -> "EncoderModel":
        """Structure-only model: every weight array zero-filled.

        For flows that immediately overwrite the parameters with real ones
        (``repro.api.session.attach_weight_state`` — e.g. a shard worker
        mapping shared-memory weights): allocating zeros costs calloc pages
        instead of a full random fill per array.
        """
        return cls._build(config, _ZeroFillGenerator())

    @classmethod
    def _build(cls, config: TransformerConfig, rng) -> "EncoderModel":
        return cls(
            config=config,
            embedding=Embedding.initialize(
                config.vocab_size, config.max_sequence_length, config.hidden_size, rng
            ),
            encoder=TransformerEncoder.initialize(config, rng),
            embedding_norm=NormParameters.initialize(config.hidden_size, rng),
            pooler=Linear.initialize(
                config.hidden_size,
                config.hidden_size,
                rng,
                precision=config.matmul_precision,
                compute_dtype=config.compute_dtype,
                kernel=config.kernel,
            ),
        )

    def _normalise_embeddings(
        self, embeddings: np.ndarray, backend: NonlinearBackend
    ) -> np.ndarray:
        if self.config.normalization == "layernorm":
            gamma, beta = self.embedding_norm.cast(embeddings.dtype)
            return backend.apply_layernorm(embeddings, gamma=gamma, beta=beta)
        return self.embedding_norm.apply_affine(embeddings)

    def forward(
        self,
        token_ids: np.ndarray,
        backend: NonlinearBackend | None = None,
        attention_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return hidden states of shape ``(batch, seq, hidden)``."""
        backend = backend or _exact_backend()
        embeddings = self.embedding(token_ids)
        # The embedding tables are float64 masters; the engine runs in the
        # configured compute dtype from here on.
        embeddings = embeddings.astype(np.dtype(self.config.compute_dtype), copy=False)
        embeddings = self._normalise_embeddings(embeddings, backend)
        return self.encoder(embeddings, backend, attention_mask)

    __call__ = forward

    def pool_hidden(self, hidden_states: np.ndarray) -> np.ndarray:
        """Tanh pooler over the first-token representation of hidden states.

        The single definition of the pooling composition — the serving layer
        applies it per sequence to keep bit-exact parity with per-call
        inference.
        """
        return np.tanh(self.pooler(hidden_states[:, 0, :]))

    def pooled(
        self,
        token_ids: np.ndarray,
        backend: NonlinearBackend | None = None,
        attention_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """First-token ("[CLS]") representation through a tanh pooler."""
        hidden = self.forward(token_ids, backend=backend, attention_mask=attention_mask)
        return self.pool_hidden(hidden)

    def num_parameters(self) -> int:
        return (
            self.embedding.num_parameters()
            + self.encoder.num_parameters()
            + self.embedding_norm.num_parameters()
            + self.pooler.num_parameters()
        )

    def iter_linears(self) -> Iterator[Linear]:
        """Every linear layer in the model (attention, FFN, pooler).

        Serving sessions use this to prepare the cached weight operands up
        front; calibration flows that edit weights in place use it to
        ``invalidate()`` them all.
        """
        for layer in self.encoder.layers:
            attention = layer.attention
            yield from (attention.query, attention.key, attention.value, attention.output)
            yield from (layer.ffn_in, layer.ffn_out)
        yield self.pooler


@dataclass
class RobertaLikeModel(EncoderModel):
    """GELU + LayerNorm encoder (all three non-linear operator types present)."""

    @classmethod
    def build(cls, seed: int = 0, **config_overrides: object) -> "RobertaLikeModel":
        config = roberta_like_small_config(**config_overrides)
        base = EncoderModel.initialize(config, seed=seed)
        return cls(
            config=base.config,
            embedding=base.embedding,
            encoder=base.encoder,
            embedding_norm=base.embedding_norm,
            pooler=base.pooler,
        )


@dataclass
class MobileBertLikeModel(EncoderModel):
    """ReLU + NoNorm encoder: Softmax is its only transcendental operator.

    This mirrors the property the paper exploits in Table 3 (MobileBERT /
    SQuAD): approximating Softmax is the only change an approximate backend
    can make to this model's computation.
    """

    @classmethod
    def build(cls, seed: int = 0, **config_overrides: object) -> "MobileBertLikeModel":
        config = mobilebert_like_small_config(**config_overrides)
        base = EncoderModel.initialize(config, seed=seed)
        return cls(
            config=base.config,
            embedding=base.embedding,
            encoder=base.encoder,
            embedding_norm=base.embedding_norm,
            pooler=base.pooler,
        )
