"""Pure-numpy Transformer encoder substrate with pluggable non-linearities."""

from .attention import MultiHeadSelfAttention
from .config import (
    TransformerConfig,
    mobilebert_config,
    mobilebert_like_small_config,
    roberta_base_config,
    roberta_like_small_config,
    tiny_test_config,
)
from .encoder import TransformerEncoder, TransformerEncoderLayer
from .heads import ClassificationHead, RegressionHead, SpanHead
from .layers import (
    CachedQuantizedLinear,
    Embedding,
    Linear,
    NormParameters,
    matmul_with_precision,
)
from .models import EncoderModel, MobileBertLikeModel, RobertaLikeModel
from .nonlinear_backend import (
    ALL_OPS,
    NonlinearBackend,
    OperatorRecorder,
    backend_from_luts,
    exact_backend,
    ibert_backend,
    linear_lut_backend,
    nn_lut_backend,
)

__all__ = [
    "TransformerConfig",
    "roberta_base_config",
    "roberta_like_small_config",
    "mobilebert_config",
    "mobilebert_like_small_config",
    "tiny_test_config",
    "Linear",
    "CachedQuantizedLinear",
    "Embedding",
    "NormParameters",
    "matmul_with_precision",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "EncoderModel",
    "RobertaLikeModel",
    "MobileBertLikeModel",
    "ClassificationHead",
    "RegressionHead",
    "SpanHead",
    "ALL_OPS",
    "NonlinearBackend",
    "OperatorRecorder",
    "exact_backend",
    "nn_lut_backend",
    "linear_lut_backend",
    "ibert_backend",
    "backend_from_luts",
]
