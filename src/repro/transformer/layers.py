"""Basic numpy layers for the Transformer substrate.

Everything is forward-only (the encoders are frozen feature extractors in the
software experiments; only the task heads are trained, by closed-form or
gradient fitting in ``repro.tasks.finetune``).  The linear layers support the
three matmul precision settings used in the paper's experiments: FP32, FP16
(Table 3) and INT8 (Table 2(b), I-BERT's quantised baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..quant.fixed_point import fake_quantize, quantized_matmul
from ..quant.fp16 import fp16_matmul

__all__ = ["Linear", "Embedding", "NormParameters", "matmul_with_precision"]


def matmul_with_precision(
    activations: np.ndarray, weights: np.ndarray, precision: str = "fp32"
) -> np.ndarray:
    """Matrix multiply in the requested precision.

    ``"fp32"`` uses float64/float32 numpy matmul; ``"fp16"`` casts operands to
    half precision; ``"int8"`` performs symmetric per-tensor INT8xINT8->INT32
    accumulation with float dequantisation (the I-BERT inference setting).
    """
    if precision == "fp32":
        return np.matmul(activations, weights)
    if precision == "fp16":
        return fp16_matmul(activations, weights)
    if precision == "int8":
        flat = activations.reshape(-1, activations.shape[-1])
        result = quantized_matmul(flat, weights)
        return result.reshape(*activations.shape[:-1], weights.shape[-1])
    raise ValueError(f"precision must be 'fp32', 'fp16' or 'int8', got {precision!r}")


@dataclass
class Linear:
    """Affine layer ``y = x W + b`` with selectable matmul precision."""

    weight: np.ndarray
    bias: np.ndarray
    precision: str = "fp32"

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError(f"weight must be 2-D, got shape {self.weight.shape}")
        if self.bias.shape != (self.weight.shape[1],):
            raise ValueError(
                f"bias shape {self.bias.shape} does not match weight output dim "
                f"{self.weight.shape[1]}"
            )

    @classmethod
    def initialize(
        cls,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        precision: str = "fp32",
        scale: float | None = None,
    ) -> "Linear":
        """Gaussian initialisation with a 1/sqrt(fan_in) scale by default."""
        scale = scale if scale is not None else 1.0 / np.sqrt(in_features)
        weight = rng.normal(0.0, scale, size=(in_features, out_features))
        bias = np.zeros(out_features)
        return cls(weight=weight, bias=bias, precision=precision)

    @property
    def in_features(self) -> int:
        return int(self.weight.shape[0])

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[1])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return matmul_with_precision(x, self.weight, self.precision) + self.bias

    def num_parameters(self) -> int:
        return int(self.weight.size + self.bias.size)


@dataclass
class Embedding:
    """Token + position embedding table."""

    token_table: np.ndarray
    position_table: np.ndarray

    def __post_init__(self) -> None:
        self.token_table = np.asarray(self.token_table, dtype=np.float64)
        self.position_table = np.asarray(self.position_table, dtype=np.float64)
        if self.token_table.shape[1] != self.position_table.shape[1]:
            raise ValueError("token and position embeddings must share the hidden size")

    @classmethod
    def initialize(
        cls,
        vocab_size: int,
        max_sequence_length: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> "Embedding":
        return cls(
            token_table=rng.normal(0.0, 1.0, size=(vocab_size, hidden_size)),
            position_table=rng.normal(0.0, 0.1, size=(max_sequence_length, hidden_size)),
        )

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        """Look up embeddings for integer token ids of shape (batch, seq)."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be 2-D (batch, seq), got {token_ids.shape}")
        if np.any(token_ids < 0) or np.any(token_ids >= self.token_table.shape[0]):
            raise ValueError("token id out of vocabulary range")
        seq_len = token_ids.shape[1]
        if seq_len > self.position_table.shape[0]:
            raise ValueError(
                f"sequence length {seq_len} exceeds maximum "
                f"{self.position_table.shape[0]}"
            )
        return self.token_table[token_ids] + self.position_table[:seq_len]

    def num_parameters(self) -> int:
        return int(self.token_table.size + self.position_table.size)


@dataclass
class NormParameters:
    """Per-channel affine parameters (gamma, beta) of a normalisation layer.

    Used both by LayerNorm (where the statistics normalisation runs through
    the non-linear backend) and by MobileBERT-style NoNorm (where only this
    affine transform is applied — no statistics, hence no transcendental op).
    """

    gamma: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        self.gamma = np.asarray(self.gamma, dtype=np.float64)
        self.beta = np.asarray(self.beta, dtype=np.float64)
        if self.gamma.shape != self.beta.shape:
            raise ValueError("gamma and beta must have the same shape")

    @classmethod
    def initialize(cls, hidden_size: int, rng: np.random.Generator | None = None) -> "NormParameters":
        gamma = np.ones(hidden_size)
        beta = np.zeros(hidden_size)
        if rng is not None:
            # Mild random affine keeps frozen random encoders from being
            # perfectly symmetric across channels.
            gamma = gamma + rng.normal(0.0, 0.05, size=hidden_size)
            beta = beta + rng.normal(0.0, 0.05, size=hidden_size)
        return cls(gamma=gamma, beta=beta)

    def apply_affine(self, x: np.ndarray) -> np.ndarray:
        """The NoNorm path: element-wise ``gamma * x + beta``."""
        return x * self.gamma + self.beta

    def num_parameters(self) -> int:
        return int(self.gamma.size + self.beta.size)
