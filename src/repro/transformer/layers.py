"""Basic numpy layers for the Transformer substrate.

Everything is forward-only (the encoders are frozen feature extractors in the
software experiments; only the task heads are trained, by closed-form or
gradient fitting in ``repro.tasks.finetune``).  The linear layers support the
three matmul precision settings used in the paper's experiments: FP32, FP16
(Table 3) and INT8 (Table 2(b), I-BERT's quantised baseline).

Inference fast path
-------------------
:class:`Linear` follows I-BERT's static-weight discipline: the weight operand
for the selected precision (a dtype-cast copy for FP32/FP16, the quantised
integer tensor for INT8) is prepared once on first use and reused across all
forward calls.  ``invalidate()`` drops the prepared operands — calibration
flows that overwrite ``weight`` in place must call it; rebinding the
``weight`` attribute invalidates automatically.  ``compute_dtype`` selects the
engine's float width (float64 reproduces the seed numerics bit for bit;
float32 is what the vectorized inference engine runs on).  Constructing with
``cache_weights=False`` restores the seed behaviour of re-deriving the weight
operand on every call — the benchmark-regression harness uses it as the
reference path.
"""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..core.kernels import resolve_kernel
from ..quant.fixed_point import quantize, quantized_matmul
from ..quant.fp16 import fp16_matmul

__all__ = [
    "Linear",
    "CachedQuantizedLinear",
    "Embedding",
    "NormParameters",
    "matmul_with_precision",
]

#: compute dtypes supported by the inference engine.
COMPUTE_DTYPES: Dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

def matmul_with_precision(
    activations: np.ndarray, weights: np.ndarray, precision: str = "fp32"
) -> np.ndarray:
    """Matrix multiply in the requested precision.

    ``"fp32"`` uses float64/float32 numpy matmul; ``"fp16"`` casts operands to
    half precision; ``"int8"`` performs symmetric per-tensor INT8xINT8->INT32
    accumulation with float dequantisation (the I-BERT inference setting).

    This is the uncached reference: weights are re-prepared on every call.
    :class:`Linear` provides the cached inference path.
    """
    if precision == "fp32":
        return np.matmul(activations, weights)
    if precision == "fp16":
        return fp16_matmul(activations, weights)
    if precision == "int8":
        flat = activations.reshape(-1, activations.shape[-1])
        result = quantized_matmul(flat, weights)
        return result.reshape(*activations.shape[:-1], weights.shape[-1])
    raise ValueError(f"precision must be 'fp32', 'fp16' or 'int8', got {precision!r}")


@dataclass
class Linear:
    """Affine layer ``y = x W + b`` with selectable matmul precision.

    The weight operand for the active ``(precision, compute_dtype)`` pair is
    prepared once and cached (see the module docstring); disable with
    ``cache_weights=False`` to reproduce the seed's per-call requantisation.
    """

    weight: np.ndarray
    bias: np.ndarray
    precision: str = "fp32"
    compute_dtype: str = "float64"
    cache_weights: bool = True
    kernel: str = "numpy"

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError(f"weight must be 2-D, got shape {self.weight.shape}")
        if self.bias.shape != (self.weight.shape[1],):
            raise ValueError(
                f"bias shape {self.bias.shape} does not match weight output dim "
                f"{self.weight.shape[1]}"
            )
        if self.compute_dtype not in COMPUTE_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {sorted(COMPUTE_DTYPES)}, "
                f"got {self.compute_dtype!r}"
            )
        # Resolved once: a kernel is part of the layer's engine identity, like
        # its precision.  "native" degrades to the numpy kernel (one warning
        # per process) when no C toolchain is available — identical results.
        self._kernel_obj = resolve_kernel(self.kernel)
        # (precision, compute_dtype) -> (source weight ref, prepared operand,
        # weight scale or None, bias in compute dtype, source bias ref).
        self._prepared: Dict[Tuple[str, str], Tuple] = {}

    @classmethod
    def initialize(
        cls,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        precision: str = "fp32",
        scale: float | None = None,
        compute_dtype: str = "float64",
        cache_weights: bool = True,
        kernel: str = "numpy",
    ) -> "Linear":
        """Gaussian initialisation with a 1/sqrt(fan_in) scale by default."""
        scale = scale if scale is not None else 1.0 / np.sqrt(in_features)
        weight = rng.normal(0.0, scale, size=(in_features, out_features))
        bias = np.zeros(out_features, dtype=np.float64)
        return cls(
            weight=weight,
            bias=bias,
            precision=precision,
            compute_dtype=compute_dtype,
            cache_weights=cache_weights,
            kernel=kernel,
        )

    @property
    def in_features(self) -> int:
        return int(self.weight.shape[0])

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[1])

    def invalidate(self) -> None:
        """Drop all prepared weight operands (after in-place weight edits)."""
        self._prepared.clear()

    def prepare(self) -> None:
        """Eagerly prepare the weight operand for the active precision.

        Preparation is otherwise lazy (first forward call); serving sessions
        call this up front so no request pays the one-time quantisation /
        cast cost.  A no-op when ``cache_weights`` is disabled.
        """
        if self.cache_weights:
            self._prepared_operands()

    def _prepared_operands(self) -> Tuple:
        """Weight operand + bias for the active precision, prepared once."""
        key = (self.precision, self.compute_dtype)
        entry = self._prepared.get(key)
        if entry is not None and entry[0] is self.weight and entry[4] is self.bias:
            return entry
        dtype = COMPUTE_DTYPES[self.compute_dtype]
        if self.precision == "fp32":
            operand = self.weight.astype(dtype, copy=False)
            weight_scale = None
        elif self.precision == "fp16":
            # storage precision float16, accumulator precision float32 — the
            # same convention as quant.fp16.fp16_matmul.
            operand = self.weight.astype(np.float16).astype(np.float32)
            weight_scale = None
        elif self.precision == "int8":
            w_q = quantize(self.weight, num_bits=8)
            # The packed format is kernel-private: a float64 carrier of the
            # exact quantised integers for the numpy kernel (BLAS-fast), a
            # transposed int8 tensor + column sums for the native GEMM.
            operand = self._kernel_obj.pack_weight_int8(w_q.data)
            weight_scale = w_q.scale
        else:
            raise ValueError(
                f"precision must be 'fp32', 'fp16' or 'int8', got {self.precision!r}"
            )
        entry = (
            self.weight,
            operand,
            weight_scale,
            self.bias.astype(dtype, copy=False),
            self.bias,
        )
        self._prepared[key] = entry
        return entry

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if not self.cache_weights:
            return matmul_with_precision(x, self.weight, self.precision) + self.bias
        _, operand, weight_scale, bias, _ = self._prepared_operands()
        dtype = COMPUTE_DTYPES[self.compute_dtype]
        if self.precision == "fp32":
            return self._kernel_obj.matmul_fp32(x, operand, dtype, bias=bias)
        if self.precision == "fp16":
            a = np.asarray(x, dtype=np.float16).astype(np.float32)
            result = np.matmul(a, operand).astype(dtype, copy=False)
            result += bias
            return result
        return self._kernel_obj.linear_int8(x, operand, weight_scale, dtype, bias=bias)

    def call_prebias(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(x W, bias)`` — the matmul result *without* the bias added.

        The fused-epilogue entry point: the encoder hands the raw projection
        plus the (compute-dtype) bias to a compute kernel, which folds the
        bias add into its single pass over the tensor (bias+LUT,
        bias+residual, bias+ReLU).  Requires the cached fast path; the
        uncached reference has no prepared bias to hand out.
        """
        if not self.cache_weights:
            raise RuntimeError(
                "call_prebias requires cache_weights=True (the uncached "
                "reference path has no prepared operands)"
            )
        _, operand, weight_scale, bias, _ = self._prepared_operands()
        dtype = COMPUTE_DTYPES[self.compute_dtype]
        if self.precision == "fp32":
            return self._kernel_obj.matmul_fp32(x, operand, dtype), bias
        if self.precision == "fp16":
            a = np.asarray(x, dtype=np.float16).astype(np.float32)
            return np.matmul(a, operand).astype(dtype, copy=False), bias
        return self._kernel_obj.linear_int8(x, operand, weight_scale, dtype), bias

    def num_parameters(self) -> int:
        return int(self.weight.size + self.bias.size)


@dataclass
class CachedQuantizedLinear(Linear):
    """Explicitly-named cached fast path (identical to ``Linear`` defaults).

    Exists so call sites following I-BERT's static-weight-quantisation
    discipline can say what they mean; ``Linear`` already caches unless
    constructed with ``cache_weights=False``.
    """


@dataclass
class Embedding:
    """Token + position embedding table."""

    token_table: np.ndarray
    position_table: np.ndarray

    def __post_init__(self) -> None:
        self.token_table = np.asarray(self.token_table, dtype=np.float64)
        self.position_table = np.asarray(self.position_table, dtype=np.float64)
        if self.token_table.shape[1] != self.position_table.shape[1]:
            raise ValueError("token and position embeddings must share the hidden size")

    @classmethod
    def initialize(
        cls,
        vocab_size: int,
        max_sequence_length: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> "Embedding":
        return cls(
            token_table=rng.normal(0.0, 1.0, size=(vocab_size, hidden_size)),
            position_table=rng.normal(0.0, 0.1, size=(max_sequence_length, hidden_size)),
        )

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        """Look up embeddings for integer token ids of shape (batch, seq)."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be 2-D (batch, seq), got {token_ids.shape}")
        if np.any(token_ids < 0) or np.any(token_ids >= self.token_table.shape[0]):
            raise ValueError("token id out of vocabulary range")
        seq_len = token_ids.shape[1]
        if seq_len > self.position_table.shape[0]:
            raise ValueError(
                f"sequence length {seq_len} exceeds maximum "
                f"{self.position_table.shape[0]}"
            )
        return self.token_table[token_ids] + self.position_table[:seq_len]

    def num_parameters(self) -> int:
        return int(self.token_table.size + self.position_table.size)


@dataclass
class NormParameters:
    """Per-channel affine parameters (gamma, beta) of a normalisation layer.

    Used both by LayerNorm (where the statistics normalisation runs through
    the non-linear backend) and by MobileBERT-style NoNorm (where only this
    affine transform is applied — no statistics, hence no transcendental op).
    """

    gamma: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        self.gamma = np.asarray(self.gamma, dtype=np.float64)
        self.beta = np.asarray(self.beta, dtype=np.float64)
        if self.gamma.shape != self.beta.shape:
            raise ValueError("gamma and beta must have the same shape")
        self._cast_cache: Dict[np.dtype, Tuple] = {}

    @classmethod
    def initialize(cls, hidden_size: int, rng: np.random.Generator | None = None) -> "NormParameters":
        gamma = np.ones(hidden_size, dtype=np.float64)
        beta = np.zeros(hidden_size, dtype=np.float64)
        if rng is not None:
            # Mild random affine keeps frozen random encoders from being
            # perfectly symmetric across channels.
            gamma = gamma + rng.normal(0.0, 0.05, size=hidden_size)
            beta = beta + rng.normal(0.0, 0.05, size=hidden_size)
        return cls(gamma=gamma, beta=beta)

    def cast(self, dtype: np.dtype) -> Tuple[np.ndarray, np.ndarray]:
        """(gamma, beta) in ``dtype``, cast once and cached across calls."""
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            return self.gamma, self.beta
        entry = self._cast_cache.get(dtype)
        if entry is not None and entry[0] is self.gamma and entry[1] is self.beta:
            return entry[2], entry[3]
        gamma = self.gamma.astype(dtype)
        beta = self.beta.astype(dtype)
        self._cast_cache[dtype] = (self.gamma, self.beta, gamma, beta)
        return gamma, beta

    def apply_affine(self, x: np.ndarray) -> np.ndarray:
        """The NoNorm path: element-wise ``gamma * x + beta``."""
        x = np.asarray(x)
        if x.dtype in (np.float32, np.float64):
            gamma, beta = self.cast(x.dtype)
        else:
            gamma, beta = self.gamma, self.beta
        result = x * gamma
        result += beta
        return result

    def num_parameters(self) -> int:
        return int(self.gamma.size + self.beta.size)
