"""Task heads fitted on top of frozen encoder features.

The heads are deliberately simple (a single affine map) so they can be fitted
in closed form or with a few hundred gradient steps on CPU:

* :class:`ClassificationHead` — softmax regression over pooled features
  (GLUE classification tasks: MRPC, RTE, CoLA, SST-2, QQP, MNLI, QNLI).
* :class:`RegressionHead` — ridge regression over pooled features (STS-B).
* :class:`SpanHead` — per-token start/end logits (SQuAD-style span
  extraction).

They are *trained once* on features produced with the exact backend, then
*evaluated* on features produced by whichever approximate backend is under
test — the paper's direct-approximation protocol.
"""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

from dataclasses import dataclass

import numpy as np

from ..core.functions import softmax

__all__ = ["ClassificationHead", "RegressionHead", "SpanHead"]


@dataclass
class ClassificationHead:
    """Multinomial logistic-regression head over pooled features."""

    weight: np.ndarray
    bias: np.ndarray

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        learning_rate: float = 0.5,
        epochs: int = 200,
        l2: float = 1e-3,
        seed: int = 0,
    ) -> "ClassificationHead":
        """Fit by full-batch gradient descent on the cross-entropy loss."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if labels.shape[0] != features.shape[0]:
            raise ValueError("labels and features must have the same number of rows")
        rng = np.random.default_rng(seed)
        num_samples, dim = features.shape
        weight = rng.normal(0.0, 0.01, size=(dim, num_classes))
        bias = np.zeros(num_classes, dtype=np.float64)
        one_hot = np.eye(num_classes, dtype=np.float64)[labels]
        for _ in range(epochs):
            logits = features @ weight + bias
            probabilities = softmax(logits, axis=-1)
            grad_logits = (probabilities - one_hot) / num_samples
            grad_weight = features.T @ grad_logits + l2 * weight
            grad_bias = grad_logits.sum(axis=0)
            weight -= learning_rate * grad_weight
            bias -= learning_rate * grad_bias
        return cls(weight=weight, bias=bias)

    def logits(self, features: np.ndarray) -> np.ndarray:
        return np.asarray(features, dtype=np.float64) @ self.weight + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(features), axis=-1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return softmax(self.logits(features), axis=-1)


@dataclass
class RegressionHead:
    """Ridge-regression head over pooled features (STS-B similarity scores)."""

    weight: np.ndarray
    bias: float

    @classmethod
    def fit(cls, features: np.ndarray, targets: np.ndarray, l2: float = 1e-2) -> "RegressionHead":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        design = np.concatenate(
            [features, np.ones((features.shape[0], 1), dtype=np.float64)], axis=1
        )
        gram = design.T @ design + l2 * np.eye(design.shape[1], dtype=np.float64)
        solution = np.linalg.solve(gram, design.T @ targets)
        return cls(weight=solution[:-1], bias=float(solution[-1]))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.asarray(features, dtype=np.float64) @ self.weight + self.bias


@dataclass
class SpanHead:
    """Span-extraction head: per-token membership scoring + best-window search.

    The head fits a single linear scorer for "this token belongs to the answer
    span" (ridge regression on 0/1 membership targets) and predicts the span
    as the contiguous window that maximises the total thresholded score — a
    deterministic, CPU-friendly stand-in for the usual start/end softmax head
    that preserves the property Table 3 relies on: the prediction quality
    tracks how cleanly the encoder features separate answer tokens.
    """

    weight: np.ndarray
    bias: float
    max_span_length: int = 12

    @classmethod
    def fit(
        cls,
        token_features: np.ndarray,
        start_positions: np.ndarray,
        end_positions: np.ndarray,
        l2: float = 1e-2,
        max_span_length: int = 12,
    ) -> "SpanHead":
        """Fit the membership scorer on labelled (start, end) spans."""
        token_features = np.asarray(token_features, dtype=np.float64)
        if token_features.ndim != 3:
            raise ValueError(
                f"token_features must be (examples, seq, hidden), got {token_features.shape}"
            )
        num_examples, seq_len, hidden = token_features.shape
        starts = np.asarray(start_positions, dtype=np.int64)
        ends = np.asarray(end_positions, dtype=np.int64)
        if starts.shape != (num_examples,) or ends.shape != (num_examples,):
            raise ValueError("start/end positions must have one entry per example")
        positions = np.arange(seq_len)
        membership = (
            (positions[None, :] >= starts[:, None]) & (positions[None, :] <= ends[:, None])
        ).astype(np.float64)

        flat = token_features.reshape(-1, hidden)
        design = np.concatenate(
            [flat, np.ones((flat.shape[0], 1), dtype=np.float64)], axis=1
        )
        gram = design.T @ design + l2 * np.eye(design.shape[1], dtype=np.float64)
        solution = np.linalg.solve(gram, design.T @ membership.reshape(-1))
        return cls(weight=solution[:-1], bias=float(solution[-1]), max_span_length=max_span_length)

    def scores(self, token_features: np.ndarray) -> np.ndarray:
        """Per-token membership scores, shape ``(examples, seq)``."""
        return np.asarray(token_features, dtype=np.float64) @ self.weight + self.bias

    def predict(self, token_features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return predicted (start, end) indices per example."""
        scores = self.scores(token_features)
        num_examples, seq_len = scores.shape
        starts = np.empty(num_examples, dtype=np.int64)
        ends = np.empty(num_examples, dtype=np.int64)
        for i in range(num_examples):
            row = scores[i]
            # Threshold halfway between the background level (median) and the
            # peak, then search the window maximising the thresholded mass.
            threshold = 0.5 * (np.median(row) + np.max(row))
            adjusted = row - threshold
            best_value, best_start, best_end = -np.inf, 0, 0
            for start in range(seq_len):
                running = 0.0
                for end in range(start, min(seq_len, start + self.max_span_length)):
                    running += adjusted[end]
                    if running > best_value:
                        best_value, best_start, best_end = running, start, end
            starts[i] = best_start
            ends[i] = best_end
        return starts, ends
