"""Transformer encoder layers and stacks."""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.approximators import LutGelu
from .attention import MultiHeadSelfAttention
from .config import TransformerConfig
from .layers import Linear, NormParameters
from .nonlinear_backend import NonlinearBackend

__all__ = ["TransformerEncoderLayer", "TransformerEncoder"]


@dataclass
class TransformerEncoderLayer:
    """Post-LN encoder layer: attention + FFN, each with residual + norm.

    The feed-forward activation is GELU for BERT/RoBERTa-style configurations
    and ReLU for MobileBERT-style ones; the normalisation is either LayerNorm
    (statistics through the backend) or NoNorm (element-wise affine only).
    """

    attention: MultiHeadSelfAttention
    ffn_in: Linear
    ffn_out: Linear
    attention_norm: NormParameters
    output_norm: NormParameters
    activation: str = "gelu"
    normalization: str = "layernorm"

    @classmethod
    def initialize(
        cls, config: TransformerConfig, rng: np.random.Generator
    ) -> "TransformerEncoderLayer":
        engine = dict(
            precision=config.matmul_precision,
            compute_dtype=config.compute_dtype,
            kernel=config.kernel,
        )
        return cls(
            attention=MultiHeadSelfAttention.initialize(config, rng),
            ffn_in=Linear.initialize(
                config.hidden_size, config.intermediate_size, rng, **engine
            ),
            ffn_out=Linear.initialize(
                config.intermediate_size, config.hidden_size, rng, **engine
            ),
            attention_norm=NormParameters.initialize(config.hidden_size, rng),
            output_norm=NormParameters.initialize(config.hidden_size, rng),
            activation=config.activation,
            normalization=config.normalization,
        )

    def _normalise(
        self, x: np.ndarray, params: NormParameters, backend: NonlinearBackend
    ) -> np.ndarray:
        if self.normalization == "layernorm":
            x = np.asarray(x)
            if x.dtype in (np.float32, np.float64):
                gamma, beta = params.cast(x.dtype)
            else:
                gamma, beta = params.gamma, params.beta
            return backend.apply_layernorm(x, gamma=gamma, beta=beta)
        return params.apply_affine(x)

    def _activate(self, x: np.ndarray, backend: NonlinearBackend) -> np.ndarray:
        if self.activation == "gelu":
            return backend.apply_gelu(x)
        # x is the fresh FFN projection output, safe to clamp in place.
        return np.maximum(x, 0.0, out=x)

    def _fusion_kernel(self, backend: NonlinearBackend):
        """The compute kernel to fuse epilogues through, or None.

        Fusion needs a kernel that supports it, the cached linear fast path
        on every projection (``call_prebias`` hands out prepared biases), no
        operator-input recording (the fused path skips the per-site
        ``apply_*`` hooks for GELU), and — for GELU models — a table-driven
        GELU the kernel can evaluate.  Every fused epilogue performs the
        reference op sequence exactly (bitwise), so eligibility only selects
        *where* the work happens, never what is computed.
        """
        kernel = getattr(backend, "kernel", None)
        if kernel is None or not kernel.supports_fusion:
            return None
        if backend.recorder.enabled:
            return None
        if self.activation == "gelu" and not isinstance(backend.gelu, LutGelu):
            return None
        attention = self.attention
        linears = (
            attention.query, attention.key, attention.value, attention.output,
            self.ffn_in, self.ffn_out,
        )
        if not all(linear.cache_weights for linear in linears):
            return None
        return kernel

    def __call__(
        self,
        hidden_states: np.ndarray,
        backend: NonlinearBackend,
        attention_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        kernel = self._fusion_kernel(backend)
        if kernel is not None:
            return self._forward_fused(hidden_states, backend, attention_mask, kernel)
        attention_output = self.attention(hidden_states, backend, attention_mask)
        # The sub-layer outputs are freshly allocated, so both residual adds
        # land in them instead of a new temporary per site.
        residual = np.add(hidden_states, attention_output, out=attention_output)
        hidden_states = self._normalise(residual, self.attention_norm, backend)
        ffn_hidden = self._activate(self.ffn_in(hidden_states), backend)
        ffn_output = self.ffn_out(ffn_hidden)
        residual = np.add(hidden_states, ffn_output, out=ffn_output)
        return self._normalise(residual, self.output_norm, backend)

    def _normalise_fused(
        self,
        x: np.ndarray,
        params: NormParameters,
        backend: NonlinearBackend,
        kernel,
    ) -> np.ndarray:
        if self.normalization == "layernorm":
            # The backend's LayerNorm op carries the kernel itself (attached
            # by build_backend); the exact statistics stay in numpy either way.
            return self._normalise(x, params, backend)
        gamma, beta = params.cast(x.dtype)
        return kernel.affine(x, gamma, beta)

    def _forward_fused(
        self,
        hidden_states: np.ndarray,
        backend: NonlinearBackend,
        attention_mask: np.ndarray | None,
        kernel,
    ) -> np.ndarray:
        """The layer body with bias adds folded into single-pass epilogues.

        Same scalar operations in the same order as ``__call__`` — the bias
        add that ``Linear.__call__`` performs is done by the kernel epilogue
        immediately before the op it feeds (residual add, LUT-GELU, ReLU), so
        each tensor is traversed once instead of once per numpy op.
        """
        attn_raw, attn_bias = self.attention.forward_prebias(
            hidden_states, backend, attention_mask
        )
        residual = kernel.bias_residual(attn_raw, attn_bias, hidden_states)
        hidden_states = self._normalise_fused(
            residual, self.attention_norm, backend, kernel
        )
        ffn_raw, ffn_bias = self.ffn_in.call_prebias(hidden_states)
        if self.activation == "gelu":
            ffn_hidden = kernel.lut_gelu_bias(backend.gelu, ffn_raw, ffn_bias)
        else:
            ffn_hidden = kernel.bias_relu(ffn_raw, ffn_bias)
        out_raw, out_bias = self.ffn_out.call_prebias(ffn_hidden)
        residual = kernel.bias_residual(out_raw, out_bias, hidden_states)
        return self._normalise_fused(residual, self.output_norm, backend, kernel)

    def num_parameters(self) -> int:
        return (
            self.attention.num_parameters()
            + self.ffn_in.num_parameters()
            + self.ffn_out.num_parameters()
            + self.attention_norm.num_parameters()
            + self.output_norm.num_parameters()
        )


@dataclass
class TransformerEncoder:
    """A stack of encoder layers."""

    layers: List[TransformerEncoderLayer] = field(default_factory=list)

    @classmethod
    def initialize(cls, config: TransformerConfig, rng: np.random.Generator) -> "TransformerEncoder":
        layers = [
            TransformerEncoderLayer.initialize(config, rng) for _ in range(config.num_layers)
        ]
        return cls(layers=layers)

    def __call__(
        self,
        hidden_states: np.ndarray,
        backend: NonlinearBackend,
        attention_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        for layer in self.layers:
            hidden_states = layer(hidden_states, backend, attention_mask)
        return hidden_states

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def num_parameters(self) -> int:
        return sum(layer.num_parameters() for layer in self.layers)
