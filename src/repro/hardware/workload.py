"""Transformer inference workload model.

Counts, per encoder layer and for a whole forward pass, the work the
accelerator has to execute: MAC operations for every matrix multiplication
and element/row counts for every non-linear operator.  The counts are derived
from the model configuration (RoBERTa-base by default, matching Table 5) and
the sequence length, and are consumed by the accelerator cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..transformer.config import TransformerConfig, roberta_base_config

__all__ = ["MatmulOp", "NonlinearOp", "LayerWorkload", "TransformerWorkload", "build_workload"]


@dataclass(frozen=True)
class MatmulOp:
    """One matrix multiplication: ``(rows x inner) @ (inner x cols)``."""

    name: str
    rows: int
    inner: int
    cols: int

    @property
    def macs(self) -> int:
        return int(self.rows) * int(self.inner) * int(self.cols)


@dataclass(frozen=True)
class NonlinearOp:
    """One non-linear operator invocation.

    ``elements`` is the number of scalar evaluations; ``rows`` the number of
    reduction groups (softmax rows, layernorm rows) — per-row work such as the
    max/sum reductions and the final division/rsqrt is charged per row.
    """

    kind: str  # "gelu" | "softmax" | "layernorm"
    elements: int
    rows: int


@dataclass
class LayerWorkload:
    """All operations of one encoder layer."""

    matmuls: List[MatmulOp]
    nonlinears: List[NonlinearOp]
    residual_elements: int

    @property
    def total_macs(self) -> int:
        return sum(op.macs for op in self.matmuls)


@dataclass
class TransformerWorkload:
    """Workload of a full forward pass."""

    config: TransformerConfig
    sequence_length: int
    layers: List[LayerWorkload]
    embedding_elements: int

    @property
    def total_macs(self) -> int:
        return sum(layer.total_macs for layer in self.layers)

    def nonlinear_totals(self) -> Dict[str, Dict[str, int]]:
        """Aggregate element/row counts per non-linear operator kind."""
        totals: Dict[str, Dict[str, int]] = {}
        for layer in self.layers:
            for op in layer.nonlinears:
                entry = totals.setdefault(op.kind, {"elements": 0, "rows": 0})
                entry["elements"] += op.elements
                entry["rows"] += op.rows
        return totals


def _layer_workload(config: TransformerConfig, seq_len: int) -> LayerWorkload:
    hidden = config.hidden_size
    heads = config.num_heads
    head_dim = config.head_dim
    inter = config.intermediate_size

    matmuls = [
        MatmulOp("query_proj", seq_len, hidden, hidden),
        MatmulOp("key_proj", seq_len, hidden, hidden),
        MatmulOp("value_proj", seq_len, hidden, hidden),
        MatmulOp("attention_scores", heads * seq_len, head_dim, seq_len),
        MatmulOp("attention_context", heads * seq_len, seq_len, head_dim),
        MatmulOp("attention_output", seq_len, hidden, hidden),
        MatmulOp("ffn_in", seq_len, hidden, inter),
        MatmulOp("ffn_out", seq_len, inter, hidden),
    ]

    nonlinears: List[NonlinearOp] = [
        NonlinearOp("softmax", elements=heads * seq_len * seq_len, rows=heads * seq_len),
    ]
    if config.activation == "gelu":
        nonlinears.append(NonlinearOp("gelu", elements=seq_len * inter, rows=seq_len))
    if config.normalization == "layernorm":
        nonlinears.append(NonlinearOp("layernorm", elements=2 * seq_len * hidden, rows=2 * seq_len))

    residual_elements = 2 * seq_len * hidden
    return LayerWorkload(
        matmuls=matmuls, nonlinears=nonlinears, residual_elements=residual_elements
    )


def build_workload(
    sequence_length: int, config: TransformerConfig | None = None
) -> TransformerWorkload:
    """Build the per-layer workload for ``sequence_length`` tokens.

    Defaults to RoBERTa-base, the model used in the paper's Table 5.
    """
    if sequence_length < 1:
        raise ValueError("sequence_length must be >= 1")
    config = config or roberta_base_config()
    if sequence_length > config.max_sequence_length:
        raise ValueError(
            f"sequence_length {sequence_length} exceeds the configuration maximum "
            f"{config.max_sequence_length}"
        )
    layers = [_layer_workload(config, sequence_length) for _ in range(config.num_layers)]
    return TransformerWorkload(
        config=config,
        sequence_length=sequence_length,
        layers=layers,
        embedding_elements=sequence_length * config.hidden_size,
    )
