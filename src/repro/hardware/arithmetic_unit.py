"""Arithmetic-unit cost models for NN-LUT and I-BERT (paper Table 4).

Each unit is assembled from the :mod:`repro.hardware.components` library
following the datapaths of Figure 3:

* **NN-LUT unit** (Fig. 3a): a breakpoint comparator bank, the 16-entry
  parameter table, one multiplier, one adder and the pipeline registers of a
  two-stage pipeline (stage 1: compare + look-up, stage 2: multiply-add).
  The same unit evaluates GELU, EXP, DIV and 1/SQRT — only the table contents
  change — so its latency is 2 cycles for every operation.
* **I-BERT unit** (Fig. 3b): the union of the datapaths needed by I-BERT's
  integer GELU / EXP / SQRT algorithms — two multipliers, several adders, an
  integer divider, shifters, the mux/demux steering network and roughly a
  dozen pipeline registers.  Operations take 3 (GELU), 4 (EXP) and 5 (SQRT)
  cycles because they iterate through the shared datapath.

The returned figures are produced by the calibrated component library; see
DESIGN.md for the calibration policy (structure from the paper, coefficients
tuned so totals land near Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .components import ComponentCost, ComponentLibrary, default_library

__all__ = [
    "UnitCost",
    "NnLutUnit",
    "IBertUnit",
    "build_table4_units",
]


@dataclass
class UnitCost:
    """Aggregated cost of an arithmetic unit plus its per-op latency."""

    name: str
    precision: str
    area_um2: float
    power_mw: float
    delay_ns: float
    latency_cycles: Dict[str, int]
    inventory: Dict[str, Tuple[int, ComponentCost]] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Row for the Table 4 report."""
        return {
            "unit": self.name,
            "precision": self.precision,
            "area_um2": round(self.area_um2, 2),
            "power_mw": round(self.power_mw, 4),
            "delay_ns": round(self.delay_ns, 2),
            "latency_cycles": dict(self.latency_cycles),
        }


def _accumulate(
    inventory: Dict[str, Tuple[int, ComponentCost]]
) -> Tuple[float, float]:
    """Sum area and power over an inventory of (count, unit cost) entries."""
    area = sum(count * cost.area_um2 for count, cost in inventory.values())
    power = sum(count * cost.power_mw for count, cost in inventory.values())
    return area, power


@dataclass
class NnLutUnit:
    """NN-LUT arithmetic unit (Fig. 3a of the paper)."""

    precision: str = "int32"
    num_entries: int = 16
    library: ComponentLibrary = field(default_factory=default_library)

    _PRECISION_BITS = {"int32": 32, "fp32": 32, "fp16": 16}

    def __post_init__(self) -> None:
        if self.precision not in self._PRECISION_BITS:
            raise ValueError(
                f"precision must be one of {tuple(self._PRECISION_BITS)}, got {self.precision!r}"
            )
        if self.num_entries < 2:
            raise ValueError("num_entries must be >= 2")

    @property
    def bits(self) -> int:
        return self._PRECISION_BITS[self.precision]

    @property
    def is_floating_point(self) -> bool:
        return self.precision.startswith("fp")

    def _multiplier(self) -> ComponentCost:
        return (
            self.library.fp_multiplier(self.bits)
            if self.is_floating_point
            else self.library.multiplier(self.bits)
        )

    def _adder(self) -> ComponentCost:
        return (
            self.library.fp_adder(self.bits)
            if self.is_floating_point
            else self.library.adder(self.bits)
        )

    @property
    def comparator_bits(self) -> int:
        """Breakpoint comparator width.

        Figure 3(a) labels the comparator bank "16 bit": breakpoints are stored
        at 16-bit precision regardless of the datapath width, which is enough
        to index 16 segments.
        """
        return min(self.bits, 16)

    def inventory(self) -> Dict[str, Tuple[int, ComponentCost]]:
        """Component inventory of the two-stage LUT pipeline."""
        lib = self.library
        bits = self.bits
        return {
            # Stage 1: breakpoint comparison, priority encoding, parameter look-up.
            "breakpoint_comparator": (self.num_entries - 1, lib.comparator(self.comparator_bits)),
            "index_encoder": (1, lib.comparator(8)),
            "parameter_table": (1, lib.table(self.num_entries, 2 * bits)),
            # Stage 2: first-order evaluation s*x + t.
            "multiplier": (1, self._multiplier()),
            "adder": (1, self._adder()),
            # Pipeline registers (x, s, t, result), Fig. 3a reg0-reg3.
            "pipeline_register": (4, lib.register(bits)),
        }

    def cost(self) -> UnitCost:
        inventory = self.inventory()
        area, power = _accumulate(inventory)
        # Critical path: the longer of the two pipeline stages.
        lib = self.library
        stage1 = (
            lib.comparator(self.comparator_bits).delay_ns
            + lib.table(self.num_entries, 2 * self.bits).delay_ns
            + lib.register(self.bits).delay_ns
        )
        stage2 = (
            self._multiplier().delay_ns + self._adder().delay_ns + lib.register(self.bits).delay_ns
        )
        delay = max(stage1, stage2)
        latency = {"gelu": 2, "exp": 2, "div": 2, "rsqrt": 2}
        return UnitCost(
            name="NN-LUT",
            precision=self.precision.upper(),
            area_um2=area,
            power_mw=power,
            delay_ns=delay,
            latency_cycles=latency,
            inventory=inventory,
        )


@dataclass
class IBertUnit:
    """I-BERT integer approximation unit (Fig. 3b of the paper)."""

    precision: str = "int32"
    library: ComponentLibrary = field(default_factory=default_library)

    def __post_init__(self) -> None:
        if self.precision != "int32":
            raise ValueError("the I-BERT unit is defined for INT32 arithmetic only")

    @property
    def bits(self) -> int:
        return 32

    def inventory(self) -> Dict[str, Tuple[int, ComponentCost]]:
        """Component inventory of the shared I-BERT datapath (Fig. 3b)."""
        lib = self.library
        bits = self.bits
        return {
            # Polynomial evaluation datapath: (x + b)^2 * a + c needs two
            # multipliers and several adders (add0-add4 in the figure).
            "multiplier": (2, lib.multiplier(bits)),
            "adder": (5, lib.adder(bits)),
            # Exp range reduction and sqrt iteration shifting (shft0-shft3).
            "shifter": (4, lib.shifter(bits)),
            # Newton-iteration / softmax normalisation divider (div0).
            "divider": (1, lib.divider(bits)),
            # Operand steering: mux0-mux7 plus the demux.
            "mux": (8, lib.mux(bits, ways=2)),
            "demux": (1, lib.mux(bits, ways=2)),
            # Pipeline / loop state registers reg0-reg10.
            "pipeline_register": (11, lib.register(bits)),
        }

    def cost(self) -> UnitCost:
        inventory = self.inventory()
        area, power = _accumulate(inventory)
        lib = self.library
        bits = self.bits
        # Critical path runs through the divider stage: steering mux, divider,
        # accumulation adder and the loop register.
        delay = (
            lib.mux(bits, ways=2).delay_ns
            + lib.divider(bits).delay_ns
            + lib.adder(bits).delay_ns
            + lib.register(bits).delay_ns
        )
        latency = {"gelu": 3, "exp": 4, "rsqrt": 5, "div": 5}
        return UnitCost(
            name="I-BERT",
            precision="INT32",
            area_um2=area,
            power_mw=power,
            delay_ns=delay,
            latency_cycles=latency,
            inventory=inventory,
        )


def build_table4_units(
    library: ComponentLibrary | None = None, num_entries: int = 16
) -> List[UnitCost]:
    """The four columns of Table 4: I-BERT INT32 and NN-LUT INT32/FP16/FP32."""
    library = library or default_library()
    return [
        IBertUnit(library=library).cost(),
        NnLutUnit(precision="int32", num_entries=num_entries, library=library).cost(),
        NnLutUnit(precision="fp16", num_entries=num_entries, library=library).cost(),
        NnLutUnit(precision="fp32", num_entries=num_entries, library=library).cost(),
    ]
