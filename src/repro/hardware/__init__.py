"""Hardware cost models: arithmetic units (Table 4) and the NPU cycle model (Table 5)."""

from .accelerator import (
    AcceleratorConfig,
    AcceleratorSimulator,
    CycleBreakdown,
    IBERT_COST_MODEL,
    NN_LUT_COST_MODEL,
    NonlinearCostModel,
)
from .arithmetic_unit import IBertUnit, NnLutUnit, UnitCost, build_table4_units
from .components import ComponentCost, ComponentLibrary, default_library
from .performance import (
    PAPER_SEQUENCE_LENGTHS,
    SequencePoint,
    SystemComparison,
    run_system_comparison,
)
from .workload import (
    LayerWorkload,
    MatmulOp,
    NonlinearOp,
    TransformerWorkload,
    build_workload,
)

__all__ = [
    "ComponentCost",
    "ComponentLibrary",
    "default_library",
    "UnitCost",
    "NnLutUnit",
    "IBertUnit",
    "build_table4_units",
    "MatmulOp",
    "NonlinearOp",
    "LayerWorkload",
    "TransformerWorkload",
    "build_workload",
    "AcceleratorConfig",
    "AcceleratorSimulator",
    "NonlinearCostModel",
    "IBERT_COST_MODEL",
    "NN_LUT_COST_MODEL",
    "CycleBreakdown",
    "SequencePoint",
    "SystemComparison",
    "run_system_comparison",
    "PAPER_SEQUENCE_LENGTHS",
]
