"""Cycle model of the NPU-style accelerator of Figure 3(c).

The accelerator has two compute engines (each a 32x32 MAC array performing
1024 MACs per cycle), a vector of special-function units (SFU) that evaluates
the non-linear operators at a fixed number of lanes per cycle, and a shared
scratchpad.  The cycle model executes a :class:`TransformerWorkload` layer by
layer: MatMuls run on the MAC engines, non-linear operators on the SFU lanes,
and element-wise residual additions / data movement are charged to the vector
unit as well ("etc." in Table 5).

Two SFU cost models are provided, matching the two arithmetic units of
Table 4:

* the **I-BERT** unit iterates a multi-step integer datapath, so each GELU /
  Softmax / LayerNorm element costs several cycles (3 / ~5 / ~9) plus a
  per-row overhead for reductions, the exp-sum division and the Newton
  square-root;
* the **NN-LUT** unit resolves every operator in the same two-cycle
  look-up + multiply-add pipeline, with a smaller per-row overhead (the row
  reduction plus a single reciprocal / rsqrt look-up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .workload import TransformerWorkload

__all__ = [
    "AcceleratorConfig",
    "NonlinearCostModel",
    "IBERT_COST_MODEL",
    "NN_LUT_COST_MODEL",
    "CycleBreakdown",
    "AcceleratorSimulator",
]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Compute resources of the accelerator core (Fig. 3c)."""

    num_engines: int = 2
    macs_per_engine: int = 1024  # 32x32 MAC array
    sfu_lanes: int = 32
    vector_lanes: int = 32
    matmul_efficiency: float = 1.0
    fixed_overhead_cycles: int = 4000  # control / fetch / write-back per inference

    def __post_init__(self) -> None:
        if self.num_engines < 1 or self.macs_per_engine < 1:
            raise ValueError("engine configuration must be positive")
        if self.sfu_lanes < 1 or self.vector_lanes < 1:
            raise ValueError("lane counts must be positive")
        if not 0.0 < self.matmul_efficiency <= 1.0:
            raise ValueError("matmul_efficiency must be in (0, 1]")

    @property
    def macs_per_cycle(self) -> int:
        return self.num_engines * self.macs_per_engine


@dataclass(frozen=True)
class NonlinearCostModel:
    """Per-element and per-row SFU cycle costs of one approximation method."""

    name: str
    element_cycles: Dict[str, float]
    row_cycles: Dict[str, float]

    def element_cost(self, kind: str) -> float:
        try:
            return self.element_cycles[kind]
        except KeyError as exc:
            raise KeyError(f"cost model {self.name!r} has no element cost for {kind!r}") from exc

    def row_cost(self, kind: str) -> float:
        return self.row_cycles.get(kind, 0.0)


#: I-BERT arithmetic unit: multi-cycle integer sequences per element (Table 4
#: latency column) plus per-row reduction / division / square-root overhead.
IBERT_COST_MODEL = NonlinearCostModel(
    name="I-BERT",
    element_cycles={"gelu": 3.0, "softmax": 5.0, "layernorm": 9.0},
    row_cycles={"softmax": 77.0, "layernorm": 29.0},
)

#: NN-LUT arithmetic unit: every operator is a 2-cycle look-up + multiply-add;
#: rows pay the reduction plus one reciprocal / rsqrt look-up.
NN_LUT_COST_MODEL = NonlinearCostModel(
    name="NN-LUT",
    element_cycles={"gelu": 2.0, "softmax": 2.0, "layernorm": 5.0},
    row_cycles={"softmax": 30.0, "layernorm": 16.0},
)


@dataclass
class CycleBreakdown:
    """Cycle counts per operation category for one inference."""

    cycles: Dict[str, float] = field(default_factory=dict)

    CATEGORIES = ("GELU", "LayerNorm", "Softmax", "MatMul", "etc.")

    @property
    def total(self) -> float:
        return float(sum(self.cycles.values()))

    def relative(self) -> Dict[str, float]:
        """Percentage share per category (the rows of Table 5)."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot compute a relative breakdown of an empty run")
        return {key: 100.0 * value / total for key, value in self.cycles.items()}

    def as_row(self) -> Dict[str, float]:
        row = {key: round(value, 2) for key, value in self.relative().items()}
        row["total_cycles"] = round(self.total, 0)
        return row


_KIND_LABELS = {"gelu": "GELU", "softmax": "Softmax", "layernorm": "LayerNorm"}


@dataclass
class AcceleratorSimulator:
    """Executes a workload against the accelerator cycle model."""

    config: AcceleratorConfig = field(default_factory=AcceleratorConfig)

    def matmul_cycles(self, workload: TransformerWorkload) -> float:
        """Cycles the MAC engines spend on all matrix multiplications."""
        effective_rate = self.config.macs_per_cycle * self.config.matmul_efficiency
        return float(workload.total_macs) / effective_rate

    def nonlinear_cycles(
        self, workload: TransformerWorkload, cost_model: NonlinearCostModel
    ) -> Dict[str, float]:
        """SFU cycles per non-linear operator kind."""
        lanes = self.config.sfu_lanes
        cycles: Dict[str, float] = {}
        for kind, counts in workload.nonlinear_totals().items():
            per_kind = (
                counts["elements"] * cost_model.element_cost(kind)
                + counts["rows"] * cost_model.row_cost(kind)
            ) / lanes
            cycles[_KIND_LABELS[kind]] = per_kind
        return cycles

    def overhead_cycles(self, workload: TransformerWorkload) -> float:
        """Residual additions, embedding handling and fixed control overhead."""
        residual_elements = sum(layer.residual_elements for layer in workload.layers) / 2
        vector_cycles = (residual_elements + workload.embedding_elements) / self.config.vector_lanes
        return vector_cycles + self.config.fixed_overhead_cycles

    def run(
        self, workload: TransformerWorkload, cost_model: NonlinearCostModel
    ) -> CycleBreakdown:
        """Full breakdown for one inference with the given non-linear unit."""
        cycles: Dict[str, float] = {
            "GELU": 0.0,
            "LayerNorm": 0.0,
            "Softmax": 0.0,
        }
        cycles.update(self.nonlinear_cycles(workload, cost_model))
        cycles["MatMul"] = self.matmul_cycles(workload)
        cycles["etc."] = self.overhead_cycles(workload)
        return CycleBreakdown(cycles=cycles)
