"""System-level performance analysis (paper Table 5).

Runs the accelerator cycle model for RoBERTa-base inference across a sweep of
sequence lengths, once with the I-BERT non-linear unit and once with the
NN-LUT unit, and reports the relative cycle breakdown per operation category
plus the end-to-end speedup of NN-LUT over I-BERT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..transformer.config import TransformerConfig
from .accelerator import (
    AcceleratorConfig,
    AcceleratorSimulator,
    CycleBreakdown,
    IBERT_COST_MODEL,
    NN_LUT_COST_MODEL,
    NonlinearCostModel,
)
from .workload import build_workload

__all__ = ["SequencePoint", "SystemComparison", "run_system_comparison", "PAPER_SEQUENCE_LENGTHS"]

#: Sequence lengths reported in Table 5.
PAPER_SEQUENCE_LENGTHS: Sequence[int] = (16, 32, 64, 128, 256, 384, 512, 1024)


@dataclass
class SequencePoint:
    """Comparison of the two non-linear units at one sequence length."""

    sequence_length: int
    ibert: CycleBreakdown
    nn_lut: CycleBreakdown

    @property
    def speedup(self) -> float:
        """End-to-end speedup of NN-LUT over I-BERT (>1 means NN-LUT faster)."""
        return self.ibert.total / self.nn_lut.total

    def nonlinear_share(self, which: str = "ibert") -> float:
        """Percentage of cycles spent in GELU + LayerNorm + Softmax."""
        breakdown = self.ibert if which == "ibert" else self.nn_lut
        relative = breakdown.relative()
        return sum(relative.get(kind, 0.0) for kind in ("GELU", "LayerNorm", "Softmax"))


@dataclass
class SystemComparison:
    """Table-5 style sweep over sequence lengths."""

    points: List[SequencePoint] = field(default_factory=list)

    def speedups(self) -> Dict[int, float]:
        return {point.sequence_length: point.speedup for point in self.points}

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat rows convenient for printing / benchmarking."""
        rows: List[Dict[str, object]] = []
        for point in self.points:
            for name, breakdown in (("I-BERT", point.ibert), ("NN-LUT", point.nn_lut)):
                row: Dict[str, object] = {
                    "sequence_length": point.sequence_length,
                    "method": name,
                }
                row.update({k: round(v, 2) for k, v in breakdown.relative().items()})
                rows.append(row)
            rows.append(
                {
                    "sequence_length": point.sequence_length,
                    "method": "speedup",
                    "value": round(point.speedup, 3),
                }
            )
        return rows


def run_system_comparison(
    sequence_lengths: Sequence[int] = PAPER_SEQUENCE_LENGTHS,
    config: TransformerConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
    ibert_cost: NonlinearCostModel = IBERT_COST_MODEL,
    nn_lut_cost: NonlinearCostModel = NN_LUT_COST_MODEL,
) -> SystemComparison:
    """Run the Table-5 sweep.

    ``config`` defaults to RoBERTa-base; ``accelerator`` to the 2-engine,
    32-lane-SFU core of Figure 3(c).
    """
    simulator = AcceleratorSimulator(config=accelerator or AcceleratorConfig())
    comparison = SystemComparison()
    for sequence_length in sequence_lengths:
        workload = build_workload(sequence_length, config=config)
        comparison.points.append(
            SequencePoint(
                sequence_length=sequence_length,
                ibert=simulator.run(workload, ibert_cost),
                nn_lut=simulator.run(workload, nn_lut_cost),
            )
        )
    return comparison
