"""Component-level hardware cost library (7-nm class).

The paper synthesises its arithmetic units with a commercial 7-nm library and
reports area (um^2), power (mW) and critical-path delay (ns) in Table 4.  We
cannot run synthesis offline, so this module provides an analytical component
library: every datapath building block (adder, multiplier, divider, shifter,
mux, register, comparator, small SRAM/latch table) carries an area, a dynamic
power at the nominal clock, and a propagation delay, all parameterised by bit
width.

The absolute numbers are calibrated so that the *assembled* NN-LUT and I-BERT
units land in the neighbourhood of the paper's Table 4 totals; the important
reproduction target is that the ratios between the two designs (about 2.6x
area, 36x power, 3.9x delay) emerge from their component inventories
(Figure 3(a)/(b)) rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ComponentCost", "ComponentLibrary", "default_library"]


@dataclass(frozen=True)
class ComponentCost:
    """Cost of one instantiated component."""

    area_um2: float
    power_mw: float
    delay_ns: float

    def __add__(self, other: "ComponentCost") -> "ComponentCost":
        return ComponentCost(
            area_um2=self.area_um2 + other.area_um2,
            power_mw=self.power_mw + other.power_mw,
            delay_ns=max(self.delay_ns, other.delay_ns),
        )

    def scaled(self, count: int) -> "ComponentCost":
        """Cost of ``count`` parallel instances (area/power add, delay constant)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return ComponentCost(
            area_um2=self.area_um2 * count,
            power_mw=self.power_mw * count,
            delay_ns=self.delay_ns if count else 0.0,
        )


@dataclass(frozen=True)
class ComponentLibrary:
    """Per-bit component cost coefficients for a given technology corner.

    Areas grow linearly with bit width for adders/shifters/muxes/registers,
    quadratically for array multipliers and dividers; delays grow
    logarithmically (carry-lookahead/Wallace-tree style) except the divider,
    which is linear in width (iterative).  Power is modelled as proportional
    to area times an activity factor folded into the coefficient.
    """

    name: str = "generic-7nm"
    # Area coefficients (um^2).
    adder_area_per_bit: float = 1.55
    multiplier_area_per_bit2: float = 0.50
    divider_area_per_bit2: float = 0.90
    shifter_area_per_bit: float = 1.10
    mux_area_per_bit: float = 0.35
    register_area_per_bit: float = 0.80
    comparator_area_per_bit: float = 0.85
    table_area_per_bit: float = 0.20
    # Power coefficients (mW), proportional to the matching area terms.
    adder_power_per_bit: float = 1.0e-4
    multiplier_power_per_bit2: float = 1.0e-5
    divider_power_per_bit2: float = 2.0e-3
    shifter_power_per_bit: float = 8.0e-5
    mux_power_per_bit: float = 4.0e-5
    register_power_per_bit: float = 5.0e-5
    comparator_power_per_bit: float = 1.0e-4
    table_power_per_bit: float = 2.0e-6
    # Delay coefficients (ns).
    adder_delay_base: float = 0.08
    adder_delay_log: float = 0.025
    multiplier_delay_base: float = 0.12
    multiplier_delay_log: float = 0.06
    divider_delay_per_bit: float = 0.075
    shifter_delay: float = 0.07
    mux_delay: float = 0.03
    register_delay: float = 0.04
    comparator_delay_base: float = 0.06
    comparator_delay_log: float = 0.03
    table_delay_base: float = 0.09
    table_delay_log: float = 0.02

    def _log2(self, bits: int) -> float:
        from math import log2

        return log2(max(bits, 2))

    def adder(self, bits: int) -> ComponentCost:
        """Carry-lookahead adder of the given width."""
        return ComponentCost(
            area_um2=self.adder_area_per_bit * bits,
            power_mw=self.adder_power_per_bit * bits,
            delay_ns=self.adder_delay_base + self.adder_delay_log * self._log2(bits),
        )

    def multiplier(self, bits: int) -> ComponentCost:
        """Array/Wallace multiplier of the given operand width."""
        return ComponentCost(
            area_um2=self.multiplier_area_per_bit2 * bits * bits,
            power_mw=self.multiplier_power_per_bit2 * bits * bits,
            delay_ns=self.multiplier_delay_base + self.multiplier_delay_log * self._log2(bits),
        )

    def divider(self, bits: int) -> ComponentCost:
        """Iterative integer divider (the dominant block of the I-BERT unit)."""
        return ComponentCost(
            area_um2=self.divider_area_per_bit2 * bits * bits,
            power_mw=self.divider_power_per_bit2 * bits * bits,
            delay_ns=self.divider_delay_per_bit * bits,
        )

    def shifter(self, bits: int) -> ComponentCost:
        """Logarithmic barrel shifter."""
        return ComponentCost(
            area_um2=self.shifter_area_per_bit * bits,
            power_mw=self.shifter_power_per_bit * bits,
            delay_ns=self.shifter_delay,
        )

    def mux(self, bits: int, ways: int = 2) -> ComponentCost:
        """``ways``-to-1 multiplexer of the given data width."""
        stages = max(1, ways - 1)
        return ComponentCost(
            area_um2=self.mux_area_per_bit * bits * stages,
            power_mw=self.mux_power_per_bit * bits * stages,
            delay_ns=self.mux_delay * self._log2(max(ways, 2)),
        )

    def register(self, bits: int) -> ComponentCost:
        """Pipeline register (flip-flop bank)."""
        return ComponentCost(
            area_um2=self.register_area_per_bit * bits,
            power_mw=self.register_power_per_bit * bits,
            delay_ns=self.register_delay,
        )

    def comparator(self, bits: int) -> ComponentCost:
        """Magnitude comparator."""
        return ComponentCost(
            area_um2=self.comparator_area_per_bit * bits,
            power_mw=self.comparator_power_per_bit * bits,
            delay_ns=self.comparator_delay_base + self.comparator_delay_log * self._log2(bits),
        )

    #: Extra critical-path delay per floating-point operator covering rounding
    #: and exception handling logic that the integer datapath does not need.
    fp_overhead_delay: float = 0.10

    def fp_multiplier(self, bits: int) -> ComponentCost:
        """Floating-point multiplier (mantissa array, exponent add, normalise, round).

        ``bits`` is the storage width (16 or 32); the mantissa width is derived
        from the IEEE format.
        """
        mantissa = 24 if bits >= 32 else 11
        exponent = 8 if bits >= 32 else 5
        core = self.multiplier(mantissa)
        exp_add = self.adder(exponent)
        normalise = self.shifter(mantissa)
        rounding = self.adder(mantissa)
        return ComponentCost(
            area_um2=core.area_um2 + exp_add.area_um2 + normalise.area_um2 + rounding.area_um2,
            power_mw=core.power_mw + exp_add.power_mw + normalise.power_mw + rounding.power_mw,
            delay_ns=(
                core.delay_ns
                + exp_add.delay_ns * 0.5
                + normalise.delay_ns
                + rounding.delay_ns
                + self.fp_overhead_delay
            ),
        )

    def fp_adder(self, bits: int) -> ComponentCost:
        """Floating-point adder (align shifter, mantissa add, normalise, round)."""
        mantissa = 24 if bits >= 32 else 11
        exponent = 8 if bits >= 32 else 5
        align = self.shifter(mantissa)
        core = self.adder(mantissa)
        exp_cmp = self.comparator(exponent)
        normalise = self.shifter(mantissa)
        rounding = self.adder(mantissa)
        return ComponentCost(
            area_um2=(
                align.area_um2 + core.area_um2 + exp_cmp.area_um2
                + normalise.area_um2 + rounding.area_um2
            ),
            power_mw=(
                align.power_mw + core.power_mw + exp_cmp.power_mw
                + normalise.power_mw + rounding.power_mw
            ),
            delay_ns=(
                align.delay_ns
                + core.delay_ns
                + normalise.delay_ns
                + rounding.delay_ns
                + self.fp_overhead_delay
            ),
        )

    def table(self, entries: int, bits_per_entry: int) -> ComponentCost:
        """Small register-file / latch-array look-up table."""
        total_bits = entries * bits_per_entry
        return ComponentCost(
            area_um2=self.table_area_per_bit * total_bits,
            power_mw=self.table_power_per_bit * total_bits,
            delay_ns=self.table_delay_base + self.table_delay_log * self._log2(entries),
        )

    def describe(self) -> Dict[str, float]:
        """Flat coefficient dump (useful for reports and tests)."""
        return {k: v for k, v in self.__dict__.items() if isinstance(v, float)}


def default_library() -> ComponentLibrary:
    """The calibrated 7-nm-class library used by the Table 4 reproduction."""
    return ComponentLibrary()
