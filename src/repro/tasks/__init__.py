"""Synthetic GLUE / SQuAD task substrate, metrics and evaluation loops."""

from .evaluation import (
    GlueBenchmark,
    SquadResult,
    evaluate_backends_on_glue,
    evaluate_glue_task,
    evaluate_squad,
)
from .finetune import (
    FinetunedClassifier,
    FinetunedRegressor,
    FinetunedSpanModel,
    extract_pooled_features,
    extract_token_features,
    finetune_classification_task,
    finetune_regression_task,
    finetune_span_task,
)
from .glue import GLUE_TASKS, GlueTaskSpec, TaskData, generate_task, list_glue_tasks
from .metrics import (
    METRIC_FUNCTIONS,
    accuracy,
    compute_metric,
    f1_binary,
    matthews_correlation,
    pearson_correlation,
    span_exact_match,
    span_f1,
    spearman_correlation,
)
from .squad import SquadData, SquadTaskSpec, generate_squad_task

__all__ = [
    "GLUE_TASKS",
    "GlueTaskSpec",
    "TaskData",
    "generate_task",
    "list_glue_tasks",
    "SquadTaskSpec",
    "SquadData",
    "generate_squad_task",
    "accuracy",
    "f1_binary",
    "matthews_correlation",
    "pearson_correlation",
    "spearman_correlation",
    "span_exact_match",
    "span_f1",
    "METRIC_FUNCTIONS",
    "compute_metric",
    "extract_pooled_features",
    "extract_token_features",
    "finetune_classification_task",
    "finetune_regression_task",
    "finetune_span_task",
    "FinetunedClassifier",
    "FinetunedRegressor",
    "FinetunedSpanModel",
    "GlueBenchmark",
    "evaluate_glue_task",
    "evaluate_backends_on_glue",
    "evaluate_squad",
    "SquadResult",
]
