"""Synthetic GLUE-style tasks.

The paper evaluates on eight GLUE tasks (MRPC, RTE, CoLA, SST-2, STS-B, QQP,
MNLI, QNLI).  Offline we have neither the datasets nor pre-trained
checkpoints, so each task is replaced by a synthetic stand-in with the same
*shape*: the same metric, a comparable label cardinality, and a difficulty
chosen so the frozen-encoder + linear-head baseline lands in a realistic
accuracy band (high but not saturated).  What the experiments measure — how
much a fixed model's score moves when its non-linear operators are
approximated — only requires that the tasks have real margin structure that
feature distortion can destroy, which these do.

Generation model
----------------
Each task uses a small set of *topic pools* (a handful of token ids per
topic, so that topical tokens produce a strong, consistent embedding-space
signal through the frozen encoder).  A sequence mixes tokens from its
assigned topic pool(s) with uniform background tokens; ``topic_strength``
controls the mixing fraction and therefore the class margin, and
``label_noise`` injects irreducible error.  Labels are functions of the topic
assignment:

* single-sentence classification (SST-2, CoLA): label = topic group of the
  sentence;
* pair tasks (MRPC, RTE, QQP, QNLI, MNLI): the sequence is two segments with a
  separator and the label is the topic group of the second segment (a
  relevance/entailment stand-in);
* STS-B: the second segment interpolates between two topic pools and the
  regression target is the interpolation fraction (scaled to 0-5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["GlueTaskSpec", "TaskData", "GLUE_TASKS", "generate_task", "list_glue_tasks"]


@dataclass(frozen=True)
class GlueTaskSpec:
    """Static description of one synthetic GLUE-style task."""

    name: str
    task_type: str  # "classification" or "regression"
    num_classes: int
    metric: str
    is_pair_task: bool
    topic_strength: float
    label_noise: float
    num_train: int = 512
    num_test: int = 256
    sequence_length: int = 64
    tokens_per_topic: int = 16

    def __post_init__(self) -> None:
        if self.task_type not in ("classification", "regression"):
            raise ValueError(f"task_type must be classification/regression, got {self.task_type}")
        if self.task_type == "classification" and self.num_classes < 2:
            raise ValueError("classification tasks need at least 2 classes")
        if not 0.0 < self.topic_strength <= 1.0:
            raise ValueError("topic_strength must be in (0, 1]")
        if not 0.0 <= self.label_noise < 0.5:
            raise ValueError("label_noise must be in [0, 0.5)")
        if self.tokens_per_topic < 1:
            raise ValueError("tokens_per_topic must be >= 1")


@dataclass
class TaskData:
    """Materialised train/test split of a synthetic task."""

    spec: GlueTaskSpec
    train_tokens: np.ndarray
    train_labels: np.ndarray
    test_tokens: np.ndarray
    test_labels: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name


#: The eight GLUE tasks of Table 2, with difficulty tuned so the synthetic
#: baselines land in GLUE-like bands (see EXPERIMENTS.md for measured values).
GLUE_TASKS: Dict[str, GlueTaskSpec] = {
    "MRPC": GlueTaskSpec(
        name="MRPC", task_type="classification", num_classes=2, metric="f1",
        is_pair_task=True, topic_strength=0.62, label_noise=0.06,
    ),
    "RTE": GlueTaskSpec(
        name="RTE", task_type="classification", num_classes=2, metric="accuracy",
        is_pair_task=True, topic_strength=0.50, label_noise=0.12,
    ),
    "CoLA": GlueTaskSpec(
        name="CoLA", task_type="classification", num_classes=2, metric="matthews",
        is_pair_task=False, topic_strength=0.25, label_noise=0.10,
    ),
    "SST-2": GlueTaskSpec(
        name="SST-2", task_type="classification", num_classes=2, metric="accuracy",
        is_pair_task=False, topic_strength=0.35, label_noise=0.02,
    ),
    "STS-B": GlueTaskSpec(
        name="STS-B", task_type="regression", num_classes=1, metric="pearson",
        is_pair_task=True, topic_strength=0.70, label_noise=0.05,
    ),
    "QQP": GlueTaskSpec(
        name="QQP", task_type="classification", num_classes=2, metric="f1",
        is_pair_task=True, topic_strength=0.65, label_noise=0.04,
    ),
    "MNLI": GlueTaskSpec(
        name="MNLI", task_type="classification", num_classes=3, metric="accuracy",
        is_pair_task=True, topic_strength=0.65, label_noise=0.05,
    ),
    "QNLI": GlueTaskSpec(
        name="QNLI", task_type="classification", num_classes=2, metric="accuracy",
        is_pair_task=True, topic_strength=0.65, label_noise=0.04,
    ),
}


def list_glue_tasks() -> List[str]:
    """Names of the supported synthetic GLUE tasks, in the paper's order."""
    return list(GLUE_TASKS.keys())


def _topic_pools(
    vocab_size: int, num_topics: int, tokens_per_topic: int, reserved: int = 4
) -> List[np.ndarray]:
    """Small disjoint token pools, one per topic."""
    needed = num_topics * tokens_per_topic
    if reserved + needed > vocab_size:
        raise ValueError(
            f"vocab_size={vocab_size} too small for {num_topics} topics x "
            f"{tokens_per_topic} tokens (+{reserved} reserved)"
        )
    ids = np.arange(reserved, reserved + needed)
    return [ids[i * tokens_per_topic : (i + 1) * tokens_per_topic] for i in range(num_topics)]


def _background(rng: np.random.Generator, vocab_size: int, size: int, reserved: int = 4) -> np.ndarray:
    return rng.integers(reserved, vocab_size, size=size)


def _topical_segment(
    rng: np.random.Generator,
    pool: np.ndarray,
    length: int,
    vocab_size: int,
    topic_strength: float,
) -> np.ndarray:
    """A segment mixing topical tokens (probability ``topic_strength``) and background."""
    mask = rng.random(length) < topic_strength
    return np.where(mask, rng.choice(pool, size=length), _background(rng, vocab_size, length))


def _assemble_pair(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """[CLS] first [SEP] second, trimmed to the combined length."""
    sequence = np.concatenate([np.array([1]), first, np.array([2]), second])
    return sequence


def _generate_classification(
    spec: GlueTaskSpec, vocab_size: int, num_examples: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    # One topic group per class; each group has its own pool.
    pools = _topic_pools(vocab_size, spec.num_classes, spec.tokens_per_topic)
    tokens = np.empty((num_examples, spec.sequence_length), dtype=np.int64)
    labels = rng.integers(0, spec.num_classes, size=num_examples)
    for index in range(num_examples):
        label = int(labels[index])
        if spec.is_pair_task:
            # First segment: neutral context; second segment: carries the label topic.
            first_len = (spec.sequence_length - 2) // 2
            second_len = spec.sequence_length - 2 - first_len
            first = _background(rng, vocab_size, first_len)
            second = _topical_segment(
                rng, pools[label], second_len, vocab_size, spec.topic_strength
            )
            tokens[index] = _assemble_pair(first, second)[: spec.sequence_length]
        else:
            body = _topical_segment(
                rng, pools[label], spec.sequence_length - 1, vocab_size, spec.topic_strength
            )
            tokens[index] = np.concatenate([np.array([1]), body])[: spec.sequence_length]
    # Irreducible label noise.
    flip = rng.random(num_examples) < spec.label_noise
    noise_labels = rng.integers(0, spec.num_classes, size=num_examples)
    labels = np.where(flip, noise_labels, labels)
    return tokens, labels.astype(np.int64)


def _generate_regression(
    spec: GlueTaskSpec, vocab_size: int, num_examples: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """STS-B style: target = how much the second segment leans on topic A vs B."""
    pools = _topic_pools(vocab_size, 2, spec.tokens_per_topic)
    tokens = np.empty((num_examples, spec.sequence_length), dtype=np.int64)
    targets = np.empty(num_examples, dtype=np.float64)
    for index in range(num_examples):
        similarity = float(rng.random())
        first_len = (spec.sequence_length - 2) // 2
        second_len = spec.sequence_length - 2 - first_len
        first = _topical_segment(rng, pools[0], first_len, vocab_size, spec.topic_strength)
        # Second segment: topical tokens drawn from pool A with probability
        # `similarity`, pool B otherwise.
        topical_mask = rng.random(second_len) < spec.topic_strength
        from_a = rng.random(second_len) < similarity
        topical = np.where(
            from_a, rng.choice(pools[0], size=second_len), rng.choice(pools[1], size=second_len)
        )
        second = np.where(topical_mask, topical, _background(rng, vocab_size, second_len))
        tokens[index] = _assemble_pair(first, second)[: spec.sequence_length]
        targets[index] = 5.0 * similarity + rng.normal(0.0, spec.label_noise * 5.0)
    return tokens, np.clip(targets, 0.0, 5.0)


def generate_task(
    task_name: str,
    vocab_size: int = 2000,
    seed: int = 0,
    spec_overrides: Dict[str, object] | None = None,
) -> TaskData:
    """Materialise the train/test split for one synthetic GLUE task.

    ``vocab_size`` must match the encoder configuration the task will be
    evaluated with.  ``spec_overrides`` allows tests to shrink example counts
    or sequence lengths.
    """
    if task_name not in GLUE_TASKS:
        known = ", ".join(GLUE_TASKS)
        raise KeyError(f"Unknown GLUE task {task_name!r}; known: {known}")
    spec = GLUE_TASKS[task_name]
    if spec_overrides:
        spec = GlueTaskSpec(**{**spec.__dict__, **spec_overrides})
    # Stable per-task seed offset (the built-in hash() is salted per process).
    task_offset = int(np.sum([ord(ch) * (index + 1) for index, ch in enumerate(task_name)]))
    rng = np.random.default_rng(seed + task_offset)
    total = spec.num_train + spec.num_test
    if spec.task_type == "classification":
        tokens, labels = _generate_classification(spec, vocab_size, total, rng)
    else:
        tokens, labels = _generate_regression(spec, vocab_size, total, rng)
    return TaskData(
        spec=spec,
        train_tokens=tokens[: spec.num_train],
        train_labels=labels[: spec.num_train],
        test_tokens=tokens[spec.num_train :],
        test_labels=labels[spec.num_train :],
        metadata={"vocab_size": vocab_size, "seed": seed},
    )
