"""Synthetic SQuAD-style span-extraction task.

Table 3 of the paper evaluates MobileBERT on SQuAD v1.1 (question answering
by span extraction) with Softmax approximated.  The synthetic stand-in keeps
the structural property that matters: the model must locate a contiguous
answer span inside a context, and the location is encoded in token content
that attention has to pick up, so distorting the attention Softmax degrades
the span predictions.

Each example is a "question" prefix (tokens naming a random topic) followed by
a context of background tokens into which a contiguous run of *answer-pool*
tokens — the answer span — is planted at a random position.  The answer pool
is a small, fixed vocabulary shared by all examples, so a per-token linear
scorer on the encoder features can learn to recognise span membership (the
stand-in for a fine-tuned QA head), while the attention layers still have to
propagate context for the features to be clean — which is how Softmax
approximation error shows up in the span scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = ["SquadTaskSpec", "SquadData", "generate_squad_task"]


@dataclass(frozen=True)
class SquadTaskSpec:
    """Static description of the synthetic span-extraction task."""

    sequence_length: int = 64
    question_length: int = 8
    min_span_length: int = 3
    max_span_length: int = 8
    num_topics: int = 8
    topic_strength: float = 0.85
    num_train: int = 384
    num_test: int = 192

    def __post_init__(self) -> None:
        if self.question_length + self.max_span_length >= self.sequence_length:
            raise ValueError("sequence_length too short for question + span")
        if not 1 <= self.min_span_length <= self.max_span_length:
            raise ValueError("span length bounds are inconsistent")


@dataclass
class SquadData:
    """Materialised train/test split of the synthetic span task."""

    spec: SquadTaskSpec
    train_tokens: np.ndarray
    train_spans: Tuple[np.ndarray, np.ndarray]
    test_tokens: np.ndarray
    test_spans: Tuple[np.ndarray, np.ndarray]
    metadata: Dict[str, object] = field(default_factory=dict)


def _generate_split(
    spec: SquadTaskSpec, vocab_size: int, num_examples: int, rng: np.random.Generator
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    # A small fixed answer vocabulary (16 tokens) shared by every example,
    # plus small topic pools used only for the question prefix.
    tokens_per_pool = 16
    reserved = 4
    answer_pool = np.arange(reserved, reserved + tokens_per_pool)
    topic_pools = [
        np.arange(
            reserved + (i + 1) * tokens_per_pool, reserved + (i + 2) * tokens_per_pool
        )
        for i in range(spec.num_topics)
    ]
    background_low = reserved + (spec.num_topics + 1) * tokens_per_pool
    if background_low >= vocab_size:
        raise ValueError(
            f"vocab_size={vocab_size} too small for {spec.num_topics} topics "
            f"of {tokens_per_pool} tokens plus the answer pool"
        )
    tokens = np.empty((num_examples, spec.sequence_length), dtype=np.int64)
    starts = np.empty(num_examples, dtype=np.int64)
    ends = np.empty(num_examples, dtype=np.int64)
    context_start = spec.question_length
    for index in range(num_examples):
        topic = int(rng.integers(0, spec.num_topics))
        sequence = rng.integers(background_low, vocab_size, size=spec.sequence_length)
        # Question segment: [CLS], then tokens naming the topic, then [SEP].
        sequence[0] = 1
        question_tokens = rng.choice(topic_pools[topic], size=spec.question_length - 2)
        sequence[1 : spec.question_length - 1] = question_tokens
        sequence[spec.question_length - 1] = 2
        # Context: plant a contiguous answer span of answer-pool tokens.
        span_length = int(rng.integers(spec.min_span_length, spec.max_span_length + 1))
        latest_start = spec.sequence_length - span_length
        start = int(rng.integers(context_start, latest_start))
        end = start + span_length - 1
        span_mask = rng.random(span_length) < spec.topic_strength
        span_tokens = np.where(
            span_mask,
            rng.choice(answer_pool, size=span_length),
            rng.integers(background_low, vocab_size, size=span_length),
        )
        sequence[start : end + 1] = span_tokens
        tokens[index] = sequence
        starts[index] = start
        ends[index] = end
    return tokens, (starts, ends)


def generate_squad_task(
    vocab_size: int = 2000,
    seed: int = 0,
    spec: SquadTaskSpec | None = None,
) -> SquadData:
    """Materialise the synthetic SQuAD-style dataset."""
    spec = spec or SquadTaskSpec()
    rng = np.random.default_rng(seed + 7919)
    train_tokens, train_spans = _generate_split(spec, vocab_size, spec.num_train, rng)
    test_tokens, test_spans = _generate_split(spec, vocab_size, spec.num_test, rng)
    return SquadData(
        spec=spec,
        train_tokens=train_tokens,
        train_spans=train_spans,
        test_tokens=test_tokens,
        test_spans=test_spans,
        metadata={"vocab_size": vocab_size, "seed": seed},
    )
