"""Evaluation metrics matching those reported in the paper's tables.

GLUE conventions: accuracy for RTE/SST-2/QNLI/MNLI/QQP, F1 for MRPC (and QQP
in some reports), Matthews correlation for CoLA, Pearson/Spearman correlation
for STS-B; SQuAD v1.1 reports exact match and token-overlap F1.  All metrics
are returned on a 0-100 scale, as in the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats as _stats

__all__ = [
    "accuracy",
    "f1_binary",
    "matthews_correlation",
    "pearson_correlation",
    "spearman_correlation",
    "span_exact_match",
    "span_f1",
    "METRIC_FUNCTIONS",
    "compute_metric",
]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Percentage of exact label matches."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(predictions == labels) * 100.0)


def f1_binary(predictions: np.ndarray, labels: np.ndarray, positive_class: int = 1) -> float:
    """Binary F1 score (percentage) treating ``positive_class`` as positive."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    true_positive = float(np.sum((predictions == positive_class) & (labels == positive_class)))
    false_positive = float(np.sum((predictions == positive_class) & (labels != positive_class)))
    false_negative = float(np.sum((predictions != positive_class) & (labels == positive_class)))
    denominator = 2 * true_positive + false_positive + false_negative
    if denominator == 0:
        return 0.0
    return float(100.0 * 2 * true_positive / denominator)


def matthews_correlation(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Matthews correlation coefficient x100 (CoLA's metric)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    tp = float(np.sum((predictions == 1) & (labels == 1)))
    tn = float(np.sum((predictions == 0) & (labels == 0)))
    fp = float(np.sum((predictions == 1) & (labels == 0)))
    fn = float(np.sum((predictions == 0) & (labels == 1)))
    denominator = np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
    if denominator == 0:
        return 0.0
    return float(100.0 * (tp * tn - fp * fn) / denominator)


def pearson_correlation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Pearson correlation x100 (STS-B's primary metric)."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if np.std(predictions) == 0 or np.std(targets) == 0:
        return 0.0
    return float(100.0 * np.corrcoef(predictions, targets)[0, 1])


def spearman_correlation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Spearman rank correlation x100."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if np.std(predictions) == 0 or np.std(targets) == 0:
        return 0.0
    rho, _ = _stats.spearmanr(predictions, targets)
    if np.isnan(rho):
        return 0.0
    return float(100.0 * rho)


def span_exact_match(
    predicted: Tuple[np.ndarray, np.ndarray], reference: Tuple[np.ndarray, np.ndarray]
) -> float:
    """Percentage of spans where both start and end match exactly."""
    pred_start, pred_end = (np.asarray(a) for a in predicted)
    ref_start, ref_end = (np.asarray(a) for a in reference)
    return float(np.mean((pred_start == ref_start) & (pred_end == ref_end)) * 100.0)


def span_f1(
    predicted: Tuple[np.ndarray, np.ndarray], reference: Tuple[np.ndarray, np.ndarray]
) -> float:
    """Mean token-overlap F1 between predicted and reference spans (SQuAD F1)."""
    pred_start, pred_end = (np.asarray(a) for a in predicted)
    ref_start, ref_end = (np.asarray(a) for a in reference)
    scores = []
    for ps, pe, rs, re in zip(pred_start, pred_end, ref_start, ref_end):
        pred_tokens = set(range(int(ps), int(pe) + 1))
        ref_tokens = set(range(int(rs), int(re) + 1))
        overlap = len(pred_tokens & ref_tokens)
        if overlap == 0:
            scores.append(0.0)
            continue
        precision = overlap / len(pred_tokens)
        recall = overlap / len(ref_tokens)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores) * 100.0)


#: Scalar-prediction metrics addressable by name (span metrics have a
#: different signature and are called explicitly by the SQuAD evaluation).
METRIC_FUNCTIONS = {
    "accuracy": accuracy,
    "f1": f1_binary,
    "matthews": matthews_correlation,
    "pearson": pearson_correlation,
    "spearman": spearman_correlation,
}


def compute_metric(name: str, predictions: np.ndarray, labels: np.ndarray) -> float:
    """Dispatch a named scalar metric."""
    try:
        metric = METRIC_FUNCTIONS[name]
    except KeyError as exc:
        known = ", ".join(sorted(METRIC_FUNCTIONS))
        raise KeyError(f"Unknown metric {name!r}; known: {known}") from exc
    return metric(predictions, labels)
