"""End-to-end task evaluation with swappable non-linear backends.

These helpers implement the measurement loop behind Tables 2 and 3: fit the
task heads once on exact-backend features, then score the *same* model + head
under each approximate backend.

Every entry point accepts either a built
:class:`~repro.transformer.nonlinear_backend.NonlinearBackend` or a
declarative :class:`repro.api.BackendSpec` (realised on the fly via
:func:`repro.api.as_backend`); ``None`` means the exact reference backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

import numpy as np

from ..api.spec import BackendSpec, as_backend
from ..core.registry import LutRegistry
from ..transformer.models import EncoderModel
from ..transformer.nonlinear_backend import NonlinearBackend
from .finetune import (
    finetune_classification_task,
    finetune_regression_task,
    finetune_span_task,
)
from .glue import TaskData, generate_task, list_glue_tasks
from .metrics import compute_metric, span_exact_match, span_f1
from .squad import SquadData, generate_squad_task

__all__ = [
    "GlueBenchmark",
    "evaluate_glue_task",
    "evaluate_backends_on_glue",
    "evaluate_squad",
    "SquadResult",
]

@dataclass
class GlueBenchmark:
    """A frozen encoder with heads fitted for a set of synthetic GLUE tasks."""

    model: EncoderModel
    tasks: Dict[str, TaskData] = field(default_factory=dict)
    fitted: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        model: EncoderModel,
        task_names: Sequence[str] | None = None,
        seed: int = 0,
        spec_overrides: Mapping[str, object] | None = None,
    ) -> "GlueBenchmark":
        """Generate tasks matched to ``model``'s vocabulary and fit all heads."""
        task_names = list(task_names) if task_names is not None else list_glue_tasks()
        benchmark = cls(model=model)
        for name in task_names:
            task = generate_task(
                name,
                vocab_size=model.config.vocab_size,
                seed=seed,
                spec_overrides=dict(spec_overrides) if spec_overrides else None,
            )
            benchmark.tasks[name] = task
            if task.spec.task_type == "classification":
                benchmark.fitted[name] = finetune_classification_task(model, task, seed=seed)
            else:
                benchmark.fitted[name] = finetune_regression_task(model, task)
        return benchmark

    def score(
        self,
        task_name: str,
        backend: NonlinearBackend | BackendSpec | None = None,
        registry: LutRegistry | None = None,
    ) -> float:
        """Score one task under ``backend`` using the task's own metric."""
        if task_name not in self.fitted:
            raise KeyError(f"task {task_name!r} has not been fitted")
        task = self.tasks[task_name]
        fitted = self.fitted[task_name]
        predictions = fitted.predict(as_backend(backend, registry=registry))
        return compute_metric(task.spec.metric, predictions, task.test_labels)

    def score_all(
        self,
        backend: NonlinearBackend | BackendSpec | None = None,
        registry: LutRegistry | None = None,
    ) -> Dict[str, float]:
        """Scores for every fitted task under ``backend``."""
        built = as_backend(backend, registry=registry)
        return {name: self.score(name, built) for name in self.tasks}


def evaluate_glue_task(
    model: EncoderModel,
    task_name: str,
    backends: Mapping[str, NonlinearBackend | BackendSpec],
    seed: int = 0,
    registry: LutRegistry | None = None,
) -> Dict[str, float]:
    """Convenience: one task, several backends → {backend name: score}."""
    benchmark = GlueBenchmark.build(model, task_names=[task_name], seed=seed)
    return {
        name: benchmark.score(task_name, backend, registry=registry)
        for name, backend in backends.items()
    }


def evaluate_backends_on_glue(
    model: EncoderModel,
    backends: Mapping[str, NonlinearBackend | BackendSpec],
    task_names: Sequence[str] | None = None,
    seed: int = 0,
    spec_overrides: Mapping[str, object] | None = None,
    registry: LutRegistry | None = None,
) -> Dict[str, Dict[str, float]]:
    """Full Table-2 style sweep: {backend name: {task name: score}}.

    The baseline (exact) backend is always included under the key
    ``"Baseline"`` so downstream reports can compute deltas.
    """
    benchmark = GlueBenchmark.build(
        model, task_names=task_names, seed=seed, spec_overrides=spec_overrides
    )
    results: Dict[str, Dict[str, float]] = {"Baseline": benchmark.score_all()}
    for name, backend in backends.items():
        results[name] = benchmark.score_all(backend, registry=registry)
    return results


@dataclass
class SquadResult:
    """F1 / exact-match scores of a span model under one backend."""

    f1: float
    exact_match: float


def evaluate_squad(
    model: EncoderModel,
    backends: Mapping[str, NonlinearBackend | BackendSpec],
    seed: int = 0,
    data: SquadData | None = None,
    registry: LutRegistry | None = None,
) -> Dict[str, SquadResult]:
    """Table-3 style sweep on the synthetic SQuAD task.

    Returns scores for the exact baseline (key ``"Baseline"``) and every
    provided backend.
    """
    data = data or generate_squad_task(vocab_size=model.config.vocab_size, seed=seed)
    fitted = finetune_span_task(model, data)
    results: Dict[str, SquadResult] = {}
    reference = data.test_spans

    def score(backend: NonlinearBackend | BackendSpec | None) -> SquadResult:
        prediction = fitted.predict(as_backend(backend, registry=registry))
        return SquadResult(
            f1=span_f1(prediction, reference),
            exact_match=span_exact_match(prediction, reference),
        )

    results["Baseline"] = score(None)
    for name, backend in backends.items():
        results[name] = score(backend)
    return results
