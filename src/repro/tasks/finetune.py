"""Head fitting ("fine-tuning") on frozen encoder features.

The paper's software protocol: take a model already fine-tuned on the task,
replace its non-linear operators by approximations, and measure the score
change without re-training anything ("direct approximation").  Our stand-in
for the fine-tuned model is a frozen encoder plus a task head fitted on
exact-backend features — :func:`finetune_classification_task` and friends
produce exactly that, and return the fitted head together with cached feature
extraction helpers so evaluation with other backends reuses the same head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..api.spec import as_backend
from ..transformer.heads import ClassificationHead, RegressionHead, SpanHead
from ..transformer.models import EncoderModel
from ..transformer.nonlinear_backend import NonlinearBackend
from .glue import TaskData
from .squad import SquadData

__all__ = [
    "FinetunedClassifier",
    "FinetunedRegressor",
    "FinetunedSpanModel",
    "extract_pooled_features",
    "extract_token_features",
    "finetune_classification_task",
    "finetune_regression_task",
    "finetune_span_task",
]


def extract_pooled_features(
    model: EncoderModel,
    tokens: np.ndarray,
    backend: NonlinearBackend | None = None,
    batch_size: int = 64,
) -> np.ndarray:
    """Pooled ([CLS]) features for a batch of token sequences."""
    backend = as_backend(backend)
    chunks = []
    for start in range(0, tokens.shape[0], batch_size):
        chunk = tokens[start : start + batch_size]
        chunks.append(model.pooled(chunk, backend=backend))
    return np.concatenate(chunks, axis=0)


def extract_token_features(
    model: EncoderModel,
    tokens: np.ndarray,
    backend: NonlinearBackend | None = None,
    batch_size: int = 64,
) -> np.ndarray:
    """Per-token hidden states for a batch of token sequences."""
    backend = as_backend(backend)
    chunks = []
    for start in range(0, tokens.shape[0], batch_size):
        chunk = tokens[start : start + batch_size]
        chunks.append(model.forward(chunk, backend=backend))
    return np.concatenate(chunks, axis=0)


@dataclass
class FinetunedClassifier:
    """A frozen encoder + classification head fitted on exact features."""

    model: EncoderModel
    head: ClassificationHead
    task: TaskData

    def evaluate_features(self, backend: NonlinearBackend | None = None) -> np.ndarray:
        """Test-set pooled features under ``backend`` (exact by default)."""
        return extract_pooled_features(self.model, self.task.test_tokens, backend)

    def predict(self, backend: NonlinearBackend | None = None) -> np.ndarray:
        return self.head.predict(self.evaluate_features(backend))


@dataclass
class FinetunedRegressor:
    """A frozen encoder + regression head fitted on exact features."""

    model: EncoderModel
    head: RegressionHead
    task: TaskData

    def evaluate_features(self, backend: NonlinearBackend | None = None) -> np.ndarray:
        return extract_pooled_features(self.model, self.task.test_tokens, backend)

    def predict(self, backend: NonlinearBackend | None = None) -> np.ndarray:
        return self.head.predict(self.evaluate_features(backend))


@dataclass
class FinetunedSpanModel:
    """A frozen encoder + span head fitted on exact features."""

    model: EncoderModel
    head: SpanHead
    task: SquadData

    def predict(
        self, backend: NonlinearBackend | None = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        features = extract_token_features(self.model, self.task.test_tokens, backend)
        return self.head.predict(features)


def finetune_classification_task(
    model: EncoderModel, task: TaskData, seed: int = 0
) -> FinetunedClassifier:
    """Fit a classification head on the task's training split (exact backend)."""
    if task.spec.task_type != "classification":
        raise ValueError(f"task {task.name} is not a classification task")
    features = extract_pooled_features(model, task.train_tokens)
    head = ClassificationHead.fit(
        features, task.train_labels, num_classes=task.spec.num_classes, seed=seed
    )
    return FinetunedClassifier(model=model, head=head, task=task)


def finetune_regression_task(model: EncoderModel, task: TaskData) -> FinetunedRegressor:
    """Fit a regression head on the task's training split (exact backend)."""
    if task.spec.task_type != "regression":
        raise ValueError(f"task {task.name} is not a regression task")
    features = extract_pooled_features(model, task.train_tokens)
    head = RegressionHead.fit(features, task.train_labels)
    return FinetunedRegressor(model=model, head=head, task=task)


def finetune_span_task(model: EncoderModel, task: SquadData) -> FinetunedSpanModel:
    """Fit a span head on the task's training split (exact backend)."""
    features = extract_token_features(model, task.train_tokens)
    starts, ends = task.train_spans
    head = SpanHead.fit(features, starts, ends)
    return FinetunedSpanModel(model=model, head=head, task=task)
