"""Reduced-precision numeric helpers (symmetric fixed point, FP16)."""

from .fixed_point import (
    QuantizedTensor,
    compute_scale,
    dequantize,
    fake_quantize,
    quantize,
    quantized_matmul,
)
from .fp16 import fp16_matmul, fp16_roundtrip, to_fp16

__all__ = [
    "QuantizedTensor",
    "compute_scale",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantized_matmul",
    "to_fp16",
    "fp16_roundtrip",
    "fp16_matmul",
]
