"""IEEE half-precision helpers for the FP16 evaluation settings.

Table 3 of the paper evaluates MobileBERT/SQuAD with the MatMuls computed in
FP16 and the Softmax approximation's parameters/datapath in FP16.  These
helpers centralise the casting so the Transformer substrate and the LUT
quantisation use the same conventions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_fp16", "fp16_roundtrip", "fp16_matmul"]


def to_fp16(values: np.ndarray) -> np.ndarray:
    """Cast to IEEE binary16."""
    return np.asarray(values, dtype=np.float16)


def fp16_roundtrip(values: np.ndarray) -> np.ndarray:
    """Cast to FP16 and back to FP64 (simulated half-precision storage)."""
    return np.asarray(values, dtype=np.float16).astype(np.float64)


def fp16_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix multiply with FP16 operands and FP32-style accumulation.

    numpy accumulates float16 matmuls in float32 internally when asked to
    output float32; we cast operands to float16 first (storage precision) and
    request a float32 result (accumulator precision), then return float64 for
    downstream consistency.
    """
    a16 = np.asarray(a, dtype=np.float16)
    b16 = np.asarray(b, dtype=np.float16)
    return np.matmul(a16.astype(np.float32), b16.astype(np.float32)).astype(np.float64)
