"""Symmetric fixed-point quantisation helpers.

Used by two parts of the reproduction:

* the INT8 matrix-multiplication model of Table 2(b) (I-BERT's baseline
  setting: INT8 MatMul, non-linear operations kept in FP32 or approximated),
* the INT32 NN-LUT variant, whose table parameters are quantised with the
  same scaling-factor style (`repro.core.quantization`).

All quantisation here is symmetric per-tensor, matching I-BERT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "QuantizedTensor",
    "compute_scale",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantized_matmul",
]


def compute_scale(values: np.ndarray, num_bits: int = 8) -> float:
    """Symmetric per-tensor scale: ``max|v| / (2^(b-1) - 1)``; 1.0 for zeros."""
    if num_bits < 2:
        raise ValueError("num_bits must be >= 2")
    values = np.asarray(values)
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    if max_abs == 0.0:
        return 1.0
    return max_abs / float(2 ** (num_bits - 1) - 1)


@dataclass
class QuantizedTensor:
    """An integer tensor together with its dequantisation scale."""

    data: np.ndarray
    scale: float
    num_bits: int = 8

    def dequantize(self) -> np.ndarray:
        return self.data.astype(np.float64) * self.scale

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)


def quantize(values: np.ndarray, num_bits: int = 8, scale: float | None = None) -> QuantizedTensor:
    """Quantise a float tensor to signed integers with a symmetric scale."""
    values = np.asarray(values, dtype=np.float64)
    scale = compute_scale(values, num_bits) if scale is None else float(scale)
    limit = 2 ** (num_bits - 1) - 1
    data = np.clip(np.round(values / scale), -limit, limit).astype(np.int64)
    return QuantizedTensor(data=data, scale=scale, num_bits=num_bits)


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Map a quantised tensor back to floats."""
    return tensor.dequantize()


def fake_quantize(values: np.ndarray, num_bits: int = 8, scale: float | None = None) -> np.ndarray:
    """Quantise-then-dequantise (simulated quantisation in a float graph)."""
    return quantize(values, num_bits=num_bits, scale=scale).dequantize()


def quantized_matmul(
    activations: np.ndarray,
    weights: np.ndarray,
    activation_bits: int = 8,
    weight_bits: int = 8,
) -> np.ndarray:
    """INT8xINT8 -> INT32 matmul with float dequantisation of the result.

    Mirrors the I-BERT inference path: both operands are symmetrically
    quantised per tensor, the product is accumulated in integers and the
    output carries the product of the two scales.
    """
    act_q = quantize(activations, num_bits=activation_bits)
    w_q = quantize(weights, num_bits=weight_bits)
    accumulator = act_q.data @ w_q.data
    return accumulator.astype(np.float64) * (act_q.scale * w_q.scale)
