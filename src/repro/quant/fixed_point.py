"""Symmetric fixed-point quantisation helpers.

Used by two parts of the reproduction:

* the INT8 matrix-multiplication model of Table 2(b) (I-BERT's baseline
  setting: INT8 MatMul, non-linear operations kept in FP32 or approximated),
* the INT32 NN-LUT variant, whose table parameters are quantised with the
  same scaling-factor style (`repro.core.quantization`).

All quantisation here is symmetric per-tensor, matching I-BERT.

Note on integer matmuls: an INT8xINT8 product accumulated over any realistic
contraction length stays far below 2**53, so carrying the quantised operands
as float64 and using the BLAS matmul computes the *exact* same integers as
int64 arithmetic while running orders of magnitude faster.  The cached
inference path in ``repro.transformer.layers`` relies on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "QuantizedTensor",
    "compute_scale",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantized_matmul",
]


def compute_scale(values: np.ndarray, num_bits: int = 8) -> float:
    """Symmetric per-tensor scale: ``max|v| / (2^(b-1) - 1)``; 1.0 for zeros.

    Raises ``ValueError`` for non-finite inputs: a NaN or infinity would
    otherwise silently poison the scale and produce garbage integer tensors.
    The check rides on the ``max|v|`` reduction, so it costs no extra pass.
    """
    if num_bits < 2:
        raise ValueError("num_bits must be >= 2")
    values = np.asarray(values)
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    if not np.isfinite(max_abs):
        raise ValueError(
            "cannot quantize non-finite values (input contains NaN or infinity)"
        )
    if max_abs == 0.0:
        return 1.0
    return max_abs / float(2 ** (num_bits - 1) - 1)


@dataclass
class QuantizedTensor:
    """An integer tensor together with its dequantisation scale."""

    data: np.ndarray
    scale: float
    num_bits: int = 8

    def dequantize(self) -> np.ndarray:
        return self.data.astype(np.float64) * self.scale

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)


def quantize(values: np.ndarray, num_bits: int = 8, scale: float | None = None) -> QuantizedTensor:
    """Quantise a float tensor to signed integers with a symmetric scale.

    When ``scale`` is omitted it is derived with :func:`compute_scale`, whose
    ``max|v|`` reduction doubles as the non-finite check.  When the caller
    already knows the scale, no reduction over ``values`` is performed at
    all — the rounded intermediate (which NaN/inf propagate into) is checked
    instead, so garbage can still never reach the integer tensor.
    """
    values = np.asarray(values)
    if values.dtype not in (np.float32, np.float64):
        values = values.astype(np.float64)
    limit = 2 ** (num_bits - 1) - 1
    if scale is None:
        scale = compute_scale(values, num_bits)
        rounded = np.round(values / scale)
    else:
        scale = float(scale)
        if not (np.isfinite(scale) and scale > 0.0):
            raise ValueError(f"scale must be finite and positive, got {scale}")
        rounded = np.round(values / scale)
        # NaN propagates into both reductions, -inf into min, +inf into max;
        # allocation-free compared to an isfinite mask over the whole tensor.
        if rounded.size and not (
            np.isfinite(np.min(rounded)) and np.isfinite(np.max(rounded))
        ):
            raise ValueError(
                "cannot quantize non-finite values (input contains NaN or infinity)"
            )
    np.clip(rounded, -limit, limit, out=rounded)
    return QuantizedTensor(data=rounded.astype(np.int64), scale=scale, num_bits=num_bits)


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Map a quantised tensor back to floats."""
    return tensor.dequantize()


def fake_quantize(values: np.ndarray, num_bits: int = 8, scale: float | None = None) -> np.ndarray:
    """Quantise-then-dequantise (simulated quantisation in a float graph)."""
    return quantize(values, num_bits=num_bits, scale=scale).dequantize()


def quantized_matmul(
    activations: np.ndarray,
    weights: np.ndarray | None = None,
    activation_bits: int = 8,
    weight_bits: int = 8,
    weights_q: QuantizedTensor | None = None,
) -> np.ndarray:
    """INT8xINT8 -> INT32 matmul with float dequantisation of the result.

    Mirrors the I-BERT inference path: both operands are symmetrically
    quantised per tensor, the product is accumulated in integers and the
    output carries the product of the two scales.

    ``weights_q`` supplies an already-quantised weight tensor (the static
    weight discipline: weights are quantised once, offline) and skips the
    per-call weight quantisation entirely.
    """
    act_q = quantize(activations, num_bits=activation_bits)
    if weights_q is None:
        if weights is None:
            raise ValueError("either weights or weights_q must be provided")
        weights_q = quantize(weights, num_bits=weight_bits)
    accumulator = act_q.data @ weights_q.data
    return accumulator.astype(np.float64) * (act_q.scale * weights_q.scale)
