"""Plain-text table formatting for experiment reports.

The experiment drivers print their results in the same layout as the paper's
tables so the reproduction can be eyeballed against the original numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_mapping_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_mapping_table(
    results: Mapping[str, Mapping[str, float]],
    row_label: str = "method",
    float_format: str = "{:.1f}",
) -> str:
    """Render ``{row: {column: value}}`` as a text table with a stable column order."""
    columns: List[str] = []
    for row_values in results.values():
        for column in row_values:
            if column not in columns:
                columns.append(column)
    headers = [row_label] + columns
    rows = []
    for row_name, row_values in results.items():
        rows.append([row_name] + [row_values.get(column, float("nan")) for column in columns])
    return format_table(headers, rows, float_format=float_format)
