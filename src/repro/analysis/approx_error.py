"""Operator-level approximation-error analysis (paper Figure 2).

Figure 2 compares NN-LUT against Linear-LUT on the three Transformer
operators: the top row shows the approximated outputs on representative
inputs, the bottom row the L1 error.  This module computes those curves and
summary statistics; the plotting itself is left to the caller (the benchmark
prints the summary numbers, the example script dumps CSV-like series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from ..core import functions
from ..core.approximators import LutLayerNorm, LutSoftmax
from ..core.scaling import InputScaler

__all__ = ["OperatorErrorCurve", "operator_error_curve", "operator_error_summary"]


@dataclass
class OperatorErrorCurve:
    """Input grid, reference values, approximation and pointwise L1 error."""

    operator: str
    method: str
    inputs: np.ndarray
    reference: np.ndarray
    approximation: np.ndarray
    error: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.error = np.abs(self.approximation - self.reference)

    @property
    def mean_l1(self) -> float:
        return float(np.mean(self.error))

    @property
    def max_l1(self) -> float:
        return float(np.max(self.error))


def _gelu_curve(approximators: Dict[str, Callable], num_points: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    grid = np.linspace(-5.0, 5.0, num_points)
    reference = functions.gelu(grid)
    approximation = np.asarray(approximators["gelu"](grid))
    return grid, reference, approximation


def _softmax_curve(
    approximators: Dict[str, Callable], num_points: int, seed: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    # Representative attention score rows spanning short and long rows and
    # several logit scales, so both the exp and the 1/x tables are exercised
    # across their dynamic range (sums between ~1 and ~row length).
    rng = np.random.default_rng(seed)
    row_length = max(8, num_points // 8)
    rows = []
    for scale in (0.5, 1.0, 2.0, 4.0, 8.0):
        rows.append(rng.normal(0.0, scale, size=(2, row_length)))
    logits = np.concatenate(rows, axis=0)
    reference = functions.softmax(logits, axis=-1)
    softmax_op = LutSoftmax(approximators["exp"], approximators["reciprocal"])
    approximation = softmax_op(logits)
    return logits.ravel(), reference.ravel(), approximation.ravel()


def _layernorm_curve(
    approximators: Dict[str, Callable], num_points: int, seed: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    # Activation rows whose standard deviation sweeps three orders of
    # magnitude (the small-variance end is where the 1/sqrt dynamic range —
    # and the paper's input-scaling fix — matters most).
    rng = np.random.default_rng(seed)
    row_length = max(16, num_points // 16)
    scales = np.logspace(-2, 1.3, 16)
    rows = np.stack([rng.normal(0.2, scale, size=row_length) for scale in scales])
    reference = functions.layer_norm(rows, axis=-1)
    layernorm_op = LutLayerNorm(approximators["rsqrt"], scaler=InputScaler())
    approximation = layernorm_op(rows)
    return rows.ravel(), reference.ravel(), approximation.ravel()


def operator_error_curve(
    operator: str,
    approximators: Dict[str, Callable],
    method: str = "",
    num_points: int = 512,
    seed: int = 0,
) -> OperatorErrorCurve:
    """Error curve for ``operator`` in {"gelu", "softmax", "layernorm"}.

    ``approximators`` maps primitive names to scalar approximators, exactly as
    accepted by :func:`repro.transformer.backend_from_luts`.
    """
    if operator == "gelu":
        grid, reference, approximation = _gelu_curve(approximators, num_points)
    elif operator == "softmax":
        grid, reference, approximation = _softmax_curve(approximators, num_points, seed)
    elif operator == "layernorm":
        grid, reference, approximation = _layernorm_curve(approximators, num_points, seed)
    else:
        raise ValueError(f"operator must be gelu/softmax/layernorm, got {operator!r}")
    return OperatorErrorCurve(
        operator=operator,
        method=method,
        inputs=grid,
        reference=reference,
        approximation=approximation,
    )


def operator_error_summary(
    methods: Dict[str, Dict[str, Callable]],
    num_points: int = 512,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Mean L1 error per operator per method.

    ``methods`` maps a display name ("NN-LUT", "Linear-LUT", ...) to its
    primitive-approximator dict.  Returns ``{method: {operator: mean L1}}``.
    """
    summary: Dict[str, Dict[str, float]] = {}
    for method_name, approximators in methods.items():
        summary[method_name] = {}
        for operator in ("gelu", "softmax", "layernorm"):
            curve = operator_error_curve(
                operator, approximators, method=method_name, num_points=num_points, seed=seed
            )
            summary[method_name][operator] = curve.mean_l1
    return summary
