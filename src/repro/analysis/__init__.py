"""Operator-level error analysis (Figure 2) and report formatting helpers."""

from .approx_error import OperatorErrorCurve, operator_error_curve, operator_error_summary
from .reporting import format_mapping_table, format_table

__all__ = [
    "OperatorErrorCurve",
    "operator_error_curve",
    "operator_error_summary",
    "format_table",
    "format_mapping_table",
]
