"""NN-LUT reproduction: neural approximation of Transformer non-linearities.

Reproduction of Yu et al., "NN-LUT: Neural Approximation of Non-Linear
Operations for Efficient Transformer Inference" (DAC 2022).

Serving API (start here)
------------------------
``repro.api`` is the one entry point every model x backend x precision
scenario goes through:

* :class:`~repro.api.BackendSpec` — a serializable, declarative description
  of how each Transformer operator (GELU / Softmax / LayerNorm) is
  approximated: method (exact, NN-LUT, Linear-LUT, I-BERT) x precision
  (fp32 / fp16 / int32) x table entries x calibration flag.
  :func:`~repro.api.build_backend` realises a spec into a runnable backend.
* :class:`~repro.api.SessionConfig` + :class:`~repro.api.InferenceSession`
  — model family / size / seed / quantised-linear engine, prepared once
  (weights cached, backend built) into a session that serves ragged request
  lists with dynamic micro-batching (``forward`` / ``pooled`` /
  ``classify``) and offers the paper's dataset-free calibration as a single
  :meth:`~repro.api.InferenceSession.calibrate` call.

The legacy ``*_backend()`` constructors in ``repro.transformer`` remain as
deprecated shims over ``build_backend``.

Sub-packages
------------
``repro.api``
    Declarative backend specs, the spec -> backend factory and the batched
    inference sessions described above.
``repro.core``
    The NN-LUT framework itself: ReLU-network fitting, the exact NN->LUT
    transform, precision variants, input scaling and calibration.
``repro.baselines``
    Linear-mode / Exponential-mode LUT baselines and the I-BERT integer
    approximation algorithms the paper compares against.
``repro.quant``
    Fixed-point / FP16 numeric helpers shared by the quantised variants.
``repro.transformer``
    Pure-numpy Transformer encoder substrate (RoBERTa-like, MobileBERT-like)
    with pluggable non-linear backends.
``repro.tasks``
    Synthetic GLUE / SQuAD style task generators, metrics and head training
    used for the software accuracy experiments.
``repro.hardware``
    7-nm-calibrated arithmetic-unit cost models and the accelerator cycle
    simulator used for the hardware experiments.
``repro.experiments``
    One driver per table / figure of the paper, also runnable as
    ``python -m repro.experiments <name>``.
"""

from . import api, core
from .api import (
    BackendSpec,
    InferenceSession,
    OperatorSpec,
    SessionConfig,
    as_backend,
    build_backend,
)
from .core import (
    LookupTable,
    LutGelu,
    LutLayerNorm,
    LutSoftmax,
    OneHiddenReluNet,
    TrainingConfig,
    default_registry,
    fit_lut,
    fit_network,
    network_to_lut,
)

__version__ = "1.1.0"

__all__ = [
    "api",
    "core",
    "BackendSpec",
    "OperatorSpec",
    "build_backend",
    "as_backend",
    "SessionConfig",
    "InferenceSession",
    "LookupTable",
    "OneHiddenReluNet",
    "TrainingConfig",
    "fit_network",
    "fit_lut",
    "network_to_lut",
    "default_registry",
    "LutGelu",
    "LutSoftmax",
    "LutLayerNorm",
    "__version__",
]
