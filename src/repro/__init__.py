"""NN-LUT reproduction: neural approximation of Transformer non-linearities.

Reproduction of Yu et al., "NN-LUT: Neural Approximation of Non-Linear
Operations for Efficient Transformer Inference" (DAC 2022).

Sub-packages
------------
``repro.core``
    The NN-LUT framework itself: ReLU-network fitting, the exact NN->LUT
    transform, precision variants, input scaling and calibration.
``repro.baselines``
    Linear-mode / Exponential-mode LUT baselines and the I-BERT integer
    approximation algorithms the paper compares against.
``repro.quant``
    Fixed-point / FP16 numeric helpers shared by the quantised variants.
``repro.transformer``
    Pure-numpy Transformer encoder substrate (RoBERTa-like, MobileBERT-like)
    with pluggable non-linear backends.
``repro.tasks``
    Synthetic GLUE / SQuAD style task generators, metrics and head training
    used for the software accuracy experiments.
``repro.hardware``
    7-nm-calibrated arithmetic-unit cost models and the accelerator cycle
    simulator used for the hardware experiments.
``repro.experiments``
    One driver per table / figure of the paper.
"""

from . import core
from .core import (
    LookupTable,
    LutGelu,
    LutLayerNorm,
    LutSoftmax,
    OneHiddenReluNet,
    TrainingConfig,
    default_registry,
    fit_lut,
    fit_network,
    network_to_lut,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "LookupTable",
    "OneHiddenReluNet",
    "TrainingConfig",
    "fit_network",
    "fit_lut",
    "network_to_lut",
    "default_registry",
    "LutGelu",
    "LutSoftmax",
    "LutLayerNorm",
    "__version__",
]
