"""Linear-mode LUT baseline (the paper's "Linear-LUT").

Breakpoints are pre-determined on an equally-spaced grid over the target
input range (the constraint imposed by simple LUT index hardware), and each
segment's first-order polynomial is obtained by curve fitting.  Because the
breakpoints cannot move, functions with a large dynamic range (1/x, 1/sqrt)
are approximated poorly — which is exactly the failure mode Table 2(a) of the
paper demonstrates for LayerNorm.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..core.functions import get_target_function, get_training_range
from ..core.lut import LookupTable, UniformLookupTable
from .polyfit import build_lut_from_breakpoints, linear_breakpoints

__all__ = ["fit_linear_lut", "linear_lut_for"]


def fit_linear_lut(
    function: Callable[[np.ndarray], np.ndarray],
    input_range: Tuple[float, float],
    num_entries: int = 16,
    method: str = "least_squares",
    name: str = "",
) -> LookupTable:
    """Construct a Linear-mode LUT for an arbitrary scalar function.

    The returned table is a :class:`UniformLookupTable`: the equally-spaced
    grid that constrains the baseline's accuracy is also what lets its
    segment index be computed in O(1) (``floor((x - lo) / step)``) instead of
    a binary search.
    """
    breakpoints = linear_breakpoints(input_range, num_entries)
    lut = build_lut_from_breakpoints(
        function, breakpoints, input_range, method=method, name=name
    )
    return UniformLookupTable.from_table(lut).with_metadata(
        mode="linear", num_entries=num_entries
    )


def linear_lut_for(
    function_name: str,
    num_entries: int = 16,
    input_range: Tuple[float, float] | None = None,
    method: str = "least_squares",
) -> LookupTable:
    """Linear-mode LUT for one of the registered scalar primitives.

    Uses the same Table-1 input ranges as NN-LUT so the two methods are
    compared on equal footing (Figure 2 of the paper).
    """
    function = get_target_function(function_name)
    if input_range is None:
        input_range = get_training_range(function_name)
    return fit_linear_lut(
        function, input_range, num_entries=num_entries, method=method, name=function_name
    )
