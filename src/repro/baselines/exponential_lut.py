"""Exponential-mode LUT baseline.

The second pre-determined breakpoint scheme described in Sec. 3.1 of the
paper (and used by NPU LUT hardware such as NVDLA): interval widths grow
geometrically from the low end of the range, so low-range values get short
intervals and high-range values long ones.  Like Linear-mode, the breakpoints
are fixed by the hardware indexing scheme rather than learned.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..core.functions import get_target_function, get_training_range
from ..core.lut import LookupTable
from .polyfit import build_lut_from_breakpoints, exponential_breakpoints

__all__ = ["fit_exponential_lut", "exponential_lut_for"]


def fit_exponential_lut(
    function: Callable[[np.ndarray], np.ndarray],
    input_range: Tuple[float, float],
    num_entries: int = 16,
    method: str = "least_squares",
    name: str = "",
) -> LookupTable:
    """Construct an Exponential-mode LUT for an arbitrary scalar function."""
    breakpoints = exponential_breakpoints(input_range, num_entries)
    lut = build_lut_from_breakpoints(
        function, breakpoints, input_range, method=method, name=name
    )
    return lut.with_metadata(mode="exponential", num_entries=num_entries)


def exponential_lut_for(
    function_name: str,
    num_entries: int = 16,
    input_range: Tuple[float, float] | None = None,
    method: str = "least_squares",
) -> LookupTable:
    """Exponential-mode LUT for one of the registered scalar primitives."""
    function = get_target_function(function_name)
    if input_range is None:
        input_range = get_training_range(function_name)
    return fit_exponential_lut(
        function, input_range, num_entries=num_entries, method=method, name=function_name
    )
