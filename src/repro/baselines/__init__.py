"""Baseline approximation methods the paper compares NN-LUT against.

* ``linear_lut`` / ``exponential_lut`` — fixed-breakpoint LUTs built by
  first-order curve fitting (the paper's "Linear-LUT" baseline and the
  Exponential-mode variant found in NPU LUT hardware).
* ``ibert`` — I-BERT's integer-only polynomial / shift / Newton approximations
  of GELU, Softmax and LayerNorm (the state-of-the-art comparison in
  Tables 2(b), 4 and 5).
"""

from .exponential_lut import exponential_lut_for, fit_exponential_lut
from .ibert import (
    ERF_COEFFICIENTS,
    EXP_COEFFICIENTS,
    IBertGelu,
    IBertLayerNorm,
    IBertSoftmax,
    i_erf,
    i_exp,
    i_gelu,
    i_layernorm,
    i_softmax,
    i_sqrt,
    int_erf,
    int_exp,
    int_gelu,
    int_poly,
    integer_sqrt,
)
from .linear_lut import fit_linear_lut, linear_lut_for
from .polyfit import (
    build_lut_from_breakpoints,
    exponential_breakpoints,
    fit_segments_interpolation,
    fit_segments_least_squares,
    linear_breakpoints,
)

__all__ = [
    "fit_linear_lut",
    "linear_lut_for",
    "fit_exponential_lut",
    "exponential_lut_for",
    "linear_breakpoints",
    "exponential_breakpoints",
    "fit_segments_least_squares",
    "fit_segments_interpolation",
    "build_lut_from_breakpoints",
    "ERF_COEFFICIENTS",
    "EXP_COEFFICIENTS",
    "i_erf",
    "i_gelu",
    "i_exp",
    "i_softmax",
    "i_sqrt",
    "i_layernorm",
    "int_poly",
    "int_erf",
    "int_exp",
    "int_gelu",
    "integer_sqrt",
    "IBertGelu",
    "IBertSoftmax",
    "IBertLayerNorm",
]
