"""Piecewise first-order curve-fitting utilities shared by the LUT baselines.

The paper's Linear-LUT baseline (Sec. 4.1) is "a linear-mode LUT constructed
by curve fitting with the 1st order polynomial": breakpoints are fixed on a
pre-determined grid (equally spaced for linear mode, geometrically spaced for
exponential mode) and each segment gets the least-squares best line for the
target function on that segment.  Unlike the NN-LUT transform this produces a
*discontinuous* piecewise-linear function in general, exactly as a fixed-grid
hardware LUT does.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..core.lut import LookupTable

__all__ = [
    "linear_breakpoints",
    "exponential_breakpoints",
    "fit_segments_least_squares",
    "fit_segments_interpolation",
    "build_lut_from_breakpoints",
]


def linear_breakpoints(input_range: Tuple[float, float], num_entries: int) -> np.ndarray:
    """Equally-spaced breakpoints for an ``num_entries``-segment table."""
    low, high = float(input_range[0]), float(input_range[1])
    if not high > low:
        raise ValueError(f"input_range must satisfy high > low, got {input_range}")
    if num_entries < 2:
        raise ValueError("num_entries must be >= 2")
    return np.linspace(low, high, num_entries + 1)[1:-1]


def exponential_breakpoints(
    input_range: Tuple[float, float], num_entries: int
) -> np.ndarray:
    """Exponential-mode breakpoints: short intervals at the low end.

    Matches the Exponential-mode described for NPU LUT hardware (paper
    Sec. 3.1): interval widths grow geometrically from the low end of the
    range.  Works for ranges of either sign by operating on the offset from
    the low endpoint.
    """
    low, high = float(input_range[0]), float(input_range[1])
    if not high > low:
        raise ValueError(f"input_range must satisfy high > low, got {input_range}")
    if num_entries < 2:
        raise ValueError("num_entries must be >= 2")
    # Offsets 2^1 .. 2^(N-1) scaled to the range width: the k-th breakpoint is
    # low + width * (2^k - 1) / (2^N - 1).
    exponents = np.arange(1, num_entries)
    offsets = (2.0**exponents - 1.0) / (2.0**num_entries - 1.0)
    return low + (high - low) * offsets


def fit_segments_least_squares(
    function: Callable[[np.ndarray], np.ndarray],
    breakpoints: np.ndarray,
    input_range: Tuple[float, float],
    points_per_segment: int = 256,
) -> Tuple[np.ndarray, np.ndarray]:
    """Least-squares line fit of ``function`` on every breakpoint segment.

    Returns ``(slopes, intercepts)`` with ``len(breakpoints) + 1`` entries.
    The two unbounded outer segments are fitted on the part of ``input_range``
    they cover.
    """
    low, high = float(input_range[0]), float(input_range[1])
    edges = np.concatenate(([low], np.asarray(breakpoints, dtype=np.float64), [high]))
    if np.any(np.diff(edges) <= 0):
        raise ValueError("breakpoints must lie strictly inside input_range and be sorted")
    num_segments = edges.size - 1
    slopes = np.empty(num_segments)
    intercepts = np.empty(num_segments)
    for segment in range(num_segments):
        left, right = edges[segment], edges[segment + 1]
        xs = np.linspace(left, right, points_per_segment)
        ys = np.asarray(function(xs), dtype=np.float64)
        design = np.stack([xs, np.ones_like(xs)], axis=1)
        coeffs, *_ = np.linalg.lstsq(design, ys, rcond=None)
        slopes[segment] = coeffs[0]
        intercepts[segment] = coeffs[1]
    return slopes, intercepts


def fit_segments_interpolation(
    function: Callable[[np.ndarray], np.ndarray],
    breakpoints: np.ndarray,
    input_range: Tuple[float, float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Endpoint-interpolation line fit of ``function`` on every segment.

    The classic LUT construction: each segment's line passes through the
    function values at the segment edges, so the approximation is continuous
    but not error-optimal.
    """
    low, high = float(input_range[0]), float(input_range[1])
    edges = np.concatenate(([low], np.asarray(breakpoints, dtype=np.float64), [high]))
    if np.any(np.diff(edges) <= 0):
        raise ValueError("breakpoints must lie strictly inside input_range and be sorted")
    values = np.asarray(function(edges), dtype=np.float64)
    slopes = np.diff(values) / np.diff(edges)
    intercepts = values[:-1] - slopes * edges[:-1]
    return slopes, intercepts


def build_lut_from_breakpoints(
    function: Callable[[np.ndarray], np.ndarray],
    breakpoints: np.ndarray,
    input_range: Tuple[float, float],
    method: str = "least_squares",
    name: str = "",
) -> LookupTable:
    """Assemble a :class:`LookupTable` with fixed breakpoints.

    ``method`` is ``"least_squares"`` (the paper's curve-fitting baseline) or
    ``"interpolation"``.
    """
    if method == "least_squares":
        slopes, intercepts = fit_segments_least_squares(function, breakpoints, input_range)
    elif method == "interpolation":
        slopes, intercepts = fit_segments_interpolation(function, breakpoints, input_range)
    else:
        raise ValueError(f"method must be 'least_squares' or 'interpolation', got {method!r}")
    return LookupTable(
        breakpoints=np.asarray(breakpoints, dtype=np.float64),
        slopes=slopes,
        intercepts=intercepts,
        name=name,
        metadata={"source": f"fixed_breakpoints/{method}", "input_range": tuple(input_range)},
    )
