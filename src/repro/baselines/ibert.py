"""I-BERT integer-only approximations of GELU, Softmax and LayerNorm.

The paper's main software and hardware comparison target is I-BERT
(Kim et al., ICML 2021), which replaces the transcendental parts of the
Transformer non-linearities with second-order polynomial / shift / Newton
iterations that can be evaluated in INT32 arithmetic.  This module implements
those algorithms from their published description:

* ``i_erf`` / ``i_gelu``  — Algorithm 2: erf approximated by the polynomial
  ``sign(x) * [a (min(|x|, -b) + b)^2 + 1]`` with ``a = -0.2888``,
  ``b = -1.769``; GELU assembled as ``x/2 (1 + i_erf(x / sqrt(2)))``.
* ``i_exp``  — Algorithm 3: range reduction ``x = p - z ln2`` with integer
  ``z`` and ``p ∈ (-ln2, 0]``, a second-order polynomial
  ``a (p + b)^2 + c`` with ``a = 0.3585, b = 1.353, c = 0.344``, and a final
  right-shift by ``z``.
* ``i_sqrt``  — Algorithm 4: integer Newton iteration for the square root.
* ``i_softmax`` / ``i_layernorm`` — compositions of the above.

Two views are provided:

* Float-simulated kernels (``i_gelu``, ``i_exp`` …) follow the exact
  computation sequence but keep float inputs/outputs; they are what the
  software-accuracy experiments use (I-BERT's own accuracy results are
  produced this way before the scaling factors are folded in).
* Integer-domain kernels (``int_erf``, ``int_exp``, ``integer_sqrt`` …) that
  operate on ``(int_tensor, scale_factor)`` pairs, demonstrating that the
  computation needs only integer arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "ERF_COEFFICIENTS",
    "EXP_COEFFICIENTS",
    "i_erf",
    "i_gelu",
    "i_exp",
    "i_softmax",
    "i_sqrt",
    "i_layernorm",
    "int_poly",
    "int_erf",
    "int_exp",
    "integer_sqrt",
    "IBertGelu",
    "IBertSoftmax",
    "IBertLayerNorm",
]

#: (a, b, c) of the I-BERT erf polynomial  a (x + b)^2 + c  on [0, -b].
ERF_COEFFICIENTS: Tuple[float, float, float] = (-0.2888, -1.769, 1.0)

#: (a, b, c) of the I-BERT exp polynomial  a (x + b)^2 + c  on (-ln2, 0].
EXP_COEFFICIENTS: Tuple[float, float, float] = (0.3585, 1.353, 0.344)

_LN2 = float(np.log(2.0))


# --------------------------------------------------------------------------- #
# Float-simulated kernels (accuracy view)
# --------------------------------------------------------------------------- #
def i_erf(x: np.ndarray) -> np.ndarray:
    """I-BERT second-order polynomial approximation of erf."""
    x = np.asarray(x, dtype=np.float64)
    a, b, _ = ERF_COEFFICIENTS
    clipped = np.minimum(np.abs(x), -b)
    poly = a * (clipped + b) ** 2 + 1.0
    return np.sign(x) * poly


def i_gelu(x: np.ndarray) -> np.ndarray:
    """I-BERT GELU: ``x/2 * (1 + i_erf(x / sqrt(2)))``."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + i_erf(x / np.sqrt(2.0)))


def i_exp(x: np.ndarray) -> np.ndarray:
    """I-BERT exp for non-positive inputs (range reduction + polynomial).

    Inputs are clipped to ``<= 0`` (as in Softmax after max subtraction) and
    to a floor of ``-30 ln2`` where the true exponential underflows anyway.
    """
    x = np.asarray(x, dtype=np.float64)
    x = np.clip(x, -30.0 * _LN2, 0.0)
    z = np.floor(-x / _LN2)
    p = x + z * _LN2
    a, b, c = EXP_COEFFICIENTS
    poly = a * (p + b) ** 2 + c
    return poly * (2.0 ** (-z))


def i_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """I-BERT Softmax: max-subtract, i_exp, exact sum, divide."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = i_exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def i_sqrt(x: np.ndarray, iterations: int = 4) -> np.ndarray:
    """Newton-iteration square root mirroring I-BERT's integer algorithm.

    ``iterations`` matches the handful of Newton steps I-BERT uses; the
    float simulation seeds the iteration with a power-of-two estimate of the
    magnitude, exactly as the integer version does with bit length.
    """
    x = np.asarray(x, dtype=np.float64)
    x = np.maximum(x, 0.0)
    # Seed: 2^(ceil(bits/2)) where bits is the position of the leading one.
    with np.errstate(divide="ignore"):
        bits = np.where(x > 0, np.ceil(np.log2(np.maximum(x, 1e-300))), 0.0)
    estimate = 2.0 ** np.ceil((bits + 1) / 2.0)
    for _ in range(iterations):
        safe = np.where(estimate > 0, estimate, 1.0)
        estimate = 0.5 * (safe + x / safe)
    return np.where(x > 0, estimate, 0.0)


def i_layernorm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    axis: int = -1,
    eps: float = 1e-5,
    iterations: int = 4,
) -> np.ndarray:
    """I-BERT LayerNorm: exact mean/var, Newton square root, division."""
    x = np.asarray(x, dtype=np.float64)
    mean = np.mean(x, axis=axis, keepdims=True)
    var = np.mean((x - mean) ** 2, axis=axis, keepdims=True)
    std = i_sqrt(var + eps, iterations=iterations)
    normalised = (x - mean) / np.maximum(std, 1e-12)
    if gamma is not None:
        normalised = normalised * gamma
    if beta is not None:
        normalised = normalised + beta
    return normalised


# --------------------------------------------------------------------------- #
# Integer-domain kernels (hardware view)
# --------------------------------------------------------------------------- #
def int_poly(
    q: np.ndarray, scale: float, coefficients: Tuple[float, float, float]
) -> Tuple[np.ndarray, float]:
    """Evaluate ``a (x + b)^2 + c`` on integer inputs with scale factor.

    Following I-BERT: ``q_b = floor(b / scale)``, ``q_c = floor(c / (a scale^2))``
    so that ``(q + q_b)^2 + q_c`` carries scale factor ``a * scale^2``.
    """
    a, b, c = coefficients
    q = np.asarray(q, dtype=np.int64)
    q_b = int(np.floor(b / scale))
    out_scale = a * scale * scale
    q_c = int(np.floor(c / out_scale))
    q_out = (q + q_b) ** 2 + q_c
    return q_out, out_scale


def int_erf(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """Integer erf: clip to the polynomial's validity range, apply sign."""
    q = np.asarray(q, dtype=np.int64)
    _, b, _ = ERF_COEFFICIENTS
    q_limit = int(np.floor(-b / scale))
    q_clipped = np.minimum(np.abs(q), q_limit)
    q_poly, out_scale = int_poly(q_clipped, scale, ERF_COEFFICIENTS)
    return np.sign(q) * q_poly, out_scale


def int_gelu(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """Integer GELU: ``q/2 * (1 + i_erf(q / sqrt(2)))`` in integer arithmetic."""
    q = np.asarray(q, dtype=np.int64)
    q_erf, erf_scale = int_erf(q, scale / np.sqrt(2.0))
    q_one = int(np.floor(1.0 / erf_scale))
    q_out = q * (q_erf + q_one)
    return q_out, scale * erf_scale / 2.0


def int_exp(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """Integer exp for non-positive inputs with right-shift range reduction."""
    q = np.asarray(q, dtype=np.int64)
    q_ln2 = int(np.floor(_LN2 / scale))
    q_ln2 = max(q_ln2, 1)
    q = np.maximum(q, -30 * q_ln2)
    z = (-q) // q_ln2
    q_p = q + z * q_ln2
    q_poly, out_scale = int_poly(q_p, scale, EXP_COEFFICIENTS)
    # Right shift by z: divide by 2^z in integer arithmetic.
    shifted = np.floor(q_poly / (2.0**z)).astype(np.int64)
    return shifted, out_scale


def integer_sqrt(n: np.ndarray, iterations: int = 40) -> np.ndarray:
    """Integer Newton square root (I-BERT Algorithm 4), returning floor(sqrt(n)).

    The iterate ``x_{k+1} = (x_k + n // x_k) // 2`` started from a power-of-two
    upper bound decreases monotonically until it reaches ``floor(sqrt(n))`` and
    then oscillates by one; keeping the running minimum yields the exact floor
    (the oscillation never undershoots it).
    """
    n = np.asarray(n, dtype=np.int64)
    if np.any(n < 0):
        raise ValueError("integer_sqrt requires non-negative inputs")
    result = np.zeros_like(n)
    positive = n > 0
    if not np.any(positive):
        return result
    values = n[positive].astype(np.float64)
    bits = np.floor(np.log2(values)) + 1
    estimate = np.power(2.0, np.ceil(bits / 2.0)).astype(np.int64)
    n_pos = n[positive]
    best = estimate.copy()
    for _ in range(iterations):
        estimate = (estimate + n_pos // np.maximum(estimate, 1)) // 2
        best = np.minimum(best, np.maximum(estimate, 1))
    result[positive] = best
    return result


# --------------------------------------------------------------------------- #
# Drop-in operator classes (same call signature as the LUT composites)
# --------------------------------------------------------------------------- #
@dataclass
class IBertGelu:
    """GELU evaluated with the I-BERT polynomial approximation."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return i_gelu(x)


@dataclass
class IBertSoftmax:
    """Softmax evaluated with the I-BERT integer-style exp approximation."""

    axis: int = -1

    def __call__(self, x: np.ndarray, axis: int | None = None) -> np.ndarray:
        return i_softmax(x, axis=self.axis if axis is None else axis)


@dataclass
class IBertLayerNorm:
    """LayerNorm evaluated with the I-BERT Newton-iteration square root."""

    eps: float = 1e-5
    axis: int = -1
    iterations: int = 4

    def __call__(
        self,
        x: np.ndarray,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
        axis: int | None = None,
    ) -> np.ndarray:
        return i_layernorm(
            x,
            gamma=gamma,
            beta=beta,
            axis=self.axis if axis is None else axis,
            eps=self.eps,
            iterations=self.iterations,
        )
