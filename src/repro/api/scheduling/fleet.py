"""Live fleet membership and the scheduler/worker machinery.

The :class:`FleetManager` is the concurrency core the pre-refactor
``ServingQueue`` interleaved with everything else: it owns the pending
deque, the coalescing scheduler thread, one worker thread per replica,
and — new in this refactor — *live* membership.  Replicas can be added
(:meth:`~FleetManager.add_member`), drained
(:meth:`~FleetManager.drain_member` — in-flight and already-queued work
completes on the old member, nothing new is routed to it) and retired
(:meth:`~FleetManager.retire_member` — drain semantics, then blocks until
the member's in-flight work finished and removes it) while traffic is
being served.  A replica whose session reports itself ``defunct`` (a
dead or poisoned shard worker) is retired automatically: its queued
batches are re-routed to the survivors instead of being failed, and with
``replace_dead=True`` the fleet asks the pool for a fresh replica to
take its place.  Only when the *last* member dies does the queue close
itself, exactly like the pre-refactor behaviour.

New in this PR, the fleet is *resilient*: with a
:class:`~repro.api.scheduling.resilience.RetryPolicy` installed, a batch
hit by a replica-level failure (worker death, timeout, transport/integrity
fault) is re-routed to the survivors — after an exponential-backoff sleep
taken strictly outside the lock — instead of failing its futures; every
member carries a :class:`~repro.api.scheduling.resilience.ReplicaHealth`
ledger whose circuit breaker (when configured) drains a flaky replica and
re-admits it through a half-open probe; and requests that carry deadlines
ship their remaining budget with the batch (``forward_deadline`` on shard
clients), capping the transport wait and letting workers skip requests
that expired in flight.

Locking story (kept deliberately boring so the interprocedural
``lock-order`` / ``blocking-under-lock`` static checks stay clean): the
fleet condition (``_cond`` over ``_lock``) is the **only** lock in the
scheduling package.  The admission controller, batch former, router and
stats board are all lock-free and only ever touched while it is held;
everything that can block — replica forwards, pool spawn/retire hooks,
thread joins, future fulfilment, **retry backoff sleeps** — happens
strictly outside it.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..transport import TransportIntegrityError
from .admission import (
    AdmissionController,
    DeadlineExceededError,
    Pending,
    ServerClosedError,
)
from .former import BatchFormer
from .resilience import CircuitBreakerConfig, ReplicaHealth, RetryPolicy
from .routing import Router
from .stats import ReplicaStats, ServingStats, StatsBoard

__all__ = ["FormedBatch", "ReplicaMember", "FleetManager"]


def _per_future_error(exc: BaseException) -> BaseException:
    """A private copy of a batch failure for one future.

    Every future in a failed batch re-raises "the" error, but ``raise``
    mutates the raised instance's ``__traceback__`` — handing the *same*
    instance to N futures makes concurrent ``result()`` calls race on that
    shared mutable state (and chains unrelated client-side tracebacks into
    each other).  Each future therefore gets its own copy, with the original
    attached as ``__cause__`` so nothing about the failure is lost.

    This helper must *never* raise: it runs inside the worker loop's error
    path, and an escaping exception there kills the worker thread with the
    batch's futures still unresolved — every client in the batch then hangs
    until its own timeout, and the original error is silently eaten.  Exotic
    exception classes can break both fallbacks in ways ``except Exception``
    does not cover (a constructor or ``__reduce_ex__`` raising a
    ``BaseException``, or a constructor returning a non-exception via
    ``__new__``), so each stage catches ``BaseException`` and validates its
    result; the last resort is a plain ``RuntimeError`` that still chains the
    original as ``__cause__`` — degraded, never silent.
    """
    clone: BaseException | None = None
    try:
        candidate = type(exc)(*exc.args)
        if isinstance(candidate, BaseException):
            clone = candidate
    except BaseException:
        clone = None
    if clone is None:
        try:
            candidate = copy.copy(exc)
            if isinstance(candidate, BaseException):
                clone = candidate
        except BaseException:
            clone = None
    if clone is None:
        clone = RuntimeError(f"batch forward failed: {exc!r}")
    clone.__traceback__ = None
    clone.__cause__ = exc
    return clone


class FormedBatch:
    """One routed unit of work: a length-homogeneous group of requests.

    ``attempts`` counts completed dispatches that failed — 0 for a fresh
    batch, bumped each time the retry machinery re-routes it.
    """

    __slots__ = ("requests", "cost", "attempts")

    def __init__(self, requests: List[Pending], attempts: int = 0) -> None:
        self.requests = requests
        self.cost = sum(pending.cost for pending in requests)
        self.attempts = attempts


class ReplicaMember:
    """One replica's scheduling state: its queue, load, and lifecycle flags.

    All fields are guarded by the owning fleet's condition lock.  The
    ``session`` handle (an ``InferenceSession`` or a shard client) is only
    ever *called* outside that lock.
    """

    __slots__ = (
        "replica_id", "session", "thread", "batches", "queued_cost",
        "in_flight_requests", "in_flight_cost", "batches_served",
        "completed", "failed", "stolen", "draining", "retired", "exited",
        "health",
    )

    def __init__(
        self,
        replica_id: int,
        session,
        breaker: Optional[CircuitBreakerConfig] = None,
    ) -> None:
        self.replica_id = replica_id
        self.session = session
        self.thread: Optional[threading.Thread] = None
        self.batches: Deque[FormedBatch] = deque()
        self.queued_cost = 0
        self.in_flight_requests = 0
        self.in_flight_cost = 0
        self.batches_served = 0
        self.completed = 0
        self.failed = 0
        self.stolen = 0
        self.draining = False
        self.retired = False
        self.exited = False
        self.health = ReplicaHealth(breaker)

    @property
    def load(self) -> int:
        """Outstanding token cost: what the least-loaded router minimizes."""
        return self.queued_cost + self.in_flight_cost

    @property
    def routable(self) -> bool:
        return not self.draining and not self.retired

    def stats(self) -> ReplicaStats:
        return ReplicaStats(
            replica_id=self.replica_id,
            queued_batches=len(self.batches),
            queued_requests=sum(len(b.requests) for b in self.batches),
            queued_cost=self.queued_cost,
            in_flight_requests=self.in_flight_requests,
            in_flight_cost=self.in_flight_cost,
            batches_served=self.batches_served,
            completed=self.completed,
            failed=self.failed,
            stolen=self.stolen,
            draining=self.draining,
            live=not self.retired and not self.exited,
            errors=self.health.errors,
            timeouts=self.health.timeouts,
            service_ewma_ms=self.health.service_ewma_ms,
            breaker_state=self.health.state,
        )


class FleetManager:
    """Replica membership, the scheduler loop, and per-member workers.

    See the module docstring for the design; the facade
    (:class:`repro.api.server.ServingQueue`) owns construction and wires
    the collaborators in.
    """

    def __init__(
        self,
        pool,
        router: Router,
        former: BatchFormer,
        admission: AdmissionController,
        board: StatsBoard,
        replace_dead: bool = False,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreakerConfig] = None,
    ) -> None:
        self._pool = pool
        self._router = router
        self._former = former
        self._admission = admission
        self._board = board
        self._replace_dead = replace_dead
        self._retry = retry
        self._breaker = breaker
        #: Jitter stream for retry backoffs; drawn from only under the
        #: fleet lock, which is what makes sharing it across workers safe.
        self._retry_rng = np.random.default_rng(retry.seed if retry else 0)
        #: Requests whose batch is between a failed dispatch and its retry
        #: re-route (the backoff sleep); drain() must wait these out — they
        #: are in no queue and no in-flight counter while parked.
        self._retry_parked = 0
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._members: Dict[int, ReplicaMember] = {}
        self._pending: Deque[Pending] = deque()
        self._next_replica_id = 0
        self._inflight_batches = 0
        self._closed = False
        self._started = False
        #: Requests close() failed with ServerClosedError instead of serving;
        #: drain() consults this to distinguish "served" from "discarded".
        self._dropped_on_close = 0
        self._scheduler_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Register the pool's replicas and start scheduler + workers."""
        with self._cond:
            if self._closed:
                raise ServerClosedError("cannot start a closed ServingQueue")
            if self._started:
                return
            self._started = True
            known = {id(m.session) for m in self._members.values()}
            for session in self._pool.sessions:
                if id(session) not in known:
                    self._register(session)
            to_start = [m for m in self._members.values() if m.thread is None]
        for member in to_start:
            self._start_worker(member)
        self._scheduler_thread = threading.Thread(
            target=self._scheduler_loop, name="serving-scheduler", daemon=True
        )
        self._scheduler_thread.start()

    def shut_down(self, reason: str) -> None:
        """Mark the fleet closed and fail the dropped backlog (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            dropped = list(self._pending)
            self._pending.clear()
            for member in self._members.values():
                for batch in member.batches:
                    dropped.extend(batch.requests)
                member.batches.clear()
                member.queued_cost = 0
            self._admission.release(len(dropped))
            self._dropped_on_close += len(dropped)
            self._cond.notify_all()
        for pending in dropped:
            pending.future._fail(ServerClosedError(reason))

    def join(self, timeout: float) -> None:
        """Join the scheduler and every worker thread (outside the lock)."""
        threads: List[Optional[threading.Thread]] = [self._scheduler_thread]
        with self._cond:
            threads.extend(m.thread for m in self._members.values())
        for thread in threads:
            if thread is not None and thread.is_alive():
                thread.join(timeout)

    # ------------------------------------------------------------------ #
    # Client surface (called by the facade)
    # ------------------------------------------------------------------ #
    def submit(self, pending: Pending) -> None:
        with self._cond:
            if self._closed:
                raise ServerClosedError("ServingQueue is closed")
            self._admission.admit()
            self._pending.append(pending)
            self._board.note_submitted(
                pending.submitted_at, self._admission.backlog
            )
            self._cond.notify_all()

    def drain(self, timeout: float) -> None:
        closed_error = ServerClosedError(
            "ServingQueue was closed while draining; the remaining "
            "backlog will never be served"
        )
        deadline = time.monotonic() + timeout
        with self._cond:
            while (
                self._pending
                or self._inflight_batches
                or self._retry_parked
                or any(m.batches for m in self._members.values())
            ):
                if self._closed:
                    raise closed_error
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("ServingQueue did not drain in time")
                self._cond.wait(remaining)
            # The backlog is gone — but close() *discards* the pending and
            # formed backlog (failing those futures), so an empty closed
            # queue is not necessarily a served one.
            if self._closed and self._dropped_on_close:
                raise closed_error

    def reset_stats(self) -> None:
        with self._cond:
            self._board.reset(self._admission.backlog, time.monotonic())

    def snapshot(self) -> ServingStats:
        """A consistent ``ServingStats`` snapshot (fleet + board + backlog)."""
        with self._cond:
            replicas = tuple(
                member.stats()
                for member in sorted(
                    self._members.values(), key=lambda m: m.replica_id
                )
            )
            return self._board.snapshot(
                backlog=self._admission.backlog,
                router=self._router.name,
                replicas=replicas,
            )

    @property
    def inflight_batches(self) -> int:
        """Batches currently dispatched to a replica forward (tests poll it)."""
        with self._cond:
            return self._inflight_batches

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def add_member(self, session) -> int:
        """Adopt a new replica handle into the live fleet; returns its id."""
        with self._cond:
            if self._closed:
                raise ServerClosedError("ServingQueue is closed")
            member = self._register(session)
            self._board.replicas_added += 1
            started = self._started
            self._cond.notify_all()
        if started:
            self._start_worker(member)
        return member.replica_id

    def drain_member(self, replica_id: int) -> None:
        """Stop routing new work to a member; queued + in-flight completes."""
        with self._cond:
            member = self._members.get(replica_id)
            if member is None:
                raise ValueError(f"unknown replica id {replica_id}")
            others = [m for m in self._routable() if m is not member]
            if not others:
                raise ValueError(
                    "cannot drain the last live replica; add one first"
                )
            member.draining = True
            self._cond.notify_all()

    def retire_member(self, replica_id: int, timeout: float = 30.0):
        """Remove a member: drain it, wait for its in-flight work, drop it.

        Already-queued batches are re-routed to the surviving members (no
        request is lost); the batch the member is *currently* serving
        completes on it before this call returns.  Returns the retired
        session handle so the caller (the facade) can hand it back to the
        pool.  Raises ``ValueError`` for an unknown id or when retirement
        would leave no live replica, ``TimeoutError`` when in-flight work
        outlives ``timeout``.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            member = self._members.get(replica_id)
            if member is None:
                raise ValueError(f"unknown replica id {replica_id}")
            remaining_members = [m for m in self._routable() if m is not member]
            if not remaining_members:
                raise ValueError(
                    "cannot retire the last live replica; add one first"
                )
            member.draining = True
            member.retired = True
            requeued = list(member.batches)
            member.batches.clear()
            member.queued_cost = 0
            for batch in requeued:
                self._route(batch)
            self._cond.notify_all()
            # A member without a worker thread (queue built with start=False)
            # has nothing to wait out — only a started worker sets `exited`.
            while member.in_flight_requests > 0 or (
                member.thread is not None and not member.exited
            ):
                if self._closed:
                    break
                remaining_s = deadline - time.monotonic()
                if remaining_s <= 0:
                    raise TimeoutError(
                        f"replica {replica_id} did not finish its in-flight "
                        "work before the retire timeout"
                    )
                self._cond.wait(remaining_s)
            self._members.pop(replica_id, None)
            self._board.replicas_retired += 1
            self._cond.notify_all()
        return member.session

    def scaledown_candidate(self) -> Optional[int]:
        """The member the autoscaler should shed: least loaded, newest id.

        ``None`` when the fleet is already at one routable member.
        """
        with self._cond:
            candidates = self._routable()
            if len(candidates) <= 1:
                return None
            member = min(candidates, key=lambda m: (m.load, -m.replica_id))
            return member.replica_id

    def _register(self, session) -> ReplicaMember:
        """Create and index a member (fleet lock held by the caller)."""
        member = ReplicaMember(self._next_replica_id, session, self._breaker)
        self._next_replica_id += 1
        self._members[member.replica_id] = member
        return member

    def _start_worker(self, member: ReplicaMember) -> None:
        thread = threading.Thread(
            target=self._worker_loop, args=(member,),
            name=f"serving-worker-{member.replica_id}", daemon=True,
        )
        member.thread = thread
        thread.start()

    def _routable(self) -> List[ReplicaMember]:
        """Members new work may be routed to (fleet lock held).

        Lifecycle (``routable``) and circuit-breaker admission both apply:
        an open breaker keeps a flaky member registered and serving its
        existing queue, but invisible to the router until its cooldown
        half-opens it for a probe.
        """
        now = time.monotonic()
        return sorted(
            (
                m for m in self._members.values()
                if m.routable and m.health.admits(
                    now, idle=not m.batches and m.in_flight_requests == 0
                )
            ),
            key=lambda m: m.replica_id,
        )

    def _route(self, batch: FormedBatch) -> None:
        """Assign a formed batch to a member's queue (fleet lock held)."""
        candidates = self._routable()
        if not candidates:
            # Transient: every member died or started draining mid-window.
            # Push the work back so the scheduler re-dispatches when
            # membership recovers (or close()/fleet-death fails it).
            self._pending.extendleft(reversed(batch.requests))
            return
        member = self._router.select(candidates, batch)
        member.batches.append(batch)
        member.queued_cost += batch.cost

    def _steal(self, thief: ReplicaMember) -> Optional[FormedBatch]:
        """One queued batch from the most backlogged peer (fleet lock held)."""
        donors = [
            m for m in self._members.values()
            if m is not thief and m.batches and not m.retired
        ]
        if not donors:
            return None
        donor = max(donors, key=lambda m: (m.queued_cost, len(m.batches)))
        batch = donor.batches.popleft()
        donor.queued_cost -= batch.cost
        thief.stolen += 1
        return batch

    def _breaker_poll_s(self) -> Optional[float]:
        """Wait bound while work is pending but no member admits it.

        Breaker reopening is time-driven — no thread notifies the condition
        when a cooldown elapses — so when open breakers are what blocks
        routing, the scheduler polls at the earliest half-open ETA instead
        of waiting forever.  ``None`` (wait untouched) when nothing is
        pending or no breaker is counting down.  Fleet lock held.
        """
        if not self._pending:
            return None
        now = time.monotonic()
        etas = [
            eta
            for m in self._members.values()
            if m.routable
            and (eta := m.health.reopen_eta_s(now)) is not None
        ]
        if not etas:
            return None
        return max(0.005, min(etas))

    # ------------------------------------------------------------------ #
    # Scheduler: pending window -> formed batches -> member queues
    # ------------------------------------------------------------------ #
    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (
                    not self._pending or not self._routable()
                ):
                    self._cond.wait(self._breaker_poll_s())
                if self._closed:
                    return
                window_end = self._former.window_deadline(
                    self._pending[0].submitted_at
                )
                while (
                    not self._closed
                    and not self._former.saturated(
                        len(self._pending), len(self._routable())
                    )
                    and (remaining := window_end - time.monotonic()) > 0
                ):
                    self._cond.wait(remaining)
                if self._closed:
                    return
                window = list(self._pending)
                self._pending.clear()

            now = time.monotonic()
            live, expired = self._admission.split_expired(window, now)
            groups = self._former.form(live)
            with self._cond:
                if self._closed:
                    # close() already failed everything it saw; fail the rest.
                    self._admission.release(len(window))
                    self._dropped_on_close += len(window)
                    self._cond.notify_all()
                    for pending in window:
                        pending.future._fail(
                            ServerClosedError("ServingQueue was closed")
                        )
                    return
                self._board.expired += len(expired)
                self._admission.release(len(expired))
                for group in groups:
                    self._route(FormedBatch(group))
                self._cond.notify_all()
            for pending in expired:
                pending.future._fail(
                    DeadlineExceededError(
                        "request deadline elapsed before dispatch "
                        f"(queued {1000 * (now - pending.submitted_at):.1f} ms)"
                    )
                )

    # ------------------------------------------------------------------ #
    # Workers: one thread per member
    # ------------------------------------------------------------------ #
    def _worker_loop(self, member: ReplicaMember) -> None:
        try:
            self._serve_member(member)
        finally:
            # Every exit path — closed queue, drained empty, retired, dead
            # replica — publishes the member as exited so retire_member's
            # wait and the stats snapshot see the truth.
            with self._cond:
                member.exited = True
                self._cond.notify_all()

    def _serve_member(self, member: ReplicaMember) -> None:
        session = member.session
        while True:
            with self._cond:
                batch: Optional[FormedBatch] = None
                while batch is None:
                    if member.batches:
                        batch = member.batches.popleft()
                        member.queued_cost -= batch.cost
                        break
                    if self._closed or member.retired:
                        return
                    if member.draining:
                        # Queue empty and nothing new will be routed here:
                        # the drain is complete.
                        return
                    if self._router.steal_when_idle:
                        batch = self._steal(member)
                        if batch is not None:
                            break
                    self._cond.wait()
                member.in_flight_requests += len(batch.requests)
                member.in_flight_cost += batch.cost
                self._inflight_batches += 1
            # Re-check deadlines at pick-up: a formed batch can sit behind a
            # backlog long past the window-close check, and a request whose
            # deadline lapsed must fail rather than be served arbitrarily
            # late (or waste forward time).
            now = time.monotonic()
            live, expired = self._admission.split_expired(batch.requests, now)
            if expired:
                expired_cost = sum(p.cost for p in expired)
                with self._cond:
                    self._board.expired += len(expired)
                    self._admission.release(len(expired))
                    member.in_flight_requests -= len(expired)
                    member.in_flight_cost -= expired_cost
                    if not live:
                        self._inflight_batches -= 1
                    self._cond.notify_all()
                for pending in expired:
                    pending.future._fail(
                        DeadlineExceededError(
                            "request deadline elapsed before its forward "
                            f"started (queued {1000 * (now - pending.submitted_at):.1f} ms)"
                        )
                    )
                if not live:
                    continue
            # The queue-wait / service boundary for every request in the
            # batch: the moment this worker committed to serving it.
            dispatched_at = time.monotonic()
            try:
                tokens = [p.tokens for p in live]
                if any(p.deadline_at is not None for p in live) and hasattr(
                    session, "forward_deadline"
                ):
                    # Deadline propagation: ship each request's remaining
                    # budget with the batch so the shard client caps its
                    # transport wait and the worker skips requests that
                    # expire in flight (returned as zero-length row blocks;
                    # a real result always has >= 1 row).
                    budgets = [
                        p.remaining_budget_s(dispatched_at) for p in live
                    ]
                    results = session.forward_deadline(tokens, budgets)
                else:
                    results = session.forward(tokens)
            except BaseException as exc:
                self._after_batch_failure(member, batch, live, exc)
                if getattr(session, "defunct", False):
                    # A permanently-dead replica (a shard worker process that
                    # died or was poisoned) must leave the fleet: failing
                    # batches instantly, it would outrace the healthy
                    # replicas and poison traffic they could have served.
                    # Membership turns the old "stop consuming" behaviour
                    # into retire-and-optionally-replace; only when the
                    # *last* member dies must the queue fail fast rather
                    # than silently accept requests nothing will serve.
                    fleet_dead = self._retire_dead_member(member)
                    if fleet_dead:
                        self.shut_down(
                            "every replica of this ServingQueue's pool is "
                            "dead; the queue closed itself"
                        )
                    elif self._replace_dead:
                        self._spawn_replacement()
                    return
                continue
            done_at = time.monotonic()
            served: List[Tuple[Pending, object]] = []
            skipped: List[Pending] = []
            for pending, result in zip(live, results):
                if (
                    pending.deadline_at is not None
                    and getattr(result, "shape", (1,))[0] == 0
                ):
                    skipped.append(pending)
                else:
                    served.append((pending, result))
            live_cost = sum(p.cost for p in live)
            with self._cond:
                if member.health.record_success(
                    1000.0 * (done_at - dispatched_at)
                ):
                    self._board.breaker_closes += 1
                self._board.record_batch(
                    [p for p, _ in served], dispatched_at, done_at
                )
                if skipped:
                    self._board.expired += len(skipped)
                    self._board.expired_in_flight += len(skipped)
                self._admission.release(len(live))
                member.batches_served += 1
                member.completed += len(served)
                member.in_flight_requests -= len(live)
                member.in_flight_cost -= live_cost
                self._inflight_batches -= 1
                self._cond.notify_all()
            for pending in skipped:
                pending.future._fail(
                    DeadlineExceededError(
                        "request deadline elapsed in flight; the worker "
                        "skipped its forward"
                    )
                )
            for pending, result in served:
                pending.future._fulfill(result)

    def _after_batch_failure(
        self,
        member: ReplicaMember,
        batch: FormedBatch,
        live: List[Pending],
        exc: BaseException,
    ) -> None:
        """Account one failed dispatch: health/breaker, then retry or fail.

        With a :class:`RetryPolicy` installed and a *replica-level* failure
        (``RetryPolicy.retryable``), the batch is re-routed to the fleet —
        after an exponential-backoff sleep taken strictly OUTSIDE the fleet
        lock — instead of failing its futures; the batch keeps its
        admission slots while parked (``_retry_parked`` makes it visible
        to ``drain``).  Non-retryable failures, exhausted attempts, an
        exhausted window retry budget, or a closed queue fail each future
        with its own error clone, exactly like the pre-retry behaviour.
        """
        live_cost = sum(p.cost for p in live)
        now = time.monotonic()
        retry_batch: Optional[FormedBatch] = None
        backoff_s = 0.0
        with self._cond:
            if getattr(member.session, "defunct", False):
                # The replica is dead or poisoned: _retire_dead_member (on
                # this same thread, right after this method returns) will
                # remove it — but the retry below routes *first*, so take
                # the member out of the routable set now or the retried
                # batch can land straight back on the corpse.
                member.draining = True
            if member.health.record_failure(
                now, timeout=isinstance(exc, TimeoutError)
            ):
                self._board.breaker_opens += 1
            if isinstance(exc, TransportIntegrityError):
                self._board.integrity_failures += 1
            member.in_flight_requests -= len(live)
            member.in_flight_cost -= live_cost
            self._inflight_batches -= 1
            retry = self._retry
            if (
                retry is not None
                and not self._closed
                and batch.attempts + 1 < retry.max_attempts
                and retry.retryable(exc)
                and self._board.retried_requests + len(live)
                <= retry.retry_budget
            ):
                retry_batch = FormedBatch(live, attempts=batch.attempts + 1)
                self._board.retry_attempts += 1
                self._board.retried_requests += len(live)
                self._retry_parked += len(live)
                backoff_s = retry.backoff_s(
                    retry_batch.attempts, self._retry_rng
                )
            else:
                self._board.failed += len(live)
                self._admission.release(len(live))
                member.failed += len(live)
            self._cond.notify_all()
        if retry_batch is None:
            for pending in live:
                pending.future._fail(_per_future_error(exc))
            return
        if backoff_s > 0.0:
            time.sleep(backoff_s)  # deliberately outside the fleet lock
        dropped: List[Pending] = []
        with self._cond:
            self._retry_parked -= len(live)
            if self._closed:
                dropped = list(retry_batch.requests)
                self._admission.release(len(dropped))
                self._dropped_on_close += len(dropped)
            else:
                # If no member admits right now, _route pushes the requests
                # back onto the pending deque — the scheduler re-forms them
                # (attempt count resets, but the window retry budget still
                # bounds the total re-execution work).
                self._route(retry_batch)
            self._cond.notify_all()
        for pending in dropped:
            pending.future._fail(
                ServerClosedError(
                    "ServingQueue was closed while a batch awaited its retry"
                )
            )

    def _retire_dead_member(self, member: ReplicaMember) -> bool:
        """Drop a dead member; re-route its queue.  True if the fleet died.

        Runs on the dying member's own worker thread.  Queued batches move
        to the surviving routable members; if none exist the orphaned
        requests fail right here (their assigned replica is gone and nobody
        can adopt them) — they are never silently lost.
        """
        orphans: List[Pending] = []
        with self._cond:
            member.draining = True
            member.retired = True
            self._members.pop(member.replica_id, None)
            self._board.replicas_retired += 1
            if self._routable():
                for batch in member.batches:
                    self._route(batch)
            else:
                for batch in member.batches:
                    orphans.extend(batch.requests)
                self._admission.release(len(orphans))
                self._board.failed += len(orphans)
            member.batches.clear()
            member.queued_cost = 0
            fleet_dead = self._started and not any(
                not m.retired for m in self._members.values()
            )
            self._cond.notify_all()
        for pending in orphans:
            pending.future._fail(
                RuntimeError(
                    f"replica {member.replica_id} died with this request "
                    "queued and no live replica could adopt it"
                )
            )
        return fleet_dead

    def _spawn_replacement(self) -> None:
        """Best-effort: one fresh replica for a dead one (never raises).

        Runs on the dying worker's thread, strictly outside the fleet lock
        (pool spawning blocks: process start, warm-up forwards).
        """
        try:
            handle = self._pool.spawn_replica()
        except BaseException:
            return
        try:
            self.add_member(handle)
        except BaseException:
            try:
                self._pool.retire_replica(handle)
            except BaseException:
                pass
