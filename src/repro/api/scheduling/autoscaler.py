"""Stats-driven autoscaling over the fleet's membership hooks.

The :class:`Autoscaler` closes the loop PR 5 opened when it split queue
wait from service time in ``stats()``: **wait rising while service stays
flat** means requests are queueing behind too few replicas — add one;
wait collapsing toward zero (or an idle window) means capacity is idle —
shed one.  Service time rising *with* wait is deliberately not a scale-up
signal: the replicas themselves got slower (bigger requests, contention),
and more of them would not unqueue anything.

Decisions are made by the pure :meth:`Autoscaler.observe` — one
:class:`~repro.api.scheduling.stats.ServingStats` snapshot in, one
:class:`AutoscaleDecision` out — so hysteresis is unit-testable without
threads or traffic.  Flap protection is twofold: a pressure signal must
persist for ``patience`` consecutive ticks before any action (a single
spike never scales), and every action is followed by ``cooldown_ticks``
held ticks so the fleet settles before being judged again.

The autoscaler deliberately holds **no lock**: its state is only touched
from its own loop thread (or a test driving :meth:`step` manually), and
it acts through the facade's public ``add_replica`` /
``retire_one_replica`` — which do their own locking — so it can never
participate in a lock-order cycle.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Optional, Tuple

from .stats import ServingStats

__all__ = ["AutoscalerConfig", "AutoscaleDecision", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Bounds, thresholds, and hysteresis for the scaling loop.

    ``high_wait_ratio``/``low_wait_ratio`` compare mean queue wait to mean
    service time per tick: waiting one service-time in queue (ratio 1.0)
    means a whole replica's worth of work is always queued ahead of you.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    interval_s: float = 1.0
    high_wait_ratio: float = 1.0
    low_wait_ratio: float = 0.1
    patience: int = 2
    cooldown_ticks: int = 2
    #: Ticks completing fewer requests than this are "idle" — no up-pressure
    #: evidence, but sustained idleness is down-pressure.
    min_window_completions: int = 1
    #: Service-time growth beyond this fraction per tick reclassifies wait
    #: pressure as "the replicas got slower", which scaling out cannot fix.
    service_rise_tolerance: float = 0.5

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas must be >= min_replicas, got "
                f"{self.max_replicas} < {self.min_replicas}"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.cooldown_ticks < 0:
            raise ValueError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}"
            )


@dataclass(frozen=True)
class AutoscaleDecision:
    """One tick's verdict: what the autoscaler saw and what it did."""

    action: str  # "up" | "down" | "hold"
    reason: str
    wait_ms: float
    service_ms: float
    live_replicas: int
    applied: bool = False
    replica_id: Optional[int] = None


class Autoscaler:
    """The scaling loop over a ``ServingQueue``'s membership surface.

    ``observe`` is the pure decision function; ``step`` applies one
    decision through the queue's hooks; ``start``/``stop`` run ``step``
    every ``interval_s`` on a daemon thread.  The facade wires this up
    when constructed with an :class:`AutoscalerConfig`.
    """

    def __init__(self, queue, config: AutoscalerConfig | None = None) -> None:
        self.queue = queue
        self.config = config or AutoscalerConfig()
        self._streak_up = 0
        self._streak_down = 0
        self._cooldown = 0
        self._prev_service: Optional[float] = None
        self._prev_completed = 0
        self._episodes: Deque[AutoscaleDecision] = deque(maxlen=256)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Decision (pure — no queue mutation, unit-testable without threads)
    # ------------------------------------------------------------------ #
    def observe(self, stats: ServingStats) -> AutoscaleDecision:
        """One tick of the hysteresis state machine over a stats snapshot."""
        config = self.config
        live = stats.live_replicas
        wait = stats.mean_queue_wait_ms
        service = stats.mean_service_ms
        window = stats.completed - self._prev_completed
        if window < 0:  # stats were reset between ticks
            window = stats.completed
        action, reason = "hold", "within band"
        if self._cooldown > 0:
            self._cooldown -= 1
            reason = f"cooldown ({self._cooldown} ticks left)"
        elif live < config.min_replicas:
            action = "up"
            reason = (
                f"{live} live replicas below min_replicas={config.min_replicas}"
            )
        elif window < config.min_window_completions:
            # No throughput: no evidence of queue pressure, but sustained
            # idleness is exactly the diurnal-trough shape to shed on.
            self._streak_up = 0
            self._streak_down += 1
            reason = f"idle window ({window} completions)"
            if self._streak_down >= config.patience and live > config.min_replicas:
                action = "down"
                reason = f"idle for {self._streak_down} ticks"
        else:
            ratio = wait / max(service, 1e-9)
            service_flat = (
                self._prev_service is None
                or service
                <= self._prev_service * (1.0 + config.service_rise_tolerance)
            )
            if ratio >= config.high_wait_ratio and service_flat:
                self._streak_up += 1
                self._streak_down = 0
                reason = (
                    f"queue wait {wait:.2f} ms >= {config.high_wait_ratio:g}x "
                    f"service {service:.2f} ms ({self._streak_up} ticks)"
                )
                if self._streak_up >= config.patience:
                    if live < config.max_replicas:
                        action = "up"
                    else:
                        reason += "; already at max_replicas"
            elif ratio <= config.low_wait_ratio:
                self._streak_down += 1
                self._streak_up = 0
                reason = (
                    f"queue wait {wait:.2f} ms <= {config.low_wait_ratio:g}x "
                    f"service {service:.2f} ms ({self._streak_down} ticks)"
                )
                if self._streak_down >= config.patience:
                    if live > config.min_replicas:
                        action = "down"
                    else:
                        reason += "; already at min_replicas"
            else:
                self._streak_up = 0
                self._streak_down = 0
                if not service_flat and wait >= service:
                    reason = "service time rising with wait; not a queueing problem"
        if action != "hold":
            self._streak_up = 0
            self._streak_down = 0
            self._cooldown = config.cooldown_ticks
        self._prev_service = service
        self._prev_completed = stats.completed
        return AutoscaleDecision(
            action=action,
            reason=reason,
            wait_ms=wait,
            service_ms=service,
            live_replicas=live,
        )

    # ------------------------------------------------------------------ #
    # Actuation
    # ------------------------------------------------------------------ #
    def step(self) -> AutoscaleDecision:
        """Observe the queue once and apply the decision through its hooks."""
        decision = self.observe(self.queue.stats())
        applied = False
        replica_id: Optional[int] = None
        if decision.action == "up":
            try:
                replica_id = self.queue.add_replica()
                applied = True
            except Exception as exc:
                decision = replace(
                    decision, reason=f"{decision.reason}; add failed: {exc!r}"
                )
        elif decision.action == "down":
            try:
                replica_id = self.queue.retire_one_replica()
                applied = replica_id is not None
            except Exception as exc:
                decision = replace(
                    decision, reason=f"{decision.reason}; retire failed: {exc!r}"
                )
        decision = replace(decision, applied=applied, replica_id=replica_id)
        self._episodes.append(decision)
        return decision

    def episodes(self) -> Tuple[AutoscaleDecision, ...]:
        """The most recent decisions (bounded history, oldest first)."""
        return tuple(self._episodes)

    # ------------------------------------------------------------------ #
    # Loop thread
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="serving-autoscaler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.step()
            except Exception:
                # The autoscaler must never take serving down with it; the
                # next tick observes fresh stats and tries again.
                continue
