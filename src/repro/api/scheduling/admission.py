"""Admission control: request validation, bounded backlog, deadlines.

The :class:`AdmissionController` is the front door of the scheduling
package: it decides whether a request may enter the system at all
(:meth:`~AdmissionController.admit` enforces the ``max_queue_depth``
backlog bound over *everything* submitted but unfinished — pending,
formed into batches, or in flight) and owns the deadline policy
(:meth:`~AdmissionController.split_expired` partitions a window into
still-serveable requests and ones whose queueing deadline lapsed).

Thread-safety contract: the controller holds **no lock of its own**.
Every mutating call (``admit``/``release``) happens under the owning
:class:`~repro.api.scheduling.fleet.FleetManager` condition lock, which
keeps the whole scheduler on a single lock — no lock-order cycles by
construction.  ``validate`` and ``split_expired`` are pure.

The request-level exception types and the :class:`ServingFuture` result
handle live here too: admission is where a request's contract with the
server is decided, and every other scheduling module (and the
:mod:`repro.api.server` facade) imports them from this one place.
"""

from __future__ import annotations

import threading
import time
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "ServingFuture",
    "Pending",
    "AdmissionController",
]


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the queue is at ``max_queue_depth``."""


class DeadlineExceededError(RuntimeError):
    """Raised from a request's future when its deadline passed while queued."""


class ServerClosedError(RuntimeError):
    """Raised when submitting to (or waiting on) a closed :class:`ServingQueue`."""


class ServingFuture:
    """Result handle for one submitted request.

    ``result()`` blocks until the scheduler fulfils (or fails) the request
    and either returns the hidden states ``(length, hidden)`` or raises the
    recorded error (:class:`DeadlineExceededError`, :class:`ServerClosedError`,
    or whatever the forward itself raised).  ``done_at`` records the
    monotonic completion time (set just before the future unblocks), so
    replay harnesses can attribute latency per request even when they
    collect results long after the fact.
    """

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None
        self.done_at: float | None = None

    def _fulfill(self, value: np.ndarray) -> None:
        self._value = value
        self.done_at = time.monotonic()
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.done_at = time.monotonic()
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._done.wait(timeout):
            raise TimeoutError("request not served within the wait timeout")
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value


class Pending:
    """One queued request: payload plus bookkeeping for stats/deadlines."""

    __slots__ = ("tokens", "future", "submitted_at", "deadline_at")

    def __init__(
        self, tokens: np.ndarray, future: ServingFuture,
        submitted_at: float, deadline_at: float | None,
    ) -> None:
        self.tokens = tokens
        self.future = future
        self.submitted_at = submitted_at
        self.deadline_at = deadline_at

    @property
    def cost(self) -> int:
        """Routing cost of this request: its token count."""
        return int(self.tokens.size)

    def remaining_budget_s(self, now: float) -> float | None:
        """Seconds left until the deadline (``None`` when there is none).

        Clamped at 0: an already-expired request still has a well-defined
        budget to ship (the worker will skip it on arrival).
        """
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - now)


class AdmissionController:
    """Bounded-backlog admission plus the deadline policy.

    ``backlog`` counts submitted-but-unfinished requests; ``admit`` raises
    :class:`QueueFullError` at ``max_queue_depth`` and ``release`` returns
    capacity as requests complete, expire, fail, or get dropped on close.
    Rejections are counted straight onto the shared stats board so the
    facade's ``stats()`` sees them without a second bookkeeping path.
    """

    def __init__(self, max_queue_depth: int, board) -> None:
        self.max_queue_depth = int(max_queue_depth)
        self.backlog = 0
        self._board = board

    # -- request validation (pure) ------------------------------------- #
    @staticmethod
    def validate(
        tokens: np.ndarray,
        max_sequence_length: int,
        deadline_ms: float | None,
    ) -> np.ndarray:
        """The request contract: 1-D, non-empty, integer, within the model."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 1 or tokens.size == 0:
            raise ValueError(
                f"a request must be a non-empty 1-D token id sequence, "
                f"got shape {tokens.shape}"
            )
        if not np.issubdtype(tokens.dtype, np.integer):
            raise ValueError(f"token ids must be integers, got {tokens.dtype}")
        if tokens.size > max_sequence_length:
            raise ValueError(
                f"request length {tokens.size} exceeds the model's maximum "
                f"sequence length {max_sequence_length}"
            )
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")
        return tokens

    # -- backlog accounting (call with the fleet lock held) ------------ #
    def admit(self) -> None:
        """Count one request into the backlog, or reject at the bound."""
        if self.backlog >= self.max_queue_depth:
            self._board.rejected += 1
            raise QueueFullError(
                f"queue depth {self.backlog} is at max_queue_depth="
                f"{self.max_queue_depth}; request rejected"
            )
        self.backlog += 1

    def release(self, count: int) -> None:
        """Return backlog capacity for ``count`` finished requests."""
        self.backlog -= count

    # -- deadline policy (pure) ---------------------------------------- #
    @staticmethod
    def split_expired(
        window: Sequence[Pending], now: float
    ) -> Tuple[List[Pending], List[Pending]]:
        """Partition ``window`` into ``(live, expired)`` at time ``now``."""
        live: List[Pending] = []
        expired: List[Pending] = []
        for pending in window:
            if pending.deadline_at is not None and pending.deadline_at < now:
                expired.append(pending)
            else:
                live.append(pending)
        return live, expired
