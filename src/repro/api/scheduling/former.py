"""Batch formation: the coalescing-window and length-grouping policy.

Extracted verbatim from the pre-refactor ``ServingQueue``: a window of
pending requests is grouped by *bucketed* length with the same stable
rule as :class:`~repro.api.batching.RequestBatcher` (requests of equal
bucketed length stay in arrival order) and chunked to ``max_batch_size``
rows — which is exactly what preserves the exact-length float64 parity
guarantee through queued serving.  The window timing policy lives here
too: a window closes ``max_wait_s`` after its *oldest* request, or early
once the fleet is saturated (every live replica has a full batch
waiting).

The former is pure: it never touches a lock or a clock of its own, so
routing and membership (:mod:`~repro.api.scheduling.fleet`) can call it
freely under the scheduler lock.
"""

from __future__ import annotations

from typing import Dict, List

from .admission import Pending

__all__ = ["BatchFormer"]


class BatchFormer:
    """Length-grouped batch formation over a coalescing window.

    Parameters
    ----------
    max_batch_size:
        Rows per dispatched batch.
    bucket_size:
        Length-bucket granularity (1 = exact-length batching, the parity
        configuration).
    max_sequence_length:
        Bucketed lengths are clamped to the model's maximum.
    max_wait_s:
        Coalescing window measured from the oldest pending request.
    """

    def __init__(
        self,
        max_batch_size: int,
        bucket_size: int,
        max_sequence_length: int,
        max_wait_s: float,
    ) -> None:
        self.max_batch_size = int(max_batch_size)
        self.bucket_size = int(bucket_size)
        self.max_sequence_length = int(max_sequence_length)
        self.max_wait_s = float(max_wait_s)

    def window_deadline(self, oldest_submitted_at: float) -> float:
        """When the window anchored at ``oldest_submitted_at`` closes."""
        return oldest_submitted_at + self.max_wait_s

    def saturated(self, pending_count: int, live_replicas: int) -> bool:
        """True once every live replica already has a full batch pending.

        Closing the window early at this point adds batch density no
        longer — it only adds latency.
        """
        return pending_count >= self.max_batch_size * max(1, live_replicas)

    def bucketed_length(self, length: int) -> int:
        bucketed = -(-length // self.bucket_size) * self.bucket_size
        return min(bucketed, self.max_sequence_length)

    def form(self, window: List[Pending]) -> List[List[Pending]]:
        """Group a coalescing window by bucketed length, chunk to batch size.

        The same stable grouping rule as ``RequestBatcher.plan`` — requests
        with equal bucketed length stay in arrival order — so queued serving
        inherits the exact-length parity guarantee.
        """
        groups: Dict[int, List[Pending]] = {}
        for pending in window:
            groups.setdefault(self.bucketed_length(pending.tokens.size), []).append(
                pending
            )
        batches: List[List[Pending]] = []
        for length in sorted(groups):
            group = groups[length]
            for start in range(0, len(group), self.max_batch_size):
                batches.append(group[start : start + self.max_batch_size])
        return batches
