"""The serving scheduler, decomposed into explicit seams.

The pre-refactor ``repro.api.server.ServingQueue`` interleaved admission,
batch coalescing, routing, dispatch, stats and lifecycle in one class;
this package gives each policy a seam of its own:

* :mod:`~repro.api.scheduling.admission` — request validation, the
  bounded backlog, deadlines, and the request-level exception types.
* :mod:`~repro.api.scheduling.former` — the coalescing window and
  length-grouped batch formation (extracted verbatim; it carries the
  float64 parity guarantee).
* :mod:`~repro.api.scheduling.routing` — pluggable dispatch:
  :class:`DeterministicRouter` (the reproducible round-robin every
  parity gate pins) and :class:`LeastLoadedRouter` (load-aware, with
  work stealing).
* :mod:`~repro.api.scheduling.fleet` — live membership (hot-add, drain,
  retire, dead-replica replacement) plus the scheduler and worker
  threads, all under one condition lock.
* :mod:`~repro.api.scheduling.resilience` — the pure fault-handling
  policy objects: :class:`RetryPolicy` (re-route failed batches with
  exponential backoff under a per-window budget),
  :class:`CircuitBreakerConfig` and the per-replica
  :class:`ReplicaHealth` ledger/breaker state machine the fleet drives.
* :mod:`~repro.api.scheduling.stats` — the frozen
  :class:`ServingStats`/:class:`ReplicaStats` snapshots and the mutable
  board behind them.
* :mod:`~repro.api.scheduling.autoscaler` — the stats-driven scaling
  loop over the fleet's membership hooks.

``repro.api.server.ServingQueue`` remains the facade that wires these
together; import it (and the pools) from :mod:`repro.api` as before.
"""

from .admission import (
    AdmissionController,
    DeadlineExceededError,
    Pending,
    QueueFullError,
    ServerClosedError,
    ServingFuture,
)
from .autoscaler import Autoscaler, AutoscaleDecision, AutoscalerConfig
from .fleet import FleetManager, FormedBatch, ReplicaMember
from .former import BatchFormer
from .resilience import CircuitBreakerConfig, ReplicaHealth, RetryPolicy
from .routing import (
    ROUTERS,
    DeterministicRouter,
    LeastLoadedRouter,
    Router,
    create_router,
)
from .stats import ReplicaStats, ServingStats, StatsBoard

__all__ = [
    "AdmissionController",
    "Autoscaler",
    "AutoscaleDecision",
    "AutoscalerConfig",
    "BatchFormer",
    "CircuitBreakerConfig",
    "DeadlineExceededError",
    "DeterministicRouter",
    "FleetManager",
    "FormedBatch",
    "LeastLoadedRouter",
    "Pending",
    "QueueFullError",
    "ReplicaHealth",
    "ReplicaMember",
    "ReplicaStats",
    "RetryPolicy",
    "ROUTERS",
    "Router",
    "ServerClosedError",
    "ServingFuture",
    "ServingStats",
    "StatsBoard",
    "create_router",
]
