"""Routing policies: which replica serves a formed batch.

A :class:`Router` maps a formed batch to one live
:class:`~repro.api.scheduling.fleet.ReplicaMember`.  Two policies ship:

* :class:`DeterministicRouter` — strict round-robin over the live members
  in replica-id order, no work stealing.  This is the pre-refactor
  ``j % N`` dispatch: batch assignment depends only on submission order
  and membership, never on thread timing, so runs are reproducible
  batch-for-batch and every float64 parity gate pins this router.
* :class:`LeastLoadedRouter` — dispatch to the member with the smallest
  outstanding cost (queued + in-flight token count), with idle workers
  stealing queued batches from backlogged peers.  Better tail latency
  under skewed or bursty traffic, but *which replica serves a batch* now
  depends on timing — results stay bitwise-identical on the float
  engines (every replica serves the same frozen model), while the int8
  engine's per-batch activation scales make batch placement observable.

``select`` is only ever called under the fleet scheduler lock, so
routers may keep unsynchronized state (the round-robin counter).  The
candidate list the fleet hands a router already excludes members whose
circuit breaker is open (see
:mod:`repro.api.scheduling.resilience`) — routing policy never has to
reason about replica health itself.
"""

from __future__ import annotations

from typing import Dict, List, Type

__all__ = [
    "Router",
    "DeterministicRouter",
    "LeastLoadedRouter",
    "ROUTERS",
    "create_router",
]


class Router:
    """Routing-policy protocol (see the module docstring for the contract)."""

    #: Registry key and the name reported by ``ServingStats.router``.
    name: str = "abstract"
    #: Whether idle workers may steal queued batches from loaded peers.
    steal_when_idle: bool = False

    def select(self, members: List, batch) -> object:
        """Pick the member that should serve ``batch``.

        ``members`` is the non-empty list of routable (live, non-draining)
        members sorted by replica id; ``batch`` is the formed
        :class:`~repro.api.scheduling.fleet.FormedBatch`.  Called with the
        fleet lock held.
        """
        raise NotImplementedError


class DeterministicRouter(Router):
    """Round-robin in replica-id order — the reproducible default."""

    name = "deterministic"
    steal_when_idle = False

    def __init__(self) -> None:
        self._counter = 0

    def select(self, members: List, batch) -> object:
        member = members[self._counter % len(members)]
        self._counter += 1
        return member


class LeastLoadedRouter(Router):
    """Smallest outstanding (queued + in-flight) token cost wins.

    Ties break toward fewer queued batches, then the lowest replica id.
    Idle workers additionally steal queued batches from the most loaded
    peer (``steal_when_idle``), so one slow replica cannot strand work
    behind itself.
    """

    name = "least_loaded"
    steal_when_idle = True

    def select(self, members: List, batch) -> object:
        return min(
            members, key=lambda m: (m.load, len(m.batches), m.replica_id)
        )


ROUTERS: Dict[str, Type[Router]] = {
    DeterministicRouter.name: DeterministicRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
}


def create_router(router: str | Router) -> Router:
    """Resolve a router spec: an instance passes through, a name constructs.

    Each queue gets its *own* router instance (routers carry per-queue
    state such as the round-robin counter).
    """
    if isinstance(router, Router):
        return router
    try:
        return ROUTERS[router]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown router {router!r}; available routers: "
            f"{', '.join(sorted(ROUTERS))} (or pass a Router instance)"
        ) from None
