"""Retry, backoff and circuit-breaking policy for the serving fleet.

PR 9's fleet already *detects* replica failure (worker death poisons the
client, timeouts terminate the worker, dead members are retired and
optionally replaced) — but a batch caught in the blast radius still fails
every future it carries, and a flaky-but-alive replica keeps receiving
traffic until it dies outright.  This module holds the pure policy objects
the fleet uses to do better; the *mechanics* (where retries sleep, how
batches re-route, when probes dispatch) live in
:mod:`repro.api.scheduling.fleet`.

Retry-idempotency contract: inference here is **pure** — a forward has no
side effects and a request's result is fully determined by its tokens and
the frozen engine — so re-executing a batch on another replica is always
safe, and under float64 the retried result is bitwise-identical to what the
first replica would have produced.  That is what licenses retrying at all.

Everything in this module is either immutable configuration
(:class:`RetryPolicy`, :class:`CircuitBreakerConfig`) or state mutated only
under the fleet's single condition lock (:class:`ReplicaHealth`); nothing
here blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..transport import TransportError

__all__ = [
    "RetryPolicy",
    "CircuitBreakerConfig",
    "ReplicaHealth",
]

#: Exception class names treated as replica-level (hence retryable) faults
#: even though their types live in modules this package must not import
#: (``sharding`` imports ``server`` imports ``scheduling`` — a direct
#: import of ``WorkerDiedError`` would be a cycle).
_RETRYABLE_NAMES = frozenset({"WorkerDiedError"})

#: Service-latency EWMA weight used when health tracking runs without a
#: breaker config.
_DEFAULT_EWMA_ALPHA = 0.2


@dataclass(frozen=True)
class RetryPolicy:
    """How the fleet re-routes batches hit by replica-level failures.

    ``max_attempts`` bounds the *total* dispatches of one batch (first try
    included).  Between attempts the serving thread sleeps an exponential
    backoff with multiplicative jitter — strictly outside the fleet lock —
    so a struggling fleet is not hammered in lockstep.  ``retry_budget``
    caps the total retried *requests* per stats window (reset by
    ``reset_stats``): once a failure storm exhausts it, further failures
    fail fast instead of melting the fleet with re-execution load.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.02
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    jitter_frac: float = 0.1
    retry_budget: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0.0 or self.backoff_max_s < 0.0:
            raise ValueError(
                f"backoff bounds must be >= 0, got base="
                f"{self.backoff_base_s}, max={self.backoff_max_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError(
                f"jitter_frac must be in [0, 1], got {self.jitter_frac}"
            )
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )

    def retryable(self, exc: BaseException) -> bool:
        """Whether a batch failure may be re-routed instead of failed.

        Retryable failures indict the *replica or its channel*, not the
        request: worker death, request timeouts, transport faults
        (including ring integrity failures) and broken connections.
        Anything else — e.g. an exception raised by the forward itself —
        would fail identically on every replica, so it fails fast.
        """
        if isinstance(
            exc, (TimeoutError, TransportError, ConnectionError, EOFError)
        ):
            return True
        return any(
            klass.__name__ in _RETRYABLE_NAMES for klass in type(exc).__mro__
        )

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Sleep before retry ``attempt`` (1-based): exponential + jitter."""
        base = self.backoff_base_s * (self.backoff_factor ** max(0, attempt - 1))
        base = min(base, self.backoff_max_s)
        if self.jitter_frac and base > 0.0:
            base *= 1.0 + self.jitter_frac * float(rng.uniform(-1.0, 1.0))
        return base


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """When a flaky replica is drained of traffic and how it wins it back.

    ``failure_threshold`` consecutive batch failures open the breaker: the
    replica stops receiving new work (it stays registered, keeps its
    thread, and still finishes anything already queued).  After
    ``cooldown_s`` the breaker half-opens and admits a single probe batch
    once the replica is idle; a successful probe closes the breaker, a
    failed one re-opens it for another cooldown.  ``ewma_alpha`` weights
    the per-replica service-latency EWMA surfaced in the health stats.
    """

    failure_threshold: int = 3
    cooldown_s: float = 1.0
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0.0:
            raise ValueError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )


class ReplicaHealth:
    """Per-replica health ledger plus the circuit-breaker state machine.

    Owned by a fleet member and mutated only under the fleet's condition
    lock (it deliberately has no lock of its own, like the stats board).
    States: ``closed`` (normal) -> ``open`` (``failure_threshold``
    consecutive failures; no new traffic) -> ``half_open`` (cooldown
    elapsed; admits one probe batch while idle) -> ``closed`` on probe
    success, or back to ``open`` on probe failure.  With ``config=None``
    the breaker never trips but the health counters and latency EWMA are
    still maintained for the stats surface.
    """

    __slots__ = (
        "config",
        "errors",
        "timeouts",
        "consecutive_failures",
        "service_ewma_ms",
        "state",
        "opened_at",
    )

    def __init__(self, config: Optional[CircuitBreakerConfig] = None) -> None:
        self.config = config
        self.errors = 0
        self.timeouts = 0
        self.consecutive_failures = 0
        self.service_ewma_ms = 0.0
        self.state = "closed"
        self.opened_at = 0.0

    def record_success(self, service_ms: float) -> bool:
        """Fold one served batch in; True when it closed an open breaker."""
        self.consecutive_failures = 0
        alpha = (
            self.config.ewma_alpha
            if self.config is not None
            else _DEFAULT_EWMA_ALPHA
        )
        if self.service_ewma_ms == 0.0:
            self.service_ewma_ms = service_ms
        else:
            self.service_ewma_ms += alpha * (service_ms - self.service_ewma_ms)
        if self.state != "closed":
            self.state = "closed"
            return True
        return False

    def record_failure(self, now: float, timeout: bool) -> bool:
        """Fold one failed batch in; True when it opened the breaker."""
        self.errors += 1
        if timeout:
            self.timeouts += 1
        self.consecutive_failures += 1
        if self.config is None:
            return False
        if self.state == "half_open" or (
            self.state == "closed"
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.state = "open"
            self.opened_at = now
            return True
        return False

    def admits(self, now: float, idle: bool) -> bool:
        """Whether the breaker lets new work route to this replica.

        Lazily transitions ``open`` -> ``half_open`` once the cooldown has
        elapsed (breaker reopening is time-driven; there is no event to
        react to).  In ``half_open`` only an *idle* replica admits, so
        exactly one probe batch is outstanding at a time.
        """
        if self.config is None or self.state == "closed":
            return True
        if self.state == "open":
            if now - self.opened_at < self.config.cooldown_s:
                return False
            self.state = "half_open"
        return idle

    def reopen_eta_s(self, now: float) -> Optional[float]:
        """Seconds until an ``open`` breaker may half-open; else ``None``."""
        if self.config is None or self.state != "open":
            return None
        return max(0.0, self.config.cooldown_s - (now - self.opened_at))
