"""Serving statistics: the immutable snapshots and the mutable board.

:class:`ServingStats` (and the per-replica :class:`ReplicaStats` rows it
now carries) is the public, frozen snapshot ``ServingQueue.stats()``
returns.  :class:`StatsBoard` is the mutable ledger behind it — plain
counters and bounded latency deques, mutated **only under the fleet
condition lock** (it deliberately has no lock of its own; see
:mod:`repro.api.scheduling.fleet` for the locking story).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Sequence, Tuple

import numpy as np

from .admission import Pending

__all__ = ["ReplicaStats", "ServingStats", "StatsBoard"]


@dataclass(frozen=True)
class ReplicaStats:
    """Scheduling state of one fleet member at snapshot time.

    ``queued_cost``/``in_flight_cost`` are token counts — the routing cost
    the :class:`~repro.api.scheduling.routing.LeastLoadedRouter` minimizes
    — so router decisions and autoscaler pressure are observable from the
    outside.  ``draining`` members finish their queue but receive no new
    work; a member that is neither ``live`` nor draining has exited (its
    worker returned, e.g. after the replica died).

    The health fields mirror the member's
    :class:`~repro.api.scheduling.resilience.ReplicaHealth` ledger:
    cumulative batch ``errors`` (of which ``timeouts``), the
    service-latency EWMA, and the circuit ``breaker_state``
    (``closed``/``open``/``half_open``; always ``closed`` when no breaker
    is configured).
    """

    replica_id: int
    queued_batches: int
    queued_requests: int
    queued_cost: int
    in_flight_requests: int
    in_flight_cost: int
    batches_served: int
    completed: int
    failed: int
    stolen: int
    draining: bool
    live: bool
    errors: int = 0
    timeouts: int = 0
    service_ewma_ms: float = 0.0
    breaker_state: str = "closed"

    @property
    def routable(self) -> bool:
        """Whether the scheduler may still route new work to this member."""
        return self.live and not self.draining


@dataclass(frozen=True)
class ServingStats:
    """Aggregate queue statistics since construction (or the last reset).

    Latency is submit-to-fulfilment wall time per completed request, split
    into its two phases: **queue wait** (submit until a worker picked the
    request's batch up for dispatch) and **service** (dispatch until the
    result was ready — the replica forward plus, for sharded pools, the
    request/response transport).  ``*_latency_ms`` digests the total;
    ``*_queue_wait_ms`` / ``*_service_ms`` digest the phases, so scheduling
    pressure and per-call serving cost (e.g. IPC overhead) are visible
    separately per measurement window.  ``throughput_rps`` divides
    completions by the span between the first submit and the last
    fulfilment.  ``mean_batch_size`` measures how much cross-caller
    coalescing actually happened (1.0 = no coalescing).  ``queue_depth``
    (and its high-water mark) counts the whole backlog — pending, formed
    into batches, and in flight — the same quantity ``max_queue_depth``
    admission control bounds.

    ``router`` names the active routing policy, ``replicas`` carries one
    :class:`ReplicaStats` row per current fleet member, and
    ``replicas_added``/``replicas_retired`` count live membership changes
    (hot-adds and drain/retire/death removals) in the window.

    The resilience counters cover the retry/breaker/integrity machinery:
    ``retry_attempts`` re-dispatches of failed batches (``retried_requests``
    requests total, bounded by the policy's retry budget per window),
    ``breaker_opens``/``breaker_closes`` circuit-breaker transitions,
    ``integrity_failures`` ring frames rejected by their checksum, and
    ``expired_in_flight`` requests whose deadline lapsed after dispatch
    (workers skip them; they are also counted in ``expired``).
    """

    submitted: int
    completed: int
    rejected: int
    expired: int
    failed: int
    queue_depth: int
    max_queue_depth_seen: int
    batches: int
    mean_batch_size: float
    p50_latency_ms: float
    p99_latency_ms: float
    mean_latency_ms: float
    p50_queue_wait_ms: float
    p99_queue_wait_ms: float
    mean_queue_wait_ms: float
    p50_service_ms: float
    p99_service_ms: float
    mean_service_ms: float
    throughput_rps: float
    router: str = "deterministic"
    replicas_added: int = 0
    replicas_retired: int = 0
    retry_attempts: int = 0
    retried_requests: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    integrity_failures: int = 0
    expired_in_flight: int = 0
    replicas: Tuple[ReplicaStats, ...] = ()

    @property
    def live_replicas(self) -> int:
        """Members the scheduler can still route new work to."""
        return sum(1 for replica in self.replicas if replica.routable)


class StatsBoard:
    """Mutable counters and latency digests behind :class:`ServingStats`.

    Every mutation happens under the owning fleet's condition lock; the
    board itself is lock-free on purpose (one scheduler, one lock).
    Latency deques are bounded to keep long-lived servers' memory flat.
    """

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.expired = 0
        self.failed = 0
        self.batches = 0
        self.batched_rows = 0
        self.replicas_added = 0
        self.replicas_retired = 0
        self.retry_attempts = 0
        self.retried_requests = 0
        self.breaker_opens = 0
        self.breaker_closes = 0
        self.integrity_failures = 0
        self.expired_in_flight = 0
        self.max_depth_seen = 0
        self.latencies_ms: Deque[float] = deque(maxlen=8192)
        self.queue_waits_ms: Deque[float] = deque(maxlen=8192)
        self.services_ms: Deque[float] = deque(maxlen=8192)
        self.first_submit_at: float | None = None
        self.last_done_at: float | None = None

    def note_submitted(self, now: float, backlog: int) -> None:
        self.submitted += 1
        if self.first_submit_at is None:
            self.first_submit_at = now
        self.max_depth_seen = max(self.max_depth_seen, backlog)

    def record_batch(
        self, batch: Sequence[Pending], dispatched_at: float, done_at: float
    ) -> None:
        """Account one successfully served batch (its latency partition)."""
        self.batches += 1
        self.batched_rows += len(batch)
        self.completed += len(batch)
        self.last_done_at = done_at
        for pending in batch:
            self.latencies_ms.append(1000.0 * (done_at - pending.submitted_at))
            self.queue_waits_ms.append(
                1000.0 * (dispatched_at - pending.submitted_at)
            )
            self.services_ms.append(1000.0 * (done_at - dispatched_at))

    def reset(self, backlog: int, now: float) -> None:
        """Zero the window (see ``ServingQueue.reset_stats`` for semantics)."""
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.expired = 0
        self.failed = 0
        self.batches = 0
        self.batched_rows = 0
        self.replicas_added = 0
        self.replicas_retired = 0
        self.retry_attempts = 0
        self.retried_requests = 0
        self.breaker_opens = 0
        self.breaker_closes = 0
        self.integrity_failures = 0
        self.expired_in_flight = 0
        self.latencies_ms.clear()
        self.queue_waits_ms.clear()
        self.services_ms.clear()
        # Anchor the span at the reset when requests are still in the
        # system — their completions land in this window and must not
        # report as zero throughput.
        self.first_submit_at = now if backlog else None
        self.last_done_at = None
        self.max_depth_seen = backlog

    @staticmethod
    def _digest(values_ms: Deque[float]) -> Tuple[float, float, float]:
        """``(p50, p99, mean)`` of a bounded latency deque (0s when empty)."""
        if not values_ms:
            return 0.0, 0.0, 0.0
        values = np.asarray(values_ms, dtype=np.float64)
        return (
            float(np.percentile(values, 50)),
            float(np.percentile(values, 99)),
            float(np.mean(values)),
        )

    def snapshot(
        self,
        backlog: int,
        router: str,
        replicas: Tuple[ReplicaStats, ...],
    ) -> ServingStats:
        p50, p99, mean = self._digest(self.latencies_ms)
        wait_p50, wait_p99, wait_mean = self._digest(self.queue_waits_ms)
        service_p50, service_p99, service_mean = self._digest(self.services_ms)
        span = None
        if self.first_submit_at is not None and self.last_done_at is not None:
            span = self.last_done_at - self.first_submit_at
        return ServingStats(
            submitted=self.submitted,
            completed=self.completed,
            rejected=self.rejected,
            expired=self.expired,
            failed=self.failed,
            queue_depth=backlog,
            max_queue_depth_seen=self.max_depth_seen,
            batches=self.batches,
            mean_batch_size=(
                self.batched_rows / self.batches if self.batches else 0.0
            ),
            p50_latency_ms=p50,
            p99_latency_ms=p99,
            mean_latency_ms=mean,
            p50_queue_wait_ms=wait_p50,
            p99_queue_wait_ms=wait_p99,
            mean_queue_wait_ms=wait_mean,
            p50_service_ms=service_p50,
            p99_service_ms=service_p99,
            mean_service_ms=service_mean,
            throughput_rps=(
                self.completed / span if span and span > 0 else 0.0
            ),
            router=router,
            replicas_added=self.replicas_added,
            replicas_retired=self.replicas_retired,
            retry_attempts=self.retry_attempts,
            retried_requests=self.retried_requests,
            breaker_opens=self.breaker_opens,
            breaker_closes=self.breaker_closes,
            integrity_failures=self.integrity_failures,
            expired_in_flight=self.expired_in_flight,
            replicas=replicas,
        )
