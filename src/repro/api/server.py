"""Concurrent serving: replica pools and a batch-coalescing scheduler.

The ROADMAP's open perf item says the FP32 engine is matmul-bound — the next
win is *batched multi-sequence scheduling*, not more LUT fusion.  This module
supplies it, one layer above :class:`~repro.api.session.InferenceSession`
(the seam PR 2 left for exactly this):

* :class:`SessionPool` — N replica sessions over **one** shared frozen
  encoder.  ``InferenceSession`` construction makes every subsequent forward
  read-only (weights prepared eagerly; the pool warms the remaining lazy
  per-dtype caches), so replicas can serve simultaneously from threads.
  numpy's BLAS releases the GIL, which is where the thread parallelism comes
  from on multi-core machines; on a single core the win is batch density.
* :class:`ServingQueue` — a scheduler thread that accepts requests from many
  client threads, coalesces them *across callers* for up to ``max_wait_ms``
  (or until every replica has a full batch), forms exact-length /
  length-bucketed batches of at most ``max_batch_size`` rows, and dispatches
  them to the pool's replica workers.  Per-request deadlines and a bounded
  queue give overload behaviour a server can rely on; :meth:`ServingQueue.stats`
  reports p50/p99 latency — split into queue-wait vs service (dispatch to
  result) time, so scheduling pressure and per-call cost such as sharded
  IPC overhead read separately — plus throughput and queue/batch shape.

Determinism and parity: every replica serves the *same* frozen model object
through an identically-built backend, and with exact-length bucketing
(``bucket_size=1``) a micro-batched forward reproduces the per-call forward
bit for bit on the float engines (the PR-2 guarantee).  Which replica serves a
request therefore cannot change its result — pooled/queued serving is
bitwise-equal to single-session serving under ``compute_dtype="float64"`` on
the ``fp32``/``fp16`` matmul engines.  :meth:`SessionPool.forward` goes
further and makes the *dispatch itself* deterministic (micro-batch ``j`` goes
to replica ``j % num_replicas``), so runs are reproducible batch-for-batch.
The ``int8`` engine keeps its documented caveat: one activation scale per
packed tensor means batch composition legitimately affects its numerics.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence

import numpy as np

from ..core.registry import LutRegistry
from ..transformer.models import EncoderModel
from .session import InferenceSession, SessionConfig, adopted_model_config
from .spec import BackendSpec

__all__ = [
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "ServingFuture",
    "ServingStats",
    "ReplicaPool",
    "SessionPool",
    "ServingQueue",
]


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the queue is at ``max_queue_depth``."""


class DeadlineExceededError(RuntimeError):
    """Raised from a request's future when its deadline passed while queued."""


class ServerClosedError(RuntimeError):
    """Raised when submitting to (or waiting on) a closed :class:`ServingQueue`."""


class ServingFuture:
    """Result handle for one submitted request.

    ``result()`` blocks until the scheduler fulfils (or fails) the request
    and either returns the hidden states ``(length, hidden)`` or raises the
    recorded error (:class:`DeadlineExceededError`, :class:`ServerClosedError`,
    or whatever the forward itself raised).
    """

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None

    def _fulfill(self, value: np.ndarray) -> None:
        self._value = value
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._done.wait(timeout):
            raise TimeoutError("request not served within the wait timeout")
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value


@dataclass(frozen=True)
class ServingStats:
    """Aggregate queue statistics since construction (or the last reset).

    Latency is submit-to-fulfilment wall time per completed request, split
    into its two phases: **queue wait** (submit until a worker picked the
    request's batch up for dispatch) and **service** (dispatch until the
    result was ready — the replica forward plus, for sharded pools, the
    request/response transport).  ``*_latency_ms`` digests the total;
    ``*_queue_wait_ms`` / ``*_service_ms`` digest the phases, so scheduling
    pressure and per-call serving cost (e.g. IPC overhead) are visible
    separately per measurement window.  ``throughput_rps`` divides
    completions by the span between the first submit and the last
    fulfilment.  ``mean_batch_size`` measures how much cross-caller
    coalescing actually happened (1.0 = no coalescing).  ``queue_depth``
    (and its high-water mark) counts the whole backlog — pending, formed
    into batches, and in flight — the same quantity ``max_queue_depth``
    admission control bounds.
    """

    submitted: int
    completed: int
    rejected: int
    expired: int
    failed: int
    queue_depth: int
    max_queue_depth_seen: int
    batches: int
    mean_batch_size: float
    p50_latency_ms: float
    p99_latency_ms: float
    mean_latency_ms: float
    p50_queue_wait_ms: float
    p99_queue_wait_ms: float
    mean_queue_wait_ms: float
    p50_service_ms: float
    p99_service_ms: float
    mean_service_ms: float
    throughput_rps: float


class ReplicaPool:
    """The pool protocol: deterministic replica serving over N handles.

    This is the seam :class:`ServingQueue` (and any direct caller) programs
    against.  A concrete pool provides

    * ``sessions`` — one serving handle per replica, each exposing
      ``forward(requests) -> list`` and ``pooled(requests)``.  For
      :class:`SessionPool` these are in-process
      :class:`~repro.api.session.InferenceSession`\\ s; for
      :class:`~repro.api.sharding.ShardedPool` they are proxies to worker
      *processes*.
    * ``_template`` — a local :class:`InferenceSession` describing the pool
      (its pure ``RequestBatcher.plan`` drives the deterministic sharding;
      its model supplies shapes/dtypes).
    * ``config`` / ``spec`` — the serializable session/backend description.

    ``forward``/``pooled``/``classify`` shard micro-batches deterministically
    (batch ``j`` -> replica ``j % N``) and are implemented once here, so every
    pool — threaded or multi-process — serves identically.
    """

    #: Replica serving handles (``forward``/``pooled`` duck type).
    sessions: List
    #: Local session describing the pool (planner + model metadata).
    _template: InferenceSession
    config: SessionConfig
    spec: BackendSpec

    @property
    def num_replicas(self) -> int:
        return len(self.sessions)

    @property
    def template(self) -> InferenceSession:
        """The local session describing this pool.

        Its (pure) batcher drives the deterministic sharding, its model
        supplies shapes/dtypes, and its backend is the per-call oracle the
        parity gates/benchmarks compare pooled serving against.
        """
        return self._template

    @property
    def model(self) -> EncoderModel:
        return self._template.model

    @property
    def max_sequence_length(self) -> int:
        return self._template.max_sequence_length

    # ------------------------------------------------------------------ #
    # Deterministic sharded serving
    # ------------------------------------------------------------------ #
    def _shard(
        self, requests: Sequence[np.ndarray]
    ) -> List[List[Sequence[int]]]:
        """Micro-batch index groups per replica: batch ``j`` -> replica ``j % N``.

        The layout comes from the template batcher's (pure) ``plan``, so the
        assignment depends only on the request list — never on thread timing.
        """
        sessions = self.sessions
        plan = self._template._batcher.plan(
            [np.asarray(r).size for r in requests], self.max_sequence_length
        )
        shards: List[List[Sequence[int]]] = [[] for _ in sessions]
        for j, (_, indices) in enumerate(plan):
            shards[j % len(sessions)].append(indices)
        return shards

    def _serve_sharded(self, requests: Sequence[np.ndarray], serve) -> List:
        """Run ``serve(session, sub_requests) -> list`` per shard, threaded.

        Results come back in request order regardless of sharding.
        """
        requests = [np.asarray(r) for r in requests]
        outputs: List = [None] * len(requests)
        shards = self._shard(requests)
        errors: List[BaseException] = []

        def run(replica: int) -> None:
            session = self.sessions[replica]
            try:
                for indices in shards[replica]:
                    results = serve(session, [requests[i] for i in indices])
                    for index, result in zip(indices, results):
                        outputs[index] = result
            except BaseException as exc:  # surface worker failures to caller
                errors.append(exc)

        live = [replica for replica in range(len(shards)) if shards[replica]]
        if len(live) <= 1:
            for replica in live:
                run(replica)
        else:
            threads = [
                threading.Thread(target=run, args=(replica,), daemon=True)
                for replica in live
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        return outputs

    def forward(self, requests: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Hidden states per request, served across the replicas.

        Bitwise-equal to :meth:`InferenceSession.forward` on the float
        engines with exact-length bucketing (see the module docstring).
        """
        return self._serve_sharded(
            requests, lambda session, sub: session.forward(sub)
        )

    def pooled(self, requests: Sequence[np.ndarray]) -> np.ndarray:
        """First-token (``[CLS]``) representations, shape ``(n, hidden)``."""
        rows = self._serve_sharded(
            requests, lambda session, sub: list(session.pooled(sub))
        )
        if not rows:
            hidden_size = self.model.config.hidden_size
            return np.empty(
                (0, hidden_size), dtype=np.dtype(self.model.config.compute_dtype)
            )
        return np.stack(rows, axis=0)

    def classify(self, requests: Sequence[np.ndarray], head) -> np.ndarray:
        """Predicted labels through a fitted classification head.

        Same head contract as :meth:`InferenceSession.classify`, with the
        pooling served across the replicas.
        """
        from .session import _resolve_classification_head

        return _resolve_classification_head(head).predict(self.pooled(requests))


class SessionPool(ReplicaPool):
    """N replica :class:`InferenceSession`\\ s over one shared frozen encoder.

    The pool builds (or adopts) the model once; every replica session adopts
    the same :class:`~repro.transformer.models.EncoderModel` instance, so the
    weight memory and the one-time preparation cost are paid once regardless
    of ``num_replicas``.  Each replica owns its *mutable* serving state — the
    batcher's packing buffers and the backend (with its recorder) — which is
    what makes replicas safe to run from concurrent threads.

    Construction ends with one tiny warm-up forward per replica: that fills
    every lazy per-dtype cache on the shared tables/parameters
    (``LookupTable`` parameter casts, norm-parameter casts), so concurrent
    traffic never races on a cache fill.

    Parameters mirror :class:`InferenceSession`; ``model=`` adopts an
    existing encoder exactly like the session constructor does.
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        spec: BackendSpec | None = None,
        registry: LutRegistry | None = None,
        num_replicas: int = 2,
        model: EncoderModel | None = None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        primary = InferenceSession(
            config=config, spec=spec, registry=registry, model=model
        )
        self._template = primary
        self.sessions: List[InferenceSession] = [primary]
        for _ in range(num_replicas - 1):
            replica = InferenceSession.from_model(
                primary.model,
                spec=primary.spec,
                registry=primary.registry,
                max_batch_size=primary.config.max_batch_size,
                bucket_size=primary.config.bucket_size,
            )
            if primary.lut_overrides:
                replica.apply_lut_overrides(primary.lut_overrides)
            self.sessions.append(replica)
        self.config = primary.config
        self.spec = primary.spec
        warmup = [np.zeros(1, dtype=np.int64)]
        for session in self.sessions:
            session.forward(warmup)

    @classmethod
    def from_model(
        cls,
        model: EncoderModel,
        spec: BackendSpec | None = None,
        registry: LutRegistry | None = None,
        num_replicas: int = 2,
        max_batch_size: int = 32,
        bucket_size: int = 1,
    ) -> "SessionPool":
        """Pool over an already-built encoder (its engine settings win)."""
        config = adopted_model_config(
            model, max_batch_size=max_batch_size, bucket_size=bucket_size
        )
        return cls(config=config, spec=spec, registry=registry,
                   num_replicas=num_replicas, model=model)

    def calibrate(
        self, samples: Sequence[np.ndarray], config=None, operators=None
    ) -> Dict[str, object]:
        """Dataset-free calibration for the whole pool.

        Runs :meth:`InferenceSession.calibrate` on the primary replica and
        installs the calibrated tables into every other replica, so the pool
        keeps serving one consistent backend.
        """
        calibrated = self.sessions[0].calibrate(
            samples, config=config, operators=operators
        )
        for session in self.sessions[1:]:
            session.apply_lut_overrides(calibrated)
        return calibrated


def _per_future_error(exc: BaseException) -> BaseException:
    """A private copy of a batch failure for one future.

    Every future in a failed batch re-raises "the" error, but ``raise``
    mutates the raised instance's ``__traceback__`` — handing the *same*
    instance to N futures makes concurrent ``result()`` calls race on that
    shared mutable state (and chains unrelated client-side tracebacks into
    each other).  Each future therefore gets its own copy, with the original
    attached as ``__cause__`` so nothing about the failure is lost.

    This helper must *never* raise: it runs inside ``_worker_loop``'s error
    path, and an escaping exception there kills the worker thread with the
    batch's futures still unresolved — every client in the batch then hangs
    until its own timeout, and the original error is silently eaten.  Exotic
    exception classes can break both fallbacks in ways ``except Exception``
    does not cover (a constructor or ``__reduce_ex__`` raising a
    ``BaseException``, or a constructor returning a non-exception via
    ``__new__``), so each stage catches ``BaseException`` and validates its
    result; the last resort is a plain ``RuntimeError`` that still chains the
    original as ``__cause__`` — degraded, never silent.
    """
    clone: BaseException | None = None
    try:
        candidate = type(exc)(*exc.args)
        if isinstance(candidate, BaseException):
            clone = candidate
    except BaseException:
        clone = None
    if clone is None:
        try:
            candidate = copy.copy(exc)
            if isinstance(candidate, BaseException):
                clone = candidate
        except BaseException:
            clone = None
    if clone is None:
        clone = RuntimeError(f"batch forward failed: {exc!r}")
    clone.__traceback__ = None
    clone.__cause__ = exc
    return clone


class _Pending:
    """One queued request: payload plus bookkeeping for stats/deadlines."""

    __slots__ = ("tokens", "future", "submitted_at", "deadline_at")

    def __init__(
        self, tokens: np.ndarray, future: ServingFuture,
        submitted_at: float, deadline_at: float | None,
    ) -> None:
        self.tokens = tokens
        self.future = future
        self.submitted_at = submitted_at
        self.deadline_at = deadline_at


class ServingQueue:
    """Batch-coalescing scheduler over a :class:`SessionPool`.

    Client threads call :meth:`submit` (non-blocking, returns a
    :class:`ServingFuture`) or :meth:`serve_one` (blocking convenience).  A
    scheduler thread coalesces everything submitted within ``max_wait_ms`` of
    the oldest pending request — or sooner, once every replica has a full
    batch — groups the window by (bucketed) length exactly like
    :class:`~repro.api.batching.RequestBatcher`, and hands the formed batches
    to per-replica worker threads.

    Overload behaviour: :meth:`submit` raises :class:`QueueFullError` once
    ``max_queue_depth`` requests are in the system — pending, formed into
    batches, or in flight (admission control over the whole backlog, so the
    queue never grows unboundedly even when the scheduler keeps draining the
    pending deque into formed batches faster than workers serve them).  A
    request whose ``deadline_ms`` elapses before its forward *starts* fails
    with :class:`DeadlineExceededError` instead of wasting a forward on it —
    checked both when its coalescing window closes and again when a worker
    picks its batch up.

    Parameters
    ----------
    pool:
        Any :class:`ReplicaPool` — a threaded :class:`SessionPool`, a
        multi-process :class:`~repro.api.sharding.ShardedPool` — or a single
        :class:`InferenceSession` (served as a pool of one).
    max_wait_ms:
        Coalescing window measured from the oldest pending request.  Larger
        values trade tail latency for denser batches.
    max_batch_size:
        Rows per dispatched batch; defaults to the pool's session setting.
    max_queue_depth:
        Backlog bound (pending + formed + in-flight requests) above which
        :meth:`submit` rejects.
    start:
        Start the scheduler/worker threads immediately (default).  Tests and
        warm-up flows can pass ``False`` and call :meth:`start` later.
    """

    def __init__(
        self,
        pool: ReplicaPool | InferenceSession,
        max_wait_ms: float = 2.0,
        max_batch_size: int | None = None,
        max_queue_depth: int = 1024,
        start: bool = True,
    ) -> None:
        if isinstance(pool, InferenceSession):
            source = pool
            pool = SessionPool.from_model(
                source.model, spec=source.spec, registry=source.registry,
                num_replicas=1,
                max_batch_size=source.config.max_batch_size,
                bucket_size=source.config.bucket_size,
            )
            if source.lut_overrides:
                # A calibrated session must keep serving its calibrated
                # tables through the queue, not a freshly-built backend.
                for session in pool.sessions:
                    session.apply_lut_overrides(source.lut_overrides)
        if not isinstance(pool, ReplicaPool):
            raise TypeError(
                f"pool must be a SessionPool, a ShardedPool (any ReplicaPool) "
                f"or an InferenceSession, got {type(pool).__name__}"
            )
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.pool = pool
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_batch_size = int(
            pool.config.max_batch_size if max_batch_size is None else max_batch_size
        )
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        self.max_queue_depth = int(max_queue_depth)

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._pending: Deque[_Pending] = deque()
        self._batch_queue: Deque[List[_Pending]] = deque()
        self._closed = False
        self._started = False
        self._inflight_batches = 0
        #: Submitted-but-unfinished requests: pending + formed + in flight.
        self._backlog = 0
        #: Requests close() failed with ServerClosedError instead of serving;
        #: drain() consults this to distinguish "served" from "discarded".
        self._dropped_on_close = 0

        # Stats (guarded by _lock; latencies bounded to keep memory flat).
        self._submitted = 0
        self._completed = 0
        self._rejected = 0
        self._expired = 0
        self._failed = 0
        self._max_depth_seen = 0
        self._batches = 0
        self._batched_rows = 0
        self._latencies_ms: Deque[float] = deque(maxlen=8192)
        self._queue_waits_ms: Deque[float] = deque(maxlen=8192)
        self._services_ms: Deque[float] = deque(maxlen=8192)
        self._first_submit_at: float | None = None
        self._last_done_at: float | None = None

        self._scheduler: threading.Thread | None = None
        self._workers: List[threading.Thread] = []
        self._live_workers = 0
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingQueue":
        """Start the scheduler and one worker thread per replica (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServerClosedError("cannot start a closed ServingQueue")
            if self._started:
                return self
            self._started = True
            # _worker_loop decrements this under the same lock as it exits;
            # publishing it unguarded would race a worker that dies instantly.
            self._live_workers = self.pool.num_replicas
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="serving-scheduler", daemon=True
        )
        self._scheduler.start()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, args=(replica,),
                name=f"serving-worker-{replica}", daemon=True,
            )
            for replica in range(self.pool.num_replicas)
        ]
        for worker in self._workers:
            worker.start()
        return self

    def _shut_down(self, reason: str) -> None:
        """Mark the queue closed and fail the dropped backlog (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dropped = list(self._pending)
            self._pending.clear()
            for batch in self._batch_queue:
                dropped.extend(batch)
            self._batch_queue.clear()
            self._backlog -= len(dropped)
            self._dropped_on_close += len(dropped)
            self._work.notify_all()
        for pending in dropped:
            pending.future._fail(ServerClosedError(reason))

    def close(self, timeout: float = 5.0) -> None:
        """Stop serving.  In-flight batches finish; queued requests fail.

        Safe to call more than once.  Requests still waiting (pending or in
        formed-but-undispatched batches) receive :class:`ServerClosedError`.
        """
        self._shut_down("ServingQueue was closed")
        for thread in [self._scheduler, *self._workers]:
            if thread is not None and thread.is_alive():
                thread.join(timeout)

    def __enter__(self) -> "ServingQueue":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #
    def submit(
        self, tokens: np.ndarray, deadline_ms: float | None = None
    ) -> ServingFuture:
        """Enqueue one request; returns its :class:`ServingFuture`.

        ``deadline_ms`` bounds the *queueing* delay: a request not dispatched
        within that many milliseconds of submission fails with
        :class:`DeadlineExceededError` (it is never half-served).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 1 or tokens.size == 0:
            raise ValueError(
                f"a request must be a non-empty 1-D token id sequence, "
                f"got shape {tokens.shape}"
            )
        if not np.issubdtype(tokens.dtype, np.integer):
            raise ValueError(f"token ids must be integers, got {tokens.dtype}")
        if tokens.size > self.pool.max_sequence_length:
            raise ValueError(
                f"request length {tokens.size} exceeds the model's maximum "
                f"sequence length {self.pool.max_sequence_length}"
            )
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")
        now = time.monotonic()
        future = ServingFuture()
        pending = _Pending(
            tokens=tokens,
            future=future,
            submitted_at=now,
            deadline_at=None if deadline_ms is None else now + deadline_ms / 1000.0,
        )
        with self._lock:
            if self._closed:
                raise ServerClosedError("ServingQueue is closed")
            if self._backlog >= self.max_queue_depth:
                self._rejected += 1
                raise QueueFullError(
                    f"queue depth {self._backlog} is at max_queue_depth="
                    f"{self.max_queue_depth}; request rejected"
                )
            self._pending.append(pending)
            self._backlog += 1
            self._submitted += 1
            if self._first_submit_at is None:
                self._first_submit_at = now
            self._max_depth_seen = max(self._max_depth_seen, self._backlog)
            self._work.notify_all()
        return future

    def serve_one(
        self,
        tokens: np.ndarray,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Blocking convenience: ``submit`` + ``result``."""
        return self.submit(tokens, deadline_ms=deadline_ms).result(timeout)

    def serve(
        self, requests: Sequence[np.ndarray], timeout: float | None = None
    ) -> List[np.ndarray]:
        """Submit a burst of requests and wait for all results (in order).

        ``timeout`` is one shared deadline for the *whole burst*, not a
        per-future allowance: waiting on result ``i`` consumes the same
        budget as results ``0..i-1`` did, so a burst of N requests against a
        stalled queue raises :class:`TimeoutError` after ~``timeout``
        seconds, never ``N * timeout``.
        """
        futures = [self.submit(tokens) for tokens in requests]
        if timeout is None:
            return [future.result(None) for future in futures]
        deadline = time.monotonic() + timeout
        return [
            future.result(max(0.0, deadline - time.monotonic()))
            for future in futures
        ]

    def drain(self, timeout: float = 30.0) -> None:
        """Block until nothing is pending, formed, or in flight.

        Raises :class:`ServerClosedError` if the queue is closed with
        backlog still present (or after close() discarded backlog while this
        call was waiting) — that backlog will never be served, so returning
        normally would falsely report it drained.  A close() that raced in
        *after* everything was genuinely served does not raise.
        """
        closed_error = ServerClosedError(
            "ServingQueue was closed while draining; the remaining "
            "backlog will never be served"
        )
        deadline = time.monotonic() + timeout
        with self._work:
            while self._pending or self._batch_queue or self._inflight_batches:
                if self._closed:
                    raise closed_error
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("ServingQueue did not drain in time")
                self._work.wait(remaining)
            # The backlog is gone — but close() *discards* the pending and
            # formed backlog (failing those futures), so an empty closed
            # queue is not necessarily a served one.
            if self._closed and self._dropped_on_close:
                raise closed_error

    def reset_stats(self) -> None:
        """Zero the counters, latency digest and throughput span anchors.

        Long-lived servers call this to take per-window measurements: after a
        reset, :meth:`stats` describes only the traffic observed since.
        Backlog accounting (``queue_depth`` and the admission-control bound
        it feeds) is deliberately untouched — requests already in the system
        still count against ``max_queue_depth`` and still complete.  Those
        carried-over requests complete *into* the new window: their
        completions/latencies are counted here (a latency necessarily
        includes queueing time from before the reset), the high-water mark
        restarts from the current backlog, and the throughput span is
        anchored at the reset while any backlog remains.
        """
        with self._lock:
            self._submitted = 0
            self._completed = 0
            self._rejected = 0
            self._expired = 0
            self._failed = 0
            self._batches = 0
            self._batched_rows = 0
            self._latencies_ms.clear()
            self._queue_waits_ms.clear()
            self._services_ms.clear()
            # Anchor the span at the reset when requests are still in the
            # system — their completions land in this window and must not
            # report as zero throughput.
            self._first_submit_at = time.monotonic() if self._backlog else None
            self._last_done_at = None
            self._max_depth_seen = self._backlog

    @staticmethod
    def _digest(values_ms: Deque[float]) -> tuple[float, float, float]:
        """``(p50, p99, mean)`` of a bounded latency deque (0s when empty)."""
        if not values_ms:
            return 0.0, 0.0, 0.0
        values = np.asarray(values_ms, dtype=np.float64)
        return (
            float(np.percentile(values, 50)),
            float(np.percentile(values, 99)),
            float(np.mean(values)),
        )

    def stats(self) -> ServingStats:
        """A consistent snapshot of the queue's counters and latency digest."""
        with self._lock:
            p50, p99, mean = self._digest(self._latencies_ms)
            wait_p50, wait_p99, wait_mean = self._digest(self._queue_waits_ms)
            service_p50, service_p99, service_mean = self._digest(self._services_ms)
            span = None
            if self._first_submit_at is not None and self._last_done_at is not None:
                span = self._last_done_at - self._first_submit_at
            return ServingStats(
                submitted=self._submitted,
                completed=self._completed,
                rejected=self._rejected,
                expired=self._expired,
                failed=self._failed,
                queue_depth=self._backlog,
                max_queue_depth_seen=self._max_depth_seen,
                batches=self._batches,
                mean_batch_size=(
                    self._batched_rows / self._batches if self._batches else 0.0
                ),
                p50_latency_ms=p50,
                p99_latency_ms=p99,
                mean_latency_ms=mean,
                p50_queue_wait_ms=wait_p50,
                p99_queue_wait_ms=wait_p99,
                mean_queue_wait_ms=wait_mean,
                p50_service_ms=service_p50,
                p99_service_ms=service_p99,
                mean_service_ms=service_mean,
                throughput_rps=(
                    self._completed / span if span and span > 0 else 0.0
                ),
            )

    # ------------------------------------------------------------------ #
    # Scheduler: pending window -> length-grouped batches
    # ------------------------------------------------------------------ #
    def _bucketed_length(self, length: int) -> int:
        bucket = self.pool.config.bucket_size
        bucketed = -(-length // bucket) * bucket
        return min(bucketed, self.pool.max_sequence_length)

    def _form_batches(self, window: List[_Pending]) -> List[List[_Pending]]:
        """Group a coalescing window by bucketed length, chunk to batch size.

        The same stable grouping rule as ``RequestBatcher.plan`` — requests
        with equal bucketed length stay in arrival order — so queued serving
        inherits the exact-length parity guarantee.
        """
        groups: Dict[int, List[_Pending]] = {}
        for pending in window:
            groups.setdefault(self._bucketed_length(pending.tokens.size), []).append(
                pending
            )
        batches: List[List[_Pending]] = []
        for length in sorted(groups):
            group = groups[length]
            for start in range(0, len(group), self.max_batch_size):
                batches.append(group[start : start + self.max_batch_size])
        return batches

    def _scheduler_loop(self) -> None:
        full_fleet = self.max_batch_size * self.pool.num_replicas
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._work.wait()
                if self._closed:
                    return
                window_end = self._pending[0].submitted_at + self.max_wait_s
                while (
                    not self._closed
                    and len(self._pending) < full_fleet
                    and (remaining := window_end - time.monotonic()) > 0
                ):
                    self._work.wait(remaining)
                if self._closed:
                    return
                window = list(self._pending)
                self._pending.clear()

            now = time.monotonic()
            expired, live = [], []
            for pending in window:
                if pending.deadline_at is not None and pending.deadline_at < now:
                    expired.append(pending)
                else:
                    live.append(pending)
            batches = self._form_batches(live)
            with self._lock:
                if self._closed:
                    # close() already failed everything it saw; fail the rest.
                    self._backlog -= len(window)
                    self._dropped_on_close += len(window)
                    self._work.notify_all()
                    for pending in window:
                        pending.future._fail(
                            ServerClosedError("ServingQueue was closed")
                        )
                    return
                self._expired += len(expired)
                self._backlog -= len(expired)
                self._batch_queue.extend(batches)
                self._work.notify_all()
            for pending in expired:
                pending.future._fail(
                    DeadlineExceededError(
                        "request deadline elapsed before dispatch "
                        f"(queued {1000 * (now - pending.submitted_at):.1f} ms)"
                    )
                )

    # ------------------------------------------------------------------ #
    # Workers: one thread per replica
    # ------------------------------------------------------------------ #
    def _worker_loop(self, replica: int) -> None:
        session = self.pool.sessions[replica]
        while True:
            with self._lock:
                while not self._batch_queue and not self._closed:
                    self._work.wait()
                if self._closed and not self._batch_queue:
                    return
                batch = self._batch_queue.popleft()
                self._inflight_batches += 1
            # Re-check deadlines at pick-up: a formed batch can sit behind a
            # backlog long past the window-close check, and a request whose
            # deadline lapsed must fail rather than be served arbitrarily
            # late (or waste forward time).
            now = time.monotonic()
            expired, live = [], []
            for pending in batch:
                if pending.deadline_at is not None and pending.deadline_at < now:
                    expired.append(pending)
                else:
                    live.append(pending)
            if expired:
                with self._lock:
                    self._expired += len(expired)
                    self._backlog -= len(expired)
                    if not live:
                        self._inflight_batches -= 1
                    self._work.notify_all()
                for pending in expired:
                    pending.future._fail(
                        DeadlineExceededError(
                            "request deadline elapsed before its forward "
                            f"started (queued {1000 * (now - pending.submitted_at):.1f} ms)"
                        )
                    )
                if not live:
                    continue
                batch = live
            # The queue-wait / service boundary for every request in the
            # batch: the moment this worker committed to serving it.
            dispatched_at = time.monotonic()
            try:
                results = session.forward([pending.tokens for pending in batch])
            except BaseException as exc:
                with self._lock:
                    self._failed += len(batch)
                    self._backlog -= len(batch)
                    self._inflight_batches -= 1
                    self._work.notify_all()
                for pending in batch:
                    pending.future._fail(_per_future_error(exc))
                if getattr(session, "defunct", False):
                    # A permanently-dead replica (a shard worker process that
                    # died or was poisoned) must stop consuming the shared
                    # batch queue: failing batches instantly, this thread
                    # would outrace the healthy replicas and poison traffic
                    # they could have served.  And once the *last* live
                    # worker exits, the queue must fail fast rather than
                    # silently accept requests nothing will ever serve.
                    with self._lock:
                        self._live_workers -= 1
                        fleet_dead = self._live_workers <= 0
                    if fleet_dead:
                        self._shut_down(
                            "every replica of this ServingQueue's pool is "
                            "dead; the queue closed itself"
                        )
                    return
                continue
            done_at = time.monotonic()
            with self._lock:
                self._batches += 1
                self._batched_rows += len(batch)
                self._completed += len(batch)
                self._backlog -= len(batch)
                self._last_done_at = done_at
                for pending in batch:
                    self._latencies_ms.append(
                        1000.0 * (done_at - pending.submitted_at)
                    )
                    self._queue_waits_ms.append(
                        1000.0 * (dispatched_at - pending.submitted_at)
                    )
                    self._services_ms.append(1000.0 * (done_at - dispatched_at))
                self._inflight_batches -= 1
                self._work.notify_all()
            for pending, result in zip(batch, results):
                pending.future._fulfill(result)
