"""Concurrent serving: replica pools and the batch-coalescing facade.

The ROADMAP's open perf item says the FP32 engine is matmul-bound — the next
win is *batched multi-sequence scheduling*, not more LUT fusion.  This module
supplies it, one layer above :class:`~repro.api.session.InferenceSession`
(the seam PR 2 left for exactly this):

* :class:`SessionPool` — N replica sessions over **one** shared frozen
  encoder.  ``InferenceSession`` construction makes every subsequent forward
  read-only (weights prepared eagerly; the pool warms the remaining lazy
  per-dtype caches), so replicas can serve simultaneously from threads.
  numpy's BLAS releases the GIL, which is where the thread parallelism comes
  from on multi-core machines; on a single core the win is batch density.
* :class:`ServingQueue` — the serving facade.  Client threads call
  :meth:`~ServingQueue.submit`/:meth:`~ServingQueue.serve`; the actual
  scheduling — admission control, ``max_wait_ms`` coalescing, routing,
  per-replica dispatch, live membership, autoscaling — lives in
  :mod:`repro.api.scheduling` and is wired together here.  Per-request
  deadlines and a bounded queue give overload behaviour a server can rely
  on; :meth:`ServingQueue.stats` reports p50/p99 latency — split into
  queue-wait vs service time — plus throughput, queue/batch shape, and
  per-replica scheduling state.

Both pools support *live membership*: :meth:`ReplicaPool.spawn_replica` /
:meth:`ReplicaPool.retire_replica` are the narrow hooks the scheduling
package's :class:`~repro.api.scheduling.fleet.FleetManager` (and the
:class:`~repro.api.scheduling.autoscaler.Autoscaler`) drive to grow and
shrink a queue's fleet while it serves.

Determinism and parity: every replica serves the *same* frozen model object
through an identically-built backend, and with exact-length bucketing
(``bucket_size=1``) a micro-batched forward reproduces the per-call forward
bit for bit on the float engines (the PR-2 guarantee).  Which replica serves a
request therefore cannot change its result — pooled/queued serving is
bitwise-equal to single-session serving under ``compute_dtype="float64"`` on
the ``fp32``/``fp16`` matmul engines.  :meth:`SessionPool.forward` goes
further and makes the *dispatch itself* deterministic (micro-batch ``j`` goes
to replica ``j % num_replicas``), and the queue's default
:class:`~repro.api.scheduling.routing.DeterministicRouter` keeps batch
placement a pure function of submission order, so runs are reproducible
batch-for-batch.  ``router="least_loaded"`` trades that placement
reproducibility for tail latency under bursty traffic (results on the float
engines stay bitwise-identical either way).  The ``int8`` engine keeps its
documented caveat: one activation scale per packed tensor means batch
composition legitimately affects its numerics.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.registry import LutRegistry
from ..transformer.models import EncoderModel
from . import faults as _faults
from .scheduling.admission import (
    AdmissionController,
    DeadlineExceededError,
    Pending,
    QueueFullError,
    ServerClosedError,
    ServingFuture,
)
from .scheduling.autoscaler import Autoscaler, AutoscalerConfig
from .scheduling.fleet import FleetManager, _per_future_error  # noqa: F401
from .scheduling.former import BatchFormer
from .scheduling.resilience import CircuitBreakerConfig, RetryPolicy
from .scheduling.routing import Router, create_router
from .scheduling.stats import ReplicaStats, ServingStats, StatsBoard
from .session import InferenceSession, SessionConfig, adopted_model_config
from .spec import BackendSpec

__all__ = [
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "ServingFuture",
    "ServingStats",
    "ReplicaStats",
    "AutoscalerConfig",
    "RetryPolicy",
    "CircuitBreakerConfig",
    "ReplicaPool",
    "SessionPool",
    "ServingQueue",
]

#: Backward-compatible alias — the pending record now lives in
#: :mod:`repro.api.scheduling.admission`.
_Pending = Pending


class ReplicaPool:
    """The pool protocol: deterministic replica serving over N handles.

    This is the seam :class:`ServingQueue` (and any direct caller) programs
    against.  A concrete pool provides

    * ``sessions`` — one serving handle per replica, each exposing
      ``forward(requests) -> list`` and ``pooled(requests)``.  For
      :class:`SessionPool` these are in-process
      :class:`~repro.api.session.InferenceSession`\\ s; for
      :class:`~repro.api.sharding.ShardedPool` they are proxies to worker
      *processes*.
    * ``_template`` — a local :class:`InferenceSession` describing the pool
      (its pure ``RequestBatcher.plan`` drives the deterministic sharding;
      its model supplies shapes/dtypes).
    * ``config`` / ``spec`` — the serializable session/backend description.

    ``forward``/``pooled``/``classify`` shard micro-batches deterministically
    (batch ``j`` -> replica ``j % N``) and are implemented once here, so every
    pool — threaded or multi-process — serves identically.

    Pools that support *live membership* additionally implement
    :meth:`spawn_replica`/:meth:`retire_replica`; the scheduling package's
    fleet manager and autoscaler only ever touch a pool through these two
    hooks.
    """

    #: Replica serving handles (``forward``/``pooled`` duck type).
    sessions: List
    #: Local session describing the pool (planner + model metadata).
    _template: InferenceSession
    config: SessionConfig
    spec: BackendSpec

    @property
    def num_replicas(self) -> int:
        return len(self.sessions)

    @property
    def template(self) -> InferenceSession:
        """The local session describing this pool.

        Its (pure) batcher drives the deterministic sharding, its model
        supplies shapes/dtypes, and its backend is the per-call oracle the
        parity gates/benchmarks compare pooled serving against.
        """
        return self._template

    @property
    def model(self) -> EncoderModel:
        return self._template.model

    @property
    def max_sequence_length(self) -> int:
        return self._template.max_sequence_length

    # ------------------------------------------------------------------ #
    # Live membership hooks (optional per pool)
    # ------------------------------------------------------------------ #
    def spawn_replica(self):
        """Build, warm and adopt one more replica handle; return it.

        The handle is appended to ``sessions`` before returning, so direct
        pool serving and a queue's fleet see the same membership.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support live replica addition"
        )

    def retire_replica(self, handle) -> None:
        """Release one replica handle and drop it from ``sessions``.

        Idempotent with respect to membership: retiring a handle that is no
        longer in ``sessions`` only releases its resources.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support live replica retirement"
        )

    # ------------------------------------------------------------------ #
    # Deterministic sharded serving
    # ------------------------------------------------------------------ #
    def _shard(
        self, requests: Sequence[np.ndarray]
    ) -> List[List[Sequence[int]]]:
        """Micro-batch index groups per replica: batch ``j`` -> replica ``j % N``.

        The layout comes from the template batcher's (pure) ``plan``, so the
        assignment depends only on the request list — never on thread timing.
        """
        sessions = self.sessions
        plan = self._template._batcher.plan(
            [np.asarray(r).size for r in requests], self.max_sequence_length
        )
        shards: List[List[Sequence[int]]] = [[] for _ in sessions]
        for j, (_, indices) in enumerate(plan):
            shards[j % len(sessions)].append(indices)
        return shards

    def _serve_sharded(self, requests: Sequence[np.ndarray], serve) -> List:
        """Run ``serve(session, sub_requests) -> list`` per shard, threaded.

        Results come back in request order regardless of sharding.
        """
        requests = [np.asarray(r) for r in requests]
        outputs: List = [None] * len(requests)
        shards = self._shard(requests)
        errors: List[BaseException] = []

        def run(replica: int) -> None:
            session = self.sessions[replica]
            try:
                for indices in shards[replica]:
                    results = serve(session, [requests[i] for i in indices])
                    for index, result in zip(indices, results):
                        outputs[index] = result
            except BaseException as exc:  # surface worker failures to caller
                errors.append(exc)

        live = [replica for replica in range(len(shards)) if shards[replica]]
        if len(live) <= 1:
            for replica in live:
                run(replica)
        else:
            threads = [
                threading.Thread(target=run, args=(replica,), daemon=True)
                for replica in live
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        return outputs

    def forward(self, requests: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Hidden states per request, served across the replicas.

        Bitwise-equal to :meth:`InferenceSession.forward` on the float
        engines with exact-length bucketing (see the module docstring).
        """
        return self._serve_sharded(
            requests, lambda session, sub: session.forward(sub)
        )

    def pooled(self, requests: Sequence[np.ndarray]) -> np.ndarray:
        """First-token (``[CLS]``) representations, shape ``(n, hidden)``."""
        rows = self._serve_sharded(
            requests, lambda session, sub: list(session.pooled(sub))
        )
        if not rows:
            hidden_size = self.model.config.hidden_size
            return np.empty(
                (0, hidden_size), dtype=np.dtype(self.model.config.compute_dtype)
            )
        return np.stack(rows, axis=0)

    def classify(self, requests: Sequence[np.ndarray], head) -> np.ndarray:
        """Predicted labels through a fitted classification head.

        Same head contract as :meth:`InferenceSession.classify`, with the
        pooling served across the replicas.
        """
        from .session import _resolve_classification_head

        return _resolve_classification_head(head).predict(self.pooled(requests))


class SessionPool(ReplicaPool):
    """N replica :class:`InferenceSession`\\ s over one shared frozen encoder.

    The pool builds (or adopts) the model once; every replica session adopts
    the same :class:`~repro.transformer.models.EncoderModel` instance, so the
    weight memory and the one-time preparation cost are paid once regardless
    of ``num_replicas``.  Each replica owns its *mutable* serving state — the
    batcher's packing buffers and the backend (with its recorder) — which is
    what makes replicas safe to run from concurrent threads.

    Construction ends with one tiny warm-up forward per replica: that fills
    every lazy per-dtype cache on the shared tables/parameters
    (``LookupTable`` parameter casts, norm-parameter casts), so concurrent
    traffic never races on a cache fill.  :meth:`spawn_replica` repeats the
    same recipe for live hot-adds.

    Parameters mirror :class:`InferenceSession`; ``model=`` adopts an
    existing encoder exactly like the session constructor does.
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        spec: BackendSpec | None = None,
        registry: LutRegistry | None = None,
        num_replicas: int = 2,
        model: EncoderModel | None = None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        primary = InferenceSession(
            config=config, spec=spec, registry=registry, model=model
        )
        self._template = primary
        self.sessions: List[InferenceSession] = [primary]
        for _ in range(num_replicas - 1):
            self.sessions.append(primary.clone_for_serving())
        self.config = primary.config
        self.spec = primary.spec
        warmup = [np.zeros(1, dtype=np.int64)]
        for session in self.sessions:
            session.forward(warmup)

    @classmethod
    def from_model(
        cls,
        model: EncoderModel,
        spec: BackendSpec | None = None,
        registry: LutRegistry | None = None,
        num_replicas: int = 2,
        max_batch_size: int = 32,
        bucket_size: int = 1,
    ) -> "SessionPool":
        """Pool over an already-built encoder (its engine settings win)."""
        config = adopted_model_config(
            model, max_batch_size=max_batch_size, bucket_size=bucket_size
        )
        return cls(config=config, spec=spec, registry=registry,
                   num_replicas=num_replicas, model=model)

    def calibrate(
        self, samples: Sequence[np.ndarray], config=None, operators=None
    ) -> Dict[str, object]:
        """Dataset-free calibration for the whole pool.

        Runs :meth:`InferenceSession.calibrate` on the primary replica and
        installs the calibrated tables into every other replica, so the pool
        keeps serving one consistent backend.
        """
        calibrated = self.sessions[0].calibrate(
            samples, config=config, operators=operators
        )
        for session in self.sessions[1:]:
            session.apply_lut_overrides(calibrated)
        return calibrated

    # ------------------------------------------------------------------ #
    # Live membership
    # ------------------------------------------------------------------ #
    def spawn_replica(self) -> InferenceSession:
        """One more warmed replica over the shared frozen encoder."""
        if _faults._ACTIVE is not None:
            _faults._ACTIVE.on_spawn()
        replica = self._template.clone_for_serving()
        replica.forward([np.zeros(1, dtype=np.int64)])
        self.sessions.append(replica)
        return replica

    def retire_replica(self, handle: InferenceSession) -> None:
        """Drop a replica session; the shared model is untouched."""
        if handle in self.sessions:
            self.sessions.remove(handle)


class ServingQueue:
    """Batch-coalescing serving facade over a :class:`ReplicaPool`.

    Client threads call :meth:`submit` (non-blocking, returns a
    :class:`ServingFuture`) or :meth:`serve_one` (blocking convenience).  A
    scheduler thread coalesces everything submitted within ``max_wait_ms`` of
    the oldest pending request — or sooner, once every replica has a full
    batch — groups the window by (bucketed) length exactly like
    :class:`~repro.api.batching.RequestBatcher`, and routes the formed
    batches to per-replica worker threads through the configured router.
    The machinery lives in :mod:`repro.api.scheduling`; this facade only
    validates, wires, and delegates.

    Overload behaviour: :meth:`submit` raises :class:`QueueFullError` once
    ``max_queue_depth`` requests are in the system — pending, formed into
    batches, or in flight (admission control over the whole backlog, so the
    queue never grows unboundedly even when the scheduler keeps draining the
    pending deque into formed batches faster than workers serve them).  A
    request whose ``deadline_ms`` elapses before its forward *starts* fails
    with :class:`DeadlineExceededError` instead of wasting a forward on it —
    checked both when its coalescing window closes and again when a worker
    picks its batch up.

    Live membership: :meth:`add_replica`, :meth:`drain_replica` and
    :meth:`retire_replica` grow and shrink the serving fleet while traffic
    flows (in-flight work always completes on the old member).  A replica
    that dies mid-service is retired automatically — its queued work moves
    to the survivors — and ``replace_dead_replicas=True`` additionally
    spawns a fresh replica in its place.  Passing an
    :class:`AutoscalerConfig` as ``autoscale`` runs the stats-driven
    scaling loop on top of the same hooks.

    Parameters
    ----------
    pool:
        Any :class:`ReplicaPool` — a threaded :class:`SessionPool`, a
        multi-process :class:`~repro.api.sharding.ShardedPool` — or a single
        :class:`InferenceSession` (served as a pool of one).
    max_wait_ms:
        Coalescing window measured from the oldest pending request.  Larger
        values trade tail latency for denser batches.
    max_batch_size:
        Rows per dispatched batch; defaults to the pool's session setting.
    max_queue_depth:
        Backlog bound (pending + formed + in-flight requests) above which
        :meth:`submit` rejects.
    start:
        Start the scheduler/worker threads immediately (default).  Tests and
        warm-up flows can pass ``False`` and call :meth:`start` later.
    router:
        ``"deterministic"`` (default; reproducible batch placement — the
        configuration every float64 parity gate pins), ``"least_loaded"``
        (load-aware dispatch with work stealing), or a
        :class:`~repro.api.scheduling.routing.Router` instance.
    autoscale:
        Optional :class:`AutoscalerConfig`; when given, an autoscaler
        thread watches the queue-wait/service split and drives
        :meth:`add_replica`/:meth:`retire_one_replica` within its bounds.
    replace_dead_replicas:
        Spawn a replacement (via the pool's :meth:`~ReplicaPool.spawn_replica`
        hook) whenever a replica dies mid-service.
    retry:
        Optional :class:`~repro.api.scheduling.resilience.RetryPolicy`.
        When given, batches hit by replica-level failures (worker death,
        request timeouts, transport faults) are re-routed to surviving
        replicas with exponential backoff instead of failing their futures
        — safe because inference is pure (see the resilience module's
        retry-idempotency contract).  Default ``None``: failures propagate
        immediately, exactly as before.
    breaker:
        Optional :class:`~repro.api.scheduling.resilience.CircuitBreakerConfig`.
        When given, a replica accumulating consecutive batch failures is
        drained of new traffic and re-admitted via half-open probes once
        its cooldown elapses.  Default ``None``: no breaker.
    """

    def __init__(
        self,
        pool: ReplicaPool | InferenceSession,
        max_wait_ms: float = 2.0,
        max_batch_size: int | None = None,
        max_queue_depth: int = 1024,
        start: bool = True,
        router: str | Router = "deterministic",
        autoscale: AutoscalerConfig | None = None,
        replace_dead_replicas: bool = False,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreakerConfig | None = None,
    ) -> None:
        if isinstance(pool, InferenceSession):
            source = pool
            pool = SessionPool.from_model(
                source.model, spec=source.spec, registry=source.registry,
                num_replicas=1,
                max_batch_size=source.config.max_batch_size,
                bucket_size=source.config.bucket_size,
            )
            if source.lut_overrides:
                # A calibrated session must keep serving its calibrated
                # tables through the queue, not a freshly-built backend.
                for session in pool.sessions:
                    session.apply_lut_overrides(source.lut_overrides)
        if not isinstance(pool, ReplicaPool):
            raise TypeError(
                f"pool must be a SessionPool, a ShardedPool (any ReplicaPool) "
                f"or an InferenceSession, got {type(pool).__name__}"
            )
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.pool = pool
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_batch_size = int(
            pool.config.max_batch_size if max_batch_size is None else max_batch_size
        )
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        self.max_queue_depth = int(max_queue_depth)

        self.router = create_router(router)
        self._board = StatsBoard()
        self._admission = AdmissionController(self.max_queue_depth, self._board)
        self._former = BatchFormer(
            max_batch_size=self.max_batch_size,
            bucket_size=pool.config.bucket_size,
            max_sequence_length=pool.max_sequence_length,
            max_wait_s=self.max_wait_s,
        )
        self._fleet = FleetManager(
            pool=pool,
            router=self.router,
            former=self._former,
            admission=self._admission,
            board=self._board,
            replace_dead=replace_dead_replicas,
            retry=retry,
            breaker=breaker,
        )
        self._autoscaler = (
            Autoscaler(self, autoscale) if autoscale is not None else None
        )
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingQueue":
        """Start the scheduler and one worker thread per replica (idempotent)."""
        self._fleet.start()
        if self._autoscaler is not None:
            self._autoscaler.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Stop serving.  In-flight batches finish; queued requests fail.

        Safe to call more than once.  Requests still waiting (pending or in
        formed-but-undispatched batches) receive :class:`ServerClosedError`.
        """
        if self._autoscaler is not None:
            self._autoscaler.stop(timeout)
        self._fleet.shut_down("ServingQueue was closed")
        self._fleet.join(timeout)

    def __enter__(self) -> "ServingQueue":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def autoscaler(self) -> Optional[Autoscaler]:
        """The scaling loop, when constructed with ``autoscale=`` (else None)."""
        return self._autoscaler

    @property
    def _inflight_batches(self) -> int:
        # Kept for tests/tools that poll dispatch progress; the counter
        # itself now lives on the fleet.
        return self._fleet.inflight_batches

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #
    def submit(
        self, tokens: np.ndarray, deadline_ms: float | None = None
    ) -> ServingFuture:
        """Enqueue one request; returns its :class:`ServingFuture`.

        ``deadline_ms`` bounds the *queueing* delay: a request not dispatched
        within that many milliseconds of submission fails with
        :class:`DeadlineExceededError` (it is never half-served).
        """
        tokens = AdmissionController.validate(
            tokens, self.pool.max_sequence_length, deadline_ms
        )
        now = time.monotonic()
        future = ServingFuture()
        self._fleet.submit(
            Pending(
                tokens=tokens,
                future=future,
                submitted_at=now,
                deadline_at=(
                    None if deadline_ms is None else now + deadline_ms / 1000.0
                ),
            )
        )
        return future

    def serve_one(
        self,
        tokens: np.ndarray,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Blocking convenience: ``submit`` + ``result``."""
        return self.submit(tokens, deadline_ms=deadline_ms).result(timeout)

    def serve(
        self, requests: Sequence[np.ndarray], timeout: float | None = None
    ) -> List[np.ndarray]:
        """Submit a burst of requests and wait for all results (in order).

        ``timeout`` is one shared deadline for the *whole burst*, not a
        per-future allowance: waiting on result ``i`` consumes the same
        budget as results ``0..i-1`` did, so a burst of N requests against a
        stalled queue raises :class:`TimeoutError` after ~``timeout``
        seconds, never ``N * timeout``.
        """
        futures = [self.submit(tokens) for tokens in requests]
        if timeout is None:
            return [future.result(None) for future in futures]
        deadline = time.monotonic() + timeout
        return [
            future.result(max(0.0, deadline - time.monotonic()))
            for future in futures
        ]

    def drain(self, timeout: float = 30.0) -> None:
        """Block until nothing is pending, formed, or in flight.

        Raises :class:`ServerClosedError` if the queue is closed with
        backlog still present (or after close() discarded backlog while this
        call was waiting) — that backlog will never be served, so returning
        normally would falsely report it drained.  A close() that raced in
        *after* everything was genuinely served does not raise.
        """
        self._fleet.drain(timeout)

    def reset_stats(self) -> None:
        """Zero the counters, latency digest and throughput span anchors.

        Long-lived servers call this to take per-window measurements: after a
        reset, :meth:`stats` describes only the traffic observed since.
        Backlog accounting (``queue_depth`` and the admission-control bound
        it feeds) is deliberately untouched — requests already in the system
        still count against ``max_queue_depth`` and still complete.  Those
        carried-over requests complete *into* the new window: their
        completions/latencies are counted here (a latency necessarily
        includes queueing time from before the reset), the high-water mark
        restarts from the current backlog, and the throughput span is
        anchored at the reset while any backlog remains.  Per-replica
        counters in ``stats().replicas`` are lifetime values and are not
        windowed.
        """
        self._fleet.reset_stats()

    def stats(self) -> ServingStats:
        """A consistent snapshot of the queue's counters and latency digest."""
        return self._fleet.snapshot()

    # ------------------------------------------------------------------ #
    # Live membership
    # ------------------------------------------------------------------ #
    def add_replica(self) -> int:
        """Hot-add one replica (pool spawn + fleet adoption); returns its id."""
        handle = self.pool.spawn_replica()
        try:
            return self._fleet.add_member(handle)
        except BaseException:
            # The fleet refused (e.g. the queue closed between spawn and
            # adopt): don't leak a live replica outside the fleet.
            try:
                self.pool.retire_replica(handle)
            except Exception:
                pass
            raise

    def drain_replica(self, replica_id: int) -> None:
        """Stop routing new work to a replica; its queued work completes.

        The member stays visible in :meth:`stats` as ``draining`` until
        :meth:`retire_replica` removes it.
        """
        self._fleet.drain_member(replica_id)

    def retire_replica(self, replica_id: int, timeout: float = 30.0) -> None:
        """Remove a replica from the fleet and release it from the pool.

        Queued batches are re-routed to the surviving replicas; the batch
        the replica is currently serving completes on it before this call
        returns (in-flight work is never abandoned).
        """
        session = self._fleet.retire_member(replica_id, timeout)
        try:
            self.pool.retire_replica(session)
        except NotImplementedError:
            # A pool without live membership: the fleet no longer routes to
            # the handle, which is all the scheduler needs.
            pass

    def retire_one_replica(self, timeout: float = 30.0) -> Optional[int]:
        """Shed the least-loaded replica (autoscaler scale-down hook).

        Returns the retired replica id, or ``None`` when the fleet is
        already at a single live replica.
        """
        replica_id = self._fleet.scaledown_candidate()
        if replica_id is None:
            return None
        self.retire_replica(replica_id, timeout=timeout)
        return replica_id
