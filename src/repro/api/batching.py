"""Dynamic micro-batching over ragged request lists.

Serving traffic arrives as a list of variable-length token sequences.  The
:class:`RequestBatcher` turns that ragged list into dense micro-batches:

* lengths are rounded up to a multiple of ``bucket_size`` and requests are
  grouped by bucketed length (a stable sort, so arrival order breaks ties);
* each group is chunked into micro-batches of at most ``max_batch_size``
  rows;
* rows shorter than the bucket length are padded with token id 0 and an
  attention mask marks the real tokens.

With the default ``bucket_size=1`` only *identical* lengths share a batch, so
no padding (and no mask) ever enters the computation — the batched forward
is the same arithmetic as the per-request forward, which is what lets the
float64 engine reproduce per-call outputs bit for bit.  (The ``int8`` matmul
engine is the exception regardless of bucketing: its per-tensor activation
scale spans the packed batch, so co-batched requests share a quantisation
grid per-call inference would not.)  Larger buckets trade exactness of that
equivalence for fewer, denser batches.

The padded token and mask buffers are allocated once and reused across
micro-batches (they grow geometrically to the largest shape seen), so steady
state serving does no per-batch allocation for inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["MicroBatch", "RequestBatcher"]


@dataclass
class MicroBatch:
    """One dense batch: request indices plus packed inputs.

    With ``iter_batches(..., copy=False)``, ``tokens`` (and ``mask``, when
    padding occurred) are views into the batcher's reusable buffers —
    consume them before pulling the next batch; by default each batch owns
    its arrays.
    """

    indices: Tuple[int, ...]
    lengths: Tuple[int, ...]
    tokens: np.ndarray
    mask: np.ndarray | None


def _normalise_requests(
    requests: Sequence[np.ndarray], max_length: int | None
) -> List[np.ndarray]:
    sequences: List[np.ndarray] = []
    for i, request in enumerate(requests):
        tokens = np.asarray(request)
        if tokens.ndim != 1:
            raise ValueError(
                f"request {i} must be a 1-D token id sequence, got shape {tokens.shape}"
            )
        if tokens.size == 0:
            raise ValueError(f"request {i} is empty")
        if not np.issubdtype(tokens.dtype, np.integer):
            raise ValueError(f"request {i} must contain integer token ids, got {tokens.dtype}")
        if max_length is not None and tokens.size > max_length:
            raise ValueError(
                f"request {i} has length {tokens.size}, exceeding the model's "
                f"maximum sequence length {max_length}"
            )
        sequences.append(tokens)
    return sequences


class RequestBatcher:
    """Length-bucketing micro-batch planner with reusable input buffers.

    Besides the padded-batch planning, this class owns the repo's *packed*
    ragged layout — ``int64[n]`` lengths plus the items concatenated along
    their first axis — which is how request batches and result rows travel
    through the shared-memory transport rings
    (:mod:`repro.api.transport`): :meth:`pack_ragged` writes a ragged list
    straight into a caller-provided (ring) buffer, :meth:`unpack_ragged`
    rebuilds the list as zero-copy views.
    """

    def __init__(self, max_batch_size: int = 32, bucket_size: int = 1) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
        self.max_batch_size = int(max_batch_size)
        self.bucket_size = int(bucket_size)
        self._buffers: Dict[str, np.ndarray] = {}

    def _buffer(self, name: str, rows: int, cols: int, dtype: np.dtype) -> np.ndarray:
        existing = self._buffers.get(name)
        if existing is None or existing.shape[0] < rows or existing.shape[1] < cols:
            # Rows are bounded by max_batch_size, so allocate them all at
            # once; columns double so reallocations stay logarithmic in the
            # longest padded length seen.
            grown_rows = max(rows, self.max_batch_size)
            grown_cols = cols if existing is None else max(cols, 2 * existing.shape[1])
            existing = np.empty((grown_rows, grown_cols), dtype=dtype)
            self._buffers[name] = existing
        return existing[:rows, :cols]

    def plan(
        self, lengths: Sequence[int], max_length: int | None = None
    ) -> List[Tuple[int, Tuple[int, ...]]]:
        """Micro-batch layout: ``[(padded_length, request_indices), ...]``.

        Stable: requests with equal bucketed length stay in arrival order.
        Bucketed lengths are capped at ``max_length`` so a bucket size that
        does not divide the model's maximum never pads a valid request past
        the limit.
        """
        bucketed = [
            -(-int(length) // self.bucket_size) * self.bucket_size for length in lengths
        ]
        if max_length is not None:
            bucketed = [min(length, max_length) for length in bucketed]
        order = sorted(range(len(bucketed)), key=lambda i: (bucketed[i], i))
        batches: List[Tuple[int, Tuple[int, ...]]] = []
        start = 0
        while start < len(order):
            padded = bucketed[order[start]]
            end = start
            while (
                end < len(order)
                and bucketed[order[end]] == padded
                and end - start < self.max_batch_size
            ):
                end += 1
            batches.append((padded, tuple(order[start:end])))
            start = end
        return batches

    # ------------------------------------------------------------------ #
    # Packed ragged layout (lengths + first-axis concatenation)
    # ------------------------------------------------------------------ #
    @staticmethod
    def pack_ragged(items: Sequence[np.ndarray], out: np.ndarray) -> np.ndarray:
        """Concatenate ``items`` along axis 0 directly into ``out``.

        ``out`` must already have the stacked shape — ``(total,)`` for 1-D
        items, ``(total, trailing)`` for row blocks — and a dtype the items
        can be copied into exactly.  Writing into a caller-provided buffer
        is the point: the shared-memory transport passes a ring view here,
        so packing a batch *is* shipping it (no pickle, no staging copy).
        """
        offset = 0
        for i, item in enumerate(items):
            rows = item.shape[0]
            if offset + rows > out.shape[0]:
                raise ValueError(
                    f"packed items hold more than the buffer's {out.shape[0]} "
                    f"rows (overflow at item {i})"
                )
            out[offset : offset + rows] = item
            offset += rows
        if offset != out.shape[0]:
            raise ValueError(
                f"packed items fill only {offset} of the buffer's "
                f"{out.shape[0]} rows"
            )
        return out

    @staticmethod
    def unpack_ragged(
        flat: np.ndarray, lengths: Sequence[int]
    ) -> List[np.ndarray]:
        """Split a first-axis concatenation back into per-item views.

        The inverse of :meth:`pack_ragged`: zero-copy slices of ``flat``,
        one per length.  Callers that outlive the buffer (ring reuse!) must
        copy; callers that consume immediately need not.
        """
        total = int(sum(lengths))
        if total != flat.shape[0]:
            raise ValueError(
                f"lengths sum to {total} rows but the flat buffer holds "
                f"{flat.shape[0]}"
            )
        items: List[np.ndarray] = []
        offset = 0
        for length in lengths:
            items.append(flat[offset : offset + int(length)])
            offset += int(length)
        return items

    def iter_batches(
        self,
        requests: Sequence[np.ndarray],
        max_length: int | None = None,
        copy: bool = True,
    ) -> Iterator[MicroBatch]:
        """Yield packed micro-batches for a ragged request list.

        By default every batch owns its ``tokens``/``mask`` arrays, so the
        whole iterator can be materialised safely.  ``copy=False`` yields
        views into the reusable packing buffers instead — zero per-batch
        allocation, but each batch is only valid until the next one is
        pulled (the serving hot path consumes batches immediately and opts
        in to this).
        """
        sequences = _normalise_requests(requests, max_length)
        for padded_length, indices in self.plan([s.size for s in sequences], max_length):
            rows = len(indices)
            lengths = tuple(sequences[i].size for i in indices)
            tokens = self._buffer("tokens", rows, padded_length, np.dtype(np.int64))
            needs_padding = any(length != padded_length for length in lengths)
            mask: np.ndarray | None = None
            if needs_padding:
                tokens[:] = 0
                mask = self._buffer("mask", rows, padded_length, np.dtype(np.int64))
                mask[:] = 0
            for row, index in enumerate(indices):
                sequence = sequences[index]
                tokens[row, : sequence.size] = sequence
                if mask is not None:
                    mask[row, : sequence.size] = 1
            if copy:
                tokens = tokens.copy()
                mask = None if mask is None else mask.copy()
            yield MicroBatch(indices=indices, lengths=lengths, tokens=tokens, mask=mask)
