"""Declarative backend specification and the factory that realises it.

The paper's central claim is that a single plug-in approximation substrate
(NN-LUT) covers *every* Transformer non-linearity across precisions.  The
serving layer mirrors that: a :class:`BackendSpec` declares, per operator
(GELU / Softmax / LayerNorm), which approximation method runs it —

* ``"exact"`` — the FP32/FP64 reference implementation,
* ``"nn_lut"`` — the paper's fitted NN-LUT tables,
* ``"linear_lut"`` — the equally-spaced-breakpoint LUT baseline,
* ``"ibert"`` — I-BERT's integer polynomial approximations,

at which table precision (``fp32`` / ``fp16`` / ``int32``), with how many
table entries, and whether the operator participates in dataset-free
calibration (paper Sec. 3.3.3).  Specs are plain values: they serialise with
:meth:`BackendSpec.to_dict`, round-trip through :meth:`BackendSpec.from_dict`,
compare by value, and are hashable — so a serving deployment can log, diff
and replay the exact backend configuration of any request.

:func:`build_backend` turns a spec into a ready
:class:`~repro.transformer.nonlinear_backend.NonlinearBackend`.  It subsumes
the four legacy ad-hoc constructors (``exact_backend`` / ``nn_lut_backend`` /
``linear_lut_backend`` / ``ibert_backend``), which survive only as thin
deprecated shims delegating here.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Callable, Dict, Mapping, Sequence, Tuple

from ..baselines.ibert import IBertGelu, IBertLayerNorm, IBertSoftmax
from ..baselines.linear_lut import linear_lut_for
from ..core.approximators import (
    ExactGelu,
    ExactLayerNorm,
    ExactSoftmax,
    LutGelu,
    LutLayerNorm,
    LutSoftmax,
)
from ..core.functions import get_training_range
from ..core.kernels import KERNEL_NAMES, resolve_kernel
from ..core.lut import LookupTable
from ..core.quantization import quantize_lut_fp16, quantize_lut_int32
from ..core.registry import LutRegistry, default_registry
from ..core.scaling import InputScaler
from ..transformer.nonlinear_backend import ALL_OPS, NonlinearBackend, _validate_replace

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "METHODS",
    "PRECISIONS",
    "OPERATOR_PRIMITIVES",
    "OperatorSpec",
    "BackendSpec",
    "build_backend",
    "as_backend",
]

SPEC_SCHEMA_VERSION = 1

#: Approximation methods an operator can be routed through.
METHODS: Tuple[str, ...] = ("exact", "nn_lut", "linear_lut", "ibert")

#: Table/datapath precisions of the LUT methods.
PRECISIONS: Tuple[str, ...] = ("fp32", "fp16", "int32")

#: Scalar primitives each Transformer operator consumes from a LUT registry.
OPERATOR_PRIMITIVES: Dict[str, Tuple[str, ...]] = {
    "gelu": ("gelu",),
    "softmax": ("exp", "reciprocal"),
    "layernorm": ("rsqrt",),
}

_METHOD_LABELS = {"nn_lut": "nn-lut", "linear_lut": "linear-lut", "ibert": "i-bert"}


def _typed_field(payload: Mapping[str, object], name: str, kind: type, default):
    """Fetch a payload field requiring an exact type (bool is not an int)."""
    value = payload.get(name, default)
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise ValueError(
            f"field {name!r} must be a {kind.__name__}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class OperatorSpec:
    """How one Transformer operator site is implemented.

    ``precision`` and ``num_entries`` only matter for the LUT methods;
    ``calibration`` marks the operator as a target of the dataset-free
    calibration workflow (:meth:`repro.api.InferenceSession.calibrate`).
    """

    method: str = "exact"
    precision: str = "fp32"
    num_entries: int = 16
    calibration: bool = False

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {self.method!r}")
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {self.precision!r}"
            )
        if self.num_entries < 2:
            raise ValueError(f"num_entries must be >= 2, got {self.num_entries}")
        if self.calibration and self.method not in ("nn_lut",):
            raise ValueError(
                "calibration re-fits NN-LUT tables; it requires method 'nn_lut', "
                f"got {self.method!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "precision": self.precision,
            "num_entries": self.num_entries,
            "calibration": self.calibration,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "OperatorSpec":
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"operator spec must be a mapping, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"method", "precision", "num_entries", "calibration"}
        if unknown:
            raise ValueError(f"unknown OperatorSpec field(s): {sorted(unknown)}")
        # Strict types, no coercion: a YAML/env-sourced string like "false"
        # must not silently become calibration=True.
        method = _typed_field(payload, "method", str, "exact")
        precision = _typed_field(payload, "precision", str, "fp32")
        num_entries = _typed_field(payload, "num_entries", int, 16)
        calibration = _typed_field(payload, "calibration", bool, False)
        return cls(
            method=method,
            precision=precision,
            num_entries=num_entries,
            calibration=calibration,
        )


def _operator_specs_for(
    method: str,
    replace: Sequence[str],
    precision: str,
    num_entries: int,
    calibration: bool,
) -> Dict[str, OperatorSpec]:
    ops = _validate_replace(replace)
    replaced = OperatorSpec(
        method=method,
        precision=precision,
        num_entries=num_entries,
        calibration=calibration,
    )
    return {op: (replaced if op in ops else OperatorSpec()) for op in ALL_OPS}


@dataclass(frozen=True)
class BackendSpec:
    """Declarative description of a complete non-linear operator backend.

    One :class:`OperatorSpec` per encoder operator site plus the global
    input-scaling switch (paper Sec. 3.3.2, LayerNorm's ``1/sqrt``).  Build
    the runnable backend with :func:`build_backend`; serialise with
    :meth:`to_dict` / :meth:`from_dict`.
    """

    gelu: OperatorSpec = field(default_factory=OperatorSpec)
    softmax: OperatorSpec = field(default_factory=OperatorSpec)
    layernorm: OperatorSpec = field(default_factory=OperatorSpec)
    input_scaling: bool = True
    name: str | None = None
    #: Compute kernel the realised backend routes its LUT composites and
    #: fused epilogues through ("numpy" or "native"); see repro.core.kernels.
    kernel: str = "numpy"

    def __post_init__(self) -> None:
        if self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"kernel must be one of {KERNEL_NAMES}, got {self.kernel!r}"
            )

    # ------------------------------------------------------------------ #
    # Constructors mirroring the paper's scenario matrix
    # ------------------------------------------------------------------ #
    @classmethod
    def exact(cls) -> "BackendSpec":
        """The exact reference backend (the tables' "Baseline" rows)."""
        return cls()

    @classmethod
    def nn_lut(
        cls,
        precision: str = "fp32",
        num_entries: int = 16,
        replace: Sequence[str] = ALL_OPS,
        input_scaling: bool = True,
        calibration: bool = False,
        name: str | None = None,
        kernel: str = "numpy",
    ) -> "BackendSpec":
        """NN-LUT on ``replace`` (the rest exact), at the given precision."""
        specs = _operator_specs_for("nn_lut", replace, precision, num_entries, calibration)
        return cls(input_scaling=input_scaling, name=name, kernel=kernel, **specs)

    @classmethod
    def linear_lut(
        cls,
        precision: str = "fp32",
        num_entries: int = 16,
        replace: Sequence[str] = ALL_OPS,
        input_scaling: bool = True,
        name: str | None = None,
        kernel: str = "numpy",
    ) -> "BackendSpec":
        """Linear-mode LUT baseline on ``replace`` (the rest exact)."""
        specs = _operator_specs_for("linear_lut", replace, precision, num_entries, False)
        return cls(input_scaling=input_scaling, name=name, kernel=kernel, **specs)

    @classmethod
    def ibert(cls, replace: Sequence[str] = ALL_OPS, name: str | None = None) -> "BackendSpec":
        """I-BERT integer approximations on ``replace`` (the rest exact)."""
        specs = _operator_specs_for("ibert", replace, "int32", 16, False)
        return cls(name=name, **specs)

    @classmethod
    def from_method(cls, method: str, **kwargs: object) -> "BackendSpec":
        """Dispatch to the constructor for ``method`` (sweep helpers use this).

        Strict: arguments the method's constructor does not take (e.g. a
        ``precision`` for ``ibert``, anything for ``exact``) raise instead of
        being silently dropped — a sweep must not fabricate distinct-looking
        rows that are actually the same backend.
        """
        if method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {method!r}")
        constructor = {
            "exact": cls.exact,
            "nn_lut": cls.nn_lut,
            "linear_lut": cls.linear_lut,
            "ibert": cls.ibert,
        }[method]
        accepted = inspect.signature(constructor).parameters
        unexpected = sorted(set(kwargs) - set(accepted))
        if unexpected:
            raise ValueError(
                f"method {method!r} does not accept {unexpected}; "
                f"allowed arguments: {sorted(accepted)}"
            )
        # Value/type errors from the constructor's own validation propagate
        # unchanged — they point at the real problem, not the kwarg names.
        return constructor(**kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def operators(self) -> Dict[str, OperatorSpec]:
        """Operator name -> its :class:`OperatorSpec` (keys = ``ALL_OPS``)."""
        return {"gelu": self.gelu, "softmax": self.softmax, "layernorm": self.layernorm}

    def replaced(self) -> Tuple[str, ...]:
        """Operators not running the exact reference implementation."""
        return tuple(op for op, spec in self.operators().items() if spec.method != "exact")

    def calibrated(self) -> Tuple[str, ...]:
        """Operators flagged for the dataset-free calibration workflow."""
        return tuple(op for op, spec in self.operators().items() if spec.calibration)

    def with_calibration(self, *operators: str) -> "BackendSpec":
        """Copy of this spec with ``calibration=True`` on the given operators."""
        ops = _validate_replace(operators or self.replaced())
        if not ops:
            raise ValueError(
                "with_calibration() on a spec with no replaced operators: "
                "there is nothing to flag for calibration"
            )
        updates = {
            op: dataclass_replace(self.operators()[op], calibration=True) for op in ops
        }
        return dataclass_replace(self, **updates)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload; ``from_dict`` round-trips it exactly."""
        return {
            "version": SPEC_SCHEMA_VERSION,
            "operators": {op: spec.to_dict() for op, spec in self.operators().items()},
            "input_scaling": self.input_scaling,
            "name": self.name,
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "BackendSpec":
        unknown = set(payload) - {
            "version", "operators", "input_scaling", "name", "kernel",
        }
        if unknown:
            raise ValueError(f"unknown BackendSpec field(s): {sorted(unknown)}")
        version = payload.get("version", SPEC_SCHEMA_VERSION)
        if version != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported BackendSpec version {version!r} "
                f"(this build reads version {SPEC_SCHEMA_VERSION})"
            )
        if "operators" not in payload:
            # An absent section must not silently deserialise as the exact
            # baseline — even BackendSpec.exact().to_dict() spells it out.
            raise ValueError(
                "'operators' section is required; a truncated payload would "
                "otherwise silently serve the exact baseline"
            )
        operators = payload["operators"]
        if not isinstance(operators, Mapping):
            raise ValueError("'operators' must be a mapping of operator name -> spec")
        _validate_replace(operators)
        parsed = {
            op: OperatorSpec.from_dict(op_payload) for op, op_payload in operators.items()
        }
        missing = [op for op in ALL_OPS if op not in parsed]
        if missing:
            # Same rationale as requiring the section itself: a partially
            # stripped payload must not silently downgrade operators to the
            # exact baseline.
            raise ValueError(
                f"'operators' must describe every operator; missing {missing} "
                f"(to_dict() always writes all of {ALL_OPS})"
            )
        specs = {op: parsed[op] for op in ALL_OPS}
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise ValueError(f"field 'name' must be a str or None, got {name!r}")
        return cls(
            input_scaling=_typed_field(payload, "input_scaling", bool, True),
            name=name,
            kernel=_typed_field(payload, "kernel", str, "numpy"),
            **specs,
        )


# --------------------------------------------------------------------------- #
# Spec -> backend factory
# --------------------------------------------------------------------------- #
def _table_in_precision(
    lut: Callable, precision: str, primitive: str
) -> Callable:
    """Wrap a float LUT in the requested table/datapath precision."""
    if precision == "fp32":
        return lut
    if precision == "fp16":
        return quantize_lut_fp16(lut)
    if precision == "int32":
        return quantize_lut_int32(lut, input_range=get_training_range(primitive))
    raise ValueError(f"precision must be one of {PRECISIONS}, got {precision!r}")


def _primitive_table(
    primitive: str,
    operator_spec: OperatorSpec,
    registry: LutRegistry,
    lut_overrides: Mapping[str, LookupTable],
) -> Callable:
    """The (precision-wrapped) scalar table one operator needs."""
    lut = lut_overrides.get(primitive)
    if lut is None:
        if operator_spec.method == "linear_lut":
            lut = linear_lut_for(primitive, num_entries=operator_spec.num_entries)
        else:
            lut = registry.lut(primitive, num_entries=operator_spec.num_entries)
    return _table_in_precision(lut, operator_spec.precision, primitive)


def _default_name(spec: BackendSpec, has_overrides: bool) -> str:
    methods = {s.method for s in spec.operators().values() if s.method != "exact"}
    if not methods:
        return "exact"
    if len(methods) > 1:
        return "mixed"
    method = methods.pop()
    if method == "ibert":
        return "i-bert"
    precisions = {
        s.precision for s in spec.operators().values() if s.method == method
    }
    precision = precisions.pop() if len(precisions) == 1 else "mixed"
    suffix = "+cal" if has_overrides else ""
    return f"{_METHOD_LABELS[method]}-{precision}{suffix}"


def build_backend(
    spec: BackendSpec,
    registry: LutRegistry | None = None,
    lut_overrides: Mapping[str, LookupTable] | None = None,
) -> NonlinearBackend:
    """Realise a :class:`BackendSpec` as a runnable backend.

    Parameters
    ----------
    spec:
        The declarative backend description.
    registry:
        Source of fitted NN-LUT primitives; defaults to the process-wide
        registry.  Ignored by operators whose method needs no fitted tables.
    lut_overrides:
        Replacement tables per scalar primitive (``"gelu"``, ``"exp"``,
        ``"reciprocal"``, ``"rsqrt"``) — e.g. calibrated variants produced by
        :meth:`repro.api.InferenceSession.calibrate`.  Overrides apply to the
        LUT methods only.
    """
    if not isinstance(spec, BackendSpec):
        raise TypeError(f"spec must be a BackendSpec, got {type(spec).__name__}")
    registry = registry or default_registry()
    overrides = dict(lut_overrides or {})
    known_primitives = {p for prims in OPERATOR_PRIMITIVES.values() for p in prims}
    unknown = set(overrides) - known_primitives
    if unknown:
        raise ValueError(
            f"unknown lut_overrides primitive(s) {sorted(unknown)}; "
            f"known: {sorted(known_primitives)}"
        )

    gelu_spec, softmax_spec, layernorm_spec = spec.gelu, spec.softmax, spec.layernorm

    gelu_op: Callable = ExactGelu()
    if gelu_spec.method == "ibert":
        gelu_op = IBertGelu()
    elif gelu_spec.method != "exact":
        gelu_op = LutGelu(_primitive_table("gelu", gelu_spec, registry, overrides))

    softmax_op: Callable = ExactSoftmax()
    if softmax_spec.method == "ibert":
        softmax_op = IBertSoftmax()
    elif softmax_spec.method != "exact":
        softmax_op = LutSoftmax(
            _primitive_table("exp", softmax_spec, registry, overrides),
            _primitive_table("reciprocal", softmax_spec, registry, overrides),
        )

    layernorm_op: Callable = ExactLayerNorm()
    if layernorm_spec.method == "ibert":
        layernorm_op = IBertLayerNorm()
    elif layernorm_spec.method != "exact":
        layernorm_op = LutLayerNorm(
            _primitive_table("rsqrt", layernorm_spec, registry, overrides),
            scaler=InputScaler() if spec.input_scaling else None,
        )

    kernel = None
    if spec.kernel != "numpy":
        # May legitimately come back as the numpy kernel (graceful fallback,
        # one warning per process) — results are identical either way, so the
        # spec still round-trips as declared.
        kernel = resolve_kernel(spec.kernel)
        for op_obj in (gelu_op, softmax_op, layernorm_op):
            if isinstance(op_obj, (LutGelu, LutSoftmax, LutLayerNorm)):
                op_obj.kernel = kernel

    name = spec.name or _default_name(spec, bool(overrides))
    return NonlinearBackend(
        name=name,
        gelu=gelu_op,
        softmax=softmax_op,
        layernorm=layernorm_op,
        kernel=kernel,
        metadata={
            "method": name,
            "replaced": spec.replaced(),
            "input_scaling": spec.input_scaling,
            "calibrated_primitives": tuple(sorted(overrides)),
            "kernel": spec.kernel,
            "spec": spec.to_dict(),
        },
    )


def as_backend(
    backend_or_spec: NonlinearBackend | BackendSpec | None,
    registry: LutRegistry | None = None,
) -> NonlinearBackend:
    """Coerce ``None`` / a spec / a built backend into a runnable backend.

    ``None`` means the exact reference backend — the convention every
    evaluation entry point shares.
    """
    if backend_or_spec is None:
        return build_backend(BackendSpec.exact(), registry=registry)
    if isinstance(backend_or_spec, BackendSpec):
        return build_backend(backend_or_spec, registry=registry)
    if isinstance(backend_or_spec, NonlinearBackend):
        return backend_or_spec
    raise TypeError(
        "expected a BackendSpec, a NonlinearBackend or None, "
        f"got {type(backend_or_spec).__name__}"
    )
