"""Serving-grade entry point: declarative specs -> prepared sessions.

The two halves of the API:

* :class:`BackendSpec` + :func:`build_backend` — a serializable description
  of how each Transformer non-linearity is approximated (method x precision
  x entries x calibration), realised into a runnable backend.
* :class:`SessionConfig` + :class:`InferenceSession` — model family, size,
  seed and quantised-linear engine, prepared once into a session that serves
  ragged request lists with dynamic micro-batching and offers the built-in
  dataset-free :meth:`~InferenceSession.calibrate` workflow.
* :class:`SessionPool` + :class:`ServingQueue` — the concurrent serving
  layer: replica sessions over one shared frozen model, plus a
  batch-coalescing scheduler with deadlines, overload rejection, pluggable
  routing, live fleet membership, optional autoscaling, and latency
  statistics (facade in :mod:`repro.api.server`; the scheduler seams in
  :mod:`repro.api.scheduling`).
* :class:`ShardedPool` — the same :class:`ReplicaPool` protocol served from
  worker *processes* over shared-memory weights, lifting the GIL ceiling on
  multi-core machines (see :mod:`repro.api.sharding`), with a pluggable
  :class:`WorkerTransport` for the request/response channel — pickle over a
  pipe, or zero-copy shared-memory rings (see :mod:`repro.api.transport`).
* Resilience & chaos testing — :class:`RetryPolicy` /
  :class:`CircuitBreakerConfig` harden a :class:`ServingQueue` against
  replica failure (retries with backoff, per-replica breakers, in-flight
  deadline propagation, checksummed ring frames surfacing
  :class:`TransportIntegrityError`), and :class:`FaultPlan` /
  :func:`inject` arm deterministic fault schedules at the serving seams
  to *prove* it (see :mod:`repro.api.faults`).

Every experiment, example and benchmark in the repo goes through this
surface; the legacy ``*_backend()`` constructors in
``repro.transformer.nonlinear_backend`` are deprecated shims over it.
"""

from .batching import MicroBatch, RequestBatcher
from .faults import FaultInjector, FaultPlan, InjectedFaultError, inject
from .scheduling import (
    ROUTERS,
    AutoscaleDecision,
    Autoscaler,
    AutoscalerConfig,
    CircuitBreakerConfig,
    DeterministicRouter,
    LeastLoadedRouter,
    ReplicaStats,
    RetryPolicy,
    Router,
    create_router,
)
from .server import (
    DeadlineExceededError,
    QueueFullError,
    ReplicaPool,
    ServerClosedError,
    ServingFuture,
    ServingQueue,
    ServingStats,
    SessionPool,
)
from .session import (
    MODEL_FAMILIES,
    InferenceSession,
    SessionConfig,
    attach_weight_state,
    calibrate_primitive_luts,
    export_weight_state,
)
from .sharding import ShardedPool, SharedWeightStore, WorkerDiedError
from .transport import (
    TRANSPORTS,
    PipeTransport,
    ShmRingTransport,
    TransportError,
    TransportIntegrityError,
    WorkerTransport,
    create_transport,
)
from .spec import (
    METHODS,
    OPERATOR_PRIMITIVES,
    PRECISIONS,
    SPEC_SCHEMA_VERSION,
    BackendSpec,
    OperatorSpec,
    as_backend,
    build_backend,
)

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "METHODS",
    "PRECISIONS",
    "OPERATOR_PRIMITIVES",
    "OperatorSpec",
    "BackendSpec",
    "build_backend",
    "as_backend",
    "MicroBatch",
    "RequestBatcher",
    "MODEL_FAMILIES",
    "SessionConfig",
    "InferenceSession",
    "calibrate_primitive_luts",
    "export_weight_state",
    "attach_weight_state",
    "ReplicaPool",
    "SessionPool",
    "ShardedPool",
    "SharedWeightStore",
    "WorkerDiedError",
    "TRANSPORTS",
    "WorkerTransport",
    "PipeTransport",
    "ShmRingTransport",
    "TransportError",
    "TransportIntegrityError",
    "create_transport",
    "ServingQueue",
    "ServingFuture",
    "ServingStats",
    "ReplicaStats",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "ROUTERS",
    "Router",
    "DeterministicRouter",
    "LeastLoadedRouter",
    "create_router",
    "Autoscaler",
    "AutoscaleDecision",
    "AutoscalerConfig",
    "RetryPolicy",
    "CircuitBreakerConfig",
    "FaultPlan",
    "FaultInjector",
    "InjectedFaultError",
    "inject",
]
