"""Prepared inference sessions: one serving-grade entry point per scenario.

I-BERT's deployment discipline is *prepare once, run many*: quantise the
weights, fix the tables, then serve.  :class:`InferenceSession` packages that
for this repo — a :class:`SessionConfig` (model family x size x seed x
engine precision) plus a :class:`~repro.api.spec.BackendSpec` fully determine
a session, and constructing it does all the one-time work:

* the encoder model is built (or adopted) and every linear layer's weight
  operand is prepared up front, so the first request pays no quantisation
  cost;
* the non-linear backend is realised from the spec exactly once;
* a :class:`~repro.api.batching.RequestBatcher` is armed for dynamic
  micro-batching of ragged request lists.

``forward`` / ``pooled`` / ``classify`` then serve arbitrary mixes of
sequence lengths; ``calibrate`` runs the paper's dataset-free calibration
(Sec. 3.3.3) end to end — record operator-site inputs on unlabelled traffic,
re-fit the flagged NN-LUT primitives, swap the refreshed tables in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core import functions
from ..core.calibration import CalibrationConfig, calibrate_network
from ..core.conversion import network_to_lut
from ..core.functions import get_training_range
from ..core.kernels import KERNEL_NAMES
from ..core.lut import LookupTable
from ..core.registry import LutRegistry, default_registry
from ..core.scaling import InputScaler
from ..transformer.config import (
    TransformerConfig,
    mobilebert_config,
    mobilebert_like_small_config,
    roberta_base_config,
    roberta_like_small_config,
    tiny_test_config,
)
from ..transformer.heads import ClassificationHead
from ..transformer.models import EncoderModel
from ..transformer.nonlinear_backend import (
    ALL_OPS,
    NonlinearBackend,
    OperatorRecorder,
    _validate_replace,
)
from . import faults as _faults
from .batching import RequestBatcher
from .spec import BackendSpec, build_backend

__all__ = [
    "MODEL_FAMILIES",
    "SessionConfig",
    "InferenceSession",
    "adopted_model_config",
    "calibrate_primitive_luts",
    "export_weight_state",
    "attach_weight_state",
]


def _resolve_classification_head(head) -> ClassificationHead:
    """Unwrap/validate a classification head (shared by session and pool).

    Accepts either a bare head (``predict(features)``) or one of the
    finetuning flow's ``Finetuned*`` wrappers — those hold the real head in
    ``.head`` and their own ``predict()`` takes a *backend* and scores the
    task's stored test set, which is not the serving contract.
    """
    inner = getattr(head, "head", None)
    if inner is not None:
        head = inner
    if not isinstance(head, ClassificationHead):
        raise TypeError(
            "classify requires a ClassificationHead (or a Finetuned wrapper "
            f"around one), got {type(head).__name__} — span/regression heads "
            "score token features, not pooled requests"
        )
    return head

# --------------------------------------------------------------------------- #
# Weight export/attach: one flat view of a frozen encoder's master arrays
# --------------------------------------------------------------------------- #
def _weight_slots(model: EncoderModel):
    """Yield ``(name, owner, attribute)`` for every float64 master array.

    The names are stable across processes for a given architecture, which is
    what lets :mod:`repro.api.sharding` ship a model's weights through
    ``multiprocessing.shared_memory`` by name and re-attach them on the
    worker side.
    """
    yield "embedding.token_table", model.embedding, "token_table"
    yield "embedding.position_table", model.embedding, "position_table"
    yield "embedding_norm.gamma", model.embedding_norm, "gamma"
    yield "embedding_norm.beta", model.embedding_norm, "beta"
    for index, layer in enumerate(model.encoder.layers):
        attention = layer.attention
        linears = (
            (f"layers.{index}.attention.query", attention.query),
            (f"layers.{index}.attention.key", attention.key),
            (f"layers.{index}.attention.value", attention.value),
            (f"layers.{index}.attention.output", attention.output),
            (f"layers.{index}.ffn_in", layer.ffn_in),
            (f"layers.{index}.ffn_out", layer.ffn_out),
        )
        for name, linear in linears:
            yield f"{name}.weight", linear, "weight"
            yield f"{name}.bias", linear, "bias"
        norms = (
            (f"layers.{index}.attention_norm", layer.attention_norm),
            (f"layers.{index}.output_norm", layer.output_norm),
        )
        for name, norm in norms:
            yield f"{name}.gamma", norm, "gamma"
            yield f"{name}.beta", norm, "beta"
    yield "pooler.weight", model.pooler, "weight"
    yield "pooler.bias", model.pooler, "bias"


def export_weight_state(model: EncoderModel) -> Dict[str, np.ndarray]:
    """Every master weight array of ``model``, keyed by a stable flat name.

    The returned arrays are the model's own (no copies); pair with
    :func:`attach_weight_state` to move a frozen encoder's parameters into
    externally-managed storage (e.g. shared memory) or into a freshly-built
    model of the same architecture.
    """
    return {name: getattr(owner, attr) for name, owner, attr in _weight_slots(model)}


def attach_weight_state(
    model: EncoderModel, arrays: Mapping[str, np.ndarray]
) -> None:
    """Rebind ``model``'s master arrays to ``arrays`` (same names/shapes).

    ``arrays`` must cover exactly the names :func:`export_weight_state`
    produces for this architecture, with matching shapes and dtypes — a
    partial or mismatched set raises before anything is rebound.  Read-only
    arrays (shared-memory mappings) are fine: the engine never writes master
    arrays in place.  Rebinding invalidates the derived caches automatically
    (``Linear`` prepared operands and norm-parameter casts key on array
    identity), so callers that want the prepare-once discipline should call
    ``prepare()`` on the linears afterwards.
    """
    slots = list(_weight_slots(model))
    expected = {name for name, _, _ in slots}
    missing = sorted(expected - set(arrays))
    extra = sorted(set(arrays) - expected)
    if missing or extra:
        raise ValueError(
            f"weight state does not match the model's architecture "
            f"(missing: {missing}, unexpected: {extra})"
        )
    for name, owner, attr in slots:
        current = getattr(owner, attr)
        replacement = np.asarray(arrays[name])
        if replacement.shape != current.shape or replacement.dtype != current.dtype:
            raise ValueError(
                f"weight {name!r} must have shape {current.shape} and dtype "
                f"{current.dtype}, got {replacement.shape} / {replacement.dtype}"
            )
    for name, owner, attr in slots:
        setattr(owner, attr, np.asarray(arrays[name]))


#: (family, size) -> TransformerConfig factory.
MODEL_FAMILIES: Dict[str, Dict[str, object]] = {
    "roberta": {"small": roberta_like_small_config, "full": roberta_base_config},
    "mobilebert": {"small": mobilebert_like_small_config, "full": mobilebert_config},
    "tiny": {"small": tiny_test_config, "full": tiny_test_config},
}


def _canonical_override(value: object) -> object:
    """Recursively rewrite an override value into a hashable canonical form.

    Mappings become sorted ``(key, value)`` pair tuples, sequences and sets
    become tuples — so ``{"x": [1, 2]}`` and ``{"x": (1, 2)}`` canonicalise
    (and hash) identically, and a JSON round-trip through ``to_dict`` (which
    emits lists) compares equal to the original.
    """
    if isinstance(value, Mapping):
        return tuple(sorted((k, _canonical_override(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_override(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_canonical_override(v) for v in value), key=repr))
    return value


def _jsonable_override(value: object) -> object:
    """Canonical form back to a JSON-friendly shape (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_jsonable_override(v) for v in value]
    return value


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to prepare an :class:`InferenceSession`.

    ``model_family`` / ``model_size`` select the encoder architecture,
    ``seed`` its frozen weights (the stand-in for a checkpoint identity),
    ``matmul_precision`` the quantised-linear engine (``fp32``/``fp16``/
    ``int8``) and ``compute_dtype`` the engine float width (``float64``
    reproduces per-call outputs bit for bit on the float engines).  The
    ``int8`` engine is the exception: it derives one activation scale per
    packed tensor (the I-BERT per-tensor convention), so there batch
    composition legitimately affects the quantisation — per-call parity
    holds for ``fp32``/``fp16`` matmuls only.  ``max_batch_size`` and
    ``bucket_size`` shape the dynamic micro-batching; ``model_overrides``
    are forwarded to the architecture's config factory.
    """

    model_family: str = "roberta"
    model_size: str = "small"
    seed: int = 0
    compute_dtype: str = "float32"
    matmul_precision: str = "fp32"
    kernel: str = "numpy"
    max_batch_size: int = 32
    bucket_size: int = 1
    #: Accepts any mapping; stored canonically as sorted (key, value) pairs
    #: with nested lists/dicts/sets rewritten to tuples, so the frozen config
    #: stays hashable like its sibling BackendSpec even for container-valued
    #: overrides (a factory receiving such an override gets the tuple form).
    model_overrides: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        items = []
        for key, value in sorted(dict(self.model_overrides).items()):
            value = _canonical_override(value)
            try:
                hash(value)
            except TypeError:
                raise TypeError(
                    f"model_overrides[{key!r}] is not hashable even after "
                    f"canonicalising containers to tuples (got "
                    f"{type(value).__name__}); SessionConfig values must stay "
                    "usable as dict keys"
                ) from None
            items.append((key, value))
        object.__setattr__(self, "model_overrides", tuple(items))
        if self.model_family != "custom":
            if self.model_family not in MODEL_FAMILIES:
                raise ValueError(
                    f"model_family must be one of {sorted(MODEL_FAMILIES) + ['custom']}, "
                    f"got {self.model_family!r}"
                )
            if self.model_size not in MODEL_FAMILIES[self.model_family]:
                raise ValueError(
                    f"model_size must be one of "
                    f"{sorted(MODEL_FAMILIES[self.model_family])}, got {self.model_size!r}"
                )
        if self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"kernel must be one of {KERNEL_NAMES}, got {self.kernel!r}"
            )
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {self.bucket_size}")

    def transformer_config(self) -> TransformerConfig:
        """The resolved encoder configuration (validates engine settings)."""
        if self.model_family == "custom":
            # `custom` marks a session built over an adopted model
            # (InferenceSession.from_model); the architecture was never
            # described by this config, so replaying it would silently
            # rebuild the wrong model.
            raise ValueError(
                "a 'custom' SessionConfig adopts an existing model and cannot "
                "rebuild one; construct the model yourself and use "
                "InferenceSession.from_model"
            )
        factory = MODEL_FAMILIES[self.model_family][self.model_size]
        return factory(
            matmul_precision=self.matmul_precision,
            compute_dtype=self.compute_dtype,
            kernel=self.kernel,
            **dict(self.model_overrides),
        )

    def build_model(self) -> EncoderModel:
        """A freshly initialised frozen encoder for this configuration."""
        return EncoderModel.initialize(self.transformer_config(), seed=self.seed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "model_family": self.model_family,
            "model_size": self.model_size,
            "seed": self.seed,
            "compute_dtype": self.compute_dtype,
            "matmul_precision": self.matmul_precision,
            "kernel": self.kernel,
            "max_batch_size": self.max_batch_size,
            "bucket_size": self.bucket_size,
            "model_overrides": {
                key: _jsonable_override(value) for key, value in self.model_overrides
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SessionConfig":
        known = {
            "model_family", "model_size", "seed", "compute_dtype",
            "matmul_precision", "kernel", "max_batch_size", "bucket_size",
            "model_overrides",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown SessionConfig field(s): {sorted(unknown)}")
        values = {key: payload[key] for key in known if key in payload}
        if "model_overrides" in values:
            values["model_overrides"] = dict(values["model_overrides"])
        return cls(**values)


def adopted_model_config(
    model: EncoderModel,
    max_batch_size: int = 32,
    bucket_size: int = 1,
    seed: int = 0,
) -> SessionConfig:
    """The ``"custom"`` :class:`SessionConfig` describing an adopted model.

    The single definition of the config every ``from_model``-style
    constructor (session, thread pool, sharded pool, worker replica) builds:
    engine settings copied from the model, batching knobs from the caller,
    deliberately unable to rebuild the model itself.
    """
    return SessionConfig(
        model_family="custom",
        seed=seed,
        compute_dtype=model.config.compute_dtype,
        matmul_precision=model.config.matmul_precision,
        kernel=model.config.kernel,
        max_batch_size=max_batch_size,
        bucket_size=bucket_size,
    )


class InferenceSession:
    """A prepared (model, backend) pair serving ragged request lists.

    Parameters
    ----------
    config:
        Session configuration; defaults to the small RoBERTa-like scenario.
    spec:
        Backend specification; defaults to the exact reference backend.
    registry:
        Fitted-primitive source for the NN-LUT methods (process-wide
        registry by default).
    model:
        Adopt an existing encoder instead of building one from ``config``
        (``config`` then only supplies the batching knobs).
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        spec: BackendSpec | None = None,
        registry: LutRegistry | None = None,
        model: EncoderModel | None = None,
    ) -> None:
        if model is not None:
            # An adopted model must be described honestly: a named-family
            # config alongside it would log/replay a different model.
            if config is None:
                config = adopted_model_config(model)
            elif config.model_family != "custom":
                raise ValueError(
                    "when adopting an existing model, pass a SessionConfig with "
                    "model_family='custom' (or use InferenceSession.from_model); "
                    f"a {config.model_family!r} config would misdescribe the session"
                )
            else:
                mismatched = [
                    f"{name}={getattr(config, name)!r} (model runs {actual!r})"
                    for name, actual in (
                        ("compute_dtype", model.config.compute_dtype),
                        ("matmul_precision", model.config.matmul_precision),
                        ("kernel", model.config.kernel),
                    )
                    if getattr(config, name) != actual
                ]
                if mismatched:
                    raise ValueError(
                        "custom SessionConfig engine settings must match the "
                        f"adopted model: {'; '.join(mismatched)}"
                    )
        self.config = config or SessionConfig()
        self.spec = spec or BackendSpec.exact()
        if self.config.kernel != "numpy" and self.spec.kernel == "numpy":
            # One knob drives the whole engine: a session configured for the
            # native kernel also routes the backend's LUT composites through
            # it, unless the spec explicitly pinned a kernel of its own.
            self.spec = dataclass_replace(self.spec, kernel=self.config.kernel)
        self.registry = registry or default_registry()
        self.model = model if model is not None else self.config.build_model()
        self.lut_overrides: Dict[str, LookupTable] = {}
        self.backend: NonlinearBackend = build_backend(self.spec, registry=self.registry)
        self._batcher = RequestBatcher(
            max_batch_size=self.config.max_batch_size,
            bucket_size=self.config.bucket_size,
        )
        for linear in self.model.iter_linears():
            linear.prepare()

    @classmethod
    def from_model(
        cls,
        model: EncoderModel,
        spec: BackendSpec | None = None,
        registry: LutRegistry | None = None,
        max_batch_size: int = 32,
        bucket_size: int = 1,
    ) -> "InferenceSession":
        """Session over an already-built encoder (its engine settings win).

        The resulting ``config`` carries ``model_family="custom"``: it
        records the engine/batching knobs but deliberately cannot rebuild
        the adopted model (replaying it would reconstruct the wrong one).
        """
        config = adopted_model_config(
            model, max_batch_size=max_batch_size, bucket_size=bucket_size
        )
        return cls(config=config, spec=spec, registry=registry, model=model)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    @property
    def max_sequence_length(self) -> int:
        return self.model.config.max_sequence_length

    def _serve(self, requests: Sequence[np.ndarray], consume) -> List[np.ndarray]:
        """One micro-batched serving loop shared by the serving surfaces.

        ``consume(hidden, row, length, index)`` extracts request ``index``'s
        result from a batch's hidden states; results come back in request
        order.
        """
        outputs: List[np.ndarray | None] = [None] * len(requests)
        for batch in self._batcher.iter_batches(
            requests, self.max_sequence_length, copy=False
        ):
            hidden = self.model.forward(
                batch.tokens, backend=self.backend, attention_mask=batch.mask
            )
            for row, index in enumerate(batch.indices):
                outputs[index] = consume(hidden, row, batch.lengths[row], index)
        return outputs  # type: ignore[return-value]

    def forward(self, requests: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Hidden states per request, shape ``(len_i, hidden)`` each.

        Requests are served in dynamically formed micro-batches; results come
        back in request order, trimmed to each request's true length.
        """
        if _faults._ACTIVE is not None:
            _faults._ACTIVE.on_session_forward()
        return self._serve(
            requests, lambda hidden, row, length, index: hidden[row, :length].copy()
        )

    def forward_packed(
        self, requests: Sequence[np.ndarray], out: np.ndarray | None = None
    ) -> Tuple[List[int], np.ndarray]:
        """Hidden states for ``requests`` packed into one flat row buffer.

        The packed layout — per-request lengths plus all result rows
        concatenated along axis 0 (``RequestBatcher.pack_ragged``'s shape) —
        is what the shared-memory response rings ship, and ``out=`` is the
        point of this method: a shard worker passes the ring's own memory,
        so each request's rows are written *into the ring* as they come out
        of the encoder instead of being materialised and then serialised.
        Returns ``(lengths, flat)`` with ``flat`` of shape
        ``(sum(lengths), hidden)`` in the engine's compute dtype; row block
        ``i`` is bitwise-identical to ``forward(requests)[i]``.
        """
        lengths = [int(np.asarray(request).shape[0]) for request in requests]
        offsets = [0] * len(lengths)
        total = 0
        for i, length in enumerate(lengths):
            offsets[i] = total
            total += length
        hidden_size = self.model.config.hidden_size
        dtype = np.dtype(self.model.config.compute_dtype)
        if out is None:
            out = np.empty((total, hidden_size), dtype=dtype)
        elif out.shape != (total, hidden_size) or out.dtype != dtype:
            raise ValueError(
                f"out must have shape {(total, hidden_size)} and dtype "
                f"{dtype}, got {out.shape} / {out.dtype}"
            )

        def consume(hidden, row, length, index):
            start = offsets[index]
            out[start : start + length] = hidden[row, :length]
            return None

        self._serve(requests, consume)
        return lengths, out

    def pooled(self, requests: Sequence[np.ndarray]) -> np.ndarray:
        """First-token (``[CLS]``) representations, shape ``(n, hidden)``.

        The encoder runs micro-batched; the (cheap) tanh pooler then runs per
        sequence, because a batched ``(n, hidden)`` pooler matmul takes a
        different BLAS path than the per-call ``(1, hidden)`` one and would
        break bit-exact parity with per-request inference.
        """
        rows = self._serve(
            requests,
            lambda hidden, row, length, index: self.model.pool_hidden(
                hidden[row : row + 1]
            )[0],
        )
        if not rows:
            hidden_size = self.model.config.hidden_size
            return np.empty(
                (0, hidden_size), dtype=np.dtype(self.model.config.compute_dtype)
            )
        return np.stack(rows, axis=0)

    def classify(self, requests: Sequence[np.ndarray], head) -> np.ndarray:
        """Predicted labels for ``requests`` from a fitted classification head.

        See :func:`_resolve_classification_head` for the accepted head forms.
        """
        return _resolve_classification_head(head).predict(self.pooled(requests))

    def forward_batch(
        self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Rectangular passthrough for callers that batch on their own."""
        return self.model.forward(
            token_ids, backend=self.backend, attention_mask=attention_mask
        )

    # ------------------------------------------------------------------ #
    # Dataset-free calibration (paper Sec. 3.3.3)
    # ------------------------------------------------------------------ #
    def calibrate(
        self,
        samples: Sequence[np.ndarray],
        config: CalibrationConfig | None = None,
        operators: Sequence[str] | None = None,
    ) -> Dict[str, LookupTable]:
        """Re-fit NN-LUT tables on what this model actually computes.

        Runs the *exact* reference backend over the unlabelled ``samples``
        (ragged token sequences, micro-batched like normal traffic) while
        recording the operator-site inputs, re-fits the scalar primitives of
        the selected operators against their reference functions on that
        distribution, and swaps the calibrated tables into this session's
        backend.  Returns the calibrated tables by primitive name.

        ``operators`` defaults to the spec's calibration-flagged operators,
        or to every NN-LUT operator when none is flagged.
        """
        spec_ops = self.spec.operators()
        if operators is None:
            operators = self.spec.calibrated() or tuple(
                op for op in ALL_OPS if spec_ops[op].method == "nn_lut"
            )
        operators = tuple(operators)
        if not operators:
            raise ValueError(
                "this spec routes no operator through NN-LUT tables; "
                "there is nothing to calibrate"
            )
        _validate_replace(operators)
        for op in operators:
            if spec_ops[op].method != "nn_lut":
                raise ValueError(
                    f"operator {op!r} uses method {spec_ops[op].method!r}; "
                    "calibration re-fits NN-LUT tables only"
                )

        reference = build_backend(BackendSpec.exact(), registry=self.registry)
        # Record through an exact-length batcher regardless of the session's
        # bucket_size: padded rows would otherwise leak pad-token activations
        # (and -1e4 masked scores) into the recorded distribution and skew
        # the re-fitted tables.
        recording_batcher = RequestBatcher(
            max_batch_size=self.config.max_batch_size, bucket_size=1
        )
        with reference.recording() as recorder:
            # Size the recorder to hold every operator site of every batch —
            # the default 256-array cap would silently truncate the recorded
            # distribution while the remaining samples still paid full
            # forward cost.  (One batch per sample is the upper bound; each
            # forward touches at most 2*layers+1 sites per operator.)
            sites_per_forward = 2 * self.model.encoder.num_layers + 1
            recorder.max_arrays_per_op = max(
                recorder.max_arrays_per_op, len(samples) * sites_per_forward
            )
            for batch in recording_batcher.iter_batches(
                samples, self.max_sequence_length, copy=False
            ):
                self.model.forward(batch.tokens, backend=reference)

        num_entries = {op: spec_ops[op].num_entries for op in operators}
        calibrated = calibrate_primitive_luts(
            recorder,
            self.registry,
            operators,
            num_entries,
            config=config,
            input_scaling=self.spec.input_scaling,
        )
        self.apply_lut_overrides(calibrated)
        return calibrated

    def apply_lut_overrides(self, overrides: Mapping[str, LookupTable]) -> None:
        """Swap replacement primitive tables into this session's backend.

        The tail of the :meth:`calibrate` flow, exposed so other holders of
        calibrated tables — replica pools, a session being cloned — can
        install them without re-running calibration.
        """
        self.lut_overrides.update(overrides)
        self.backend = build_backend(
            self.spec, registry=self.registry, lut_overrides=self.lut_overrides
        )

    def clone_for_serving(self) -> "InferenceSession":
        """A sibling session over the *same* frozen encoder.

        The clone adopts this session's model object (no weight copy), spec,
        registry and batching knobs, and inherits any calibrated LUT
        overrides, so a replica pool can grow by one serving handle without
        rebuilding or re-calibrating anything.  Mutable serving state — the
        batcher and the backend with its recorder — is fresh per clone,
        which is what makes the siblings safe to drive from separate
        threads.
        """
        clone = InferenceSession.from_model(
            self.model,
            spec=self.spec,
            registry=self.registry,
            max_batch_size=self.config.max_batch_size,
            bucket_size=self.config.bucket_size,
        )
        if self.lut_overrides:
            clone.apply_lut_overrides(self.lut_overrides)
        return clone


# --------------------------------------------------------------------------- #
# Recorded activations -> calibrated primitive tables
# --------------------------------------------------------------------------- #
def _operator_queries(
    recorder: OperatorRecorder, operator: str, input_scaling: bool = True
) -> Dict[str, np.ndarray]:
    """Scalar-primitive query points implied by one operator's recordings.

    ``input_scaling`` must mirror the serving backend's setting: it decides
    whether small LayerNorm variances are mapped to ``S * var`` (the
    Sec.-3.3.2 query transformation) before fitting — a table calibrated on
    scaled queries would otherwise never be hit at serving time.
    """
    if operator == "gelu":
        if not recorder.gelu_inputs:
            raise RuntimeError("no GELU activations were recorded for calibration")
        return {"gelu": np.concatenate([a.ravel() for a in recorder.gelu_inputs])}
    if operator == "softmax":
        if not recorder.softmax_inputs:
            raise RuntimeError("no Softmax activations were recorded for calibration")
        exp_queries: List[np.ndarray] = []
        reciprocal_queries: List[np.ndarray] = []
        exp_low, exp_high = get_training_range("exp")
        for recorded in recorder.softmax_inputs:
            shifted = recorded - np.max(recorded, axis=-1, keepdims=True)
            shifted = np.clip(shifted, exp_low, exp_high)
            exp_queries.append(shifted.ravel())
            reciprocal_queries.append(np.sum(np.exp(shifted), axis=-1).ravel())
        return {
            "exp": np.concatenate(exp_queries),
            "reciprocal": np.concatenate(reciprocal_queries),
        }
    if operator == "layernorm":
        if not recorder.layernorm_inputs:
            raise RuntimeError("no LayerNorm activations were recorded for calibration")
        variances: List[np.ndarray] = []
        for recorded in recorder.layernorm_inputs:
            mean = np.mean(recorded, axis=-1, keepdims=True)
            variance = np.mean((recorded - mean) ** 2, axis=-1) + 1e-5
            variances.append(variance.ravel())
        variance = np.concatenate(variances)
        if input_scaling:
            # The serving table is queried at S*var for small variances.
            scaler = InputScaler()
            variance = np.where(
                variance < scaler.threshold, variance * scaler.scale, variance
            )
        return {"rsqrt": variance}
    raise ValueError(f"Unknown operator {operator!r}; valid operators: {ALL_OPS}")


def _generic_samples(primitive: str, count: int, rng: np.random.Generator) -> np.ndarray:
    """Broad-distribution samples keeping a calibrated table's global shape."""
    low, high = get_training_range(primitive)
    if primitive == "gelu":
        return rng.uniform(low, high, size=count)
    if primitive == "exp":
        # Log-spaced magnitudes so the curvature near 0 stays represented.
        return -np.exp(rng.uniform(np.log(1e-4), np.log(-low), size=count))
    # reciprocal / rsqrt: log-uniform over (1, high), as the Table-2(b)
    # calibration recipe uses.
    return np.exp(rng.uniform(np.log(1.0), np.log(high), size=count))


def calibrate_primitive_luts(
    recorder: OperatorRecorder,
    registry: LutRegistry,
    operators: Sequence[str],
    num_entries: Mapping[str, int] | int = 16,
    config: CalibrationConfig | None = None,
    generic_share: float = 0.2,
    seed: int = 0,
    input_scaling: bool = True,
) -> Dict[str, LookupTable]:
    """Re-fit the scalar primitives behind ``operators`` on recorded traffic.

    For each operator the recorded site inputs are converted into the query
    points its scalar primitives actually see, mixed with a ``generic_share``
    of broad log/uniform samples over the training range (guarding against
    extrapolation damage outside the recorded distribution), and the
    registry's fitted network is re-trained against the exact reference
    (:class:`~repro.core.calibration.CalibrationConfig` defaults to the
    paper's five-epoch setting).  Returns calibrated tables keyed by
    primitive name — ready for ``build_backend(..., lut_overrides=...)``.
    """
    config = config or CalibrationConfig(epochs=5, learning_rate=5e-4)
    rng = np.random.default_rng(seed)
    calibrated: Dict[str, LookupTable] = {}
    for operator in operators:
        primitive_queries = _operator_queries(recorder, operator, input_scaling)
        for primitive, queries in primitive_queries.items():
            entries = (
                num_entries if isinstance(num_entries, int) else num_entries[operator]
            )
            num_generic = max(1, int(queries.size * generic_share))
            queries = np.concatenate(
                [queries, _generic_samples(primitive, num_generic, rng)]
            )
            fitted = registry.get(primitive, num_entries=entries)
            network = calibrate_network(
                fitted.network,
                functions.get_target_function(primitive),
                queries,
                config,
            )
            lut = network_to_lut(network, name=primitive)
            calibrated[primitive] = lut.with_metadata(
                calibrated=True, num_calibration_samples=int(queries.size)
            )
    return calibrated
