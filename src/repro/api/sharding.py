"""Multi-process sharded serving: replica sessions in worker processes.

:class:`~repro.api.server.SessionPool` parallelises replicas with *threads*,
which only helps where numpy's BLAS releases the GIL — the Python half of a
forward (operator dispatch, LUT bookkeeping, batch packing) still serialises.
This module lifts that ceiling: :class:`ShardedPool` serves the same replica
protocol from **worker processes**, each running its own interpreter, so the
whole forward parallelises across cores.

The construction honours the repo's prepare-once discipline and the PR-2
serializability contract:

* the parent builds (or adopts) the frozen encoder once, copies every master
  weight array into :class:`multiprocessing.shared_memory` blocks via
  :class:`SharedWeightStore`, and rebinds its *own* model onto those blocks —
  one copy of the weights per machine, no matter how many replicas
  (:meth:`ShardedPool.close` hands the model private writable arrays back);
* each worker reconstructs its :class:`~repro.api.session.InferenceSession`
  from the serializable ``SessionConfig.to_dict()`` / ``BackendSpec.to_dict()``
  payloads (the round-trip PR 2 built for exactly this), maps the weight
  blocks **read-only**, and receives the parent's already-fitted LUT tables
  (plus any calibrated overrides) by pickle — no worker ever re-fits a
  primitive or re-initialises weights it then throws away;
* :class:`ShardedPool` extends the :class:`~repro.api.server.ReplicaPool`
  protocol, so ``forward``/``pooled``/``classify`` shard micro-batches with
  the same deterministic ``j % N`` rule as the threaded pool and
  :class:`~repro.api.server.ServingQueue` runs on top of it unchanged;
* requests and results cross the process boundary through a pluggable
  :class:`~repro.api.transport.WorkerTransport` (``transport=`` knob):
  ``"pipe"`` pickles everything over a ``multiprocessing.Pipe``;
  ``"shm_ring"`` moves the hot-path payloads — packed token batches in,
  hidden-state rows out — through preallocated shared-memory rings and uses
  the pipe only as a doorbell/control channel and variable-shape fallback.

Parity: a worker's model is rebuilt from bit-identical weight bytes and its
backend from the very same fitted tables, so under ``compute_dtype="float64"``
with exact-length bucketing, sharded serving is **bitwise-equal** to
single-session serving — the same gate the threaded pool carries.

Failure behaviour: a worker that dies mid-request surfaces as
:class:`WorkerDiedError` on the caller (through a :class:`ServingQueue`, the
affected futures fail with a descriptive per-future error); the remaining
replicas keep serving direct per-replica traffic, and :meth:`ShardedPool.close`
always unlinks the shared-memory blocks — including when construction itself
fails halfway.

The ``int8`` engine keeps its documented caveat (one activation scale per
packed tensor), and gains a sharding-specific one: which *process* serves a
batch never changes its numerics, but batch composition still does.
"""

from __future__ import annotations

# staticcheck: pickle-boundary -- payloads here must survive pickling into spawned workers

import multiprocessing
import threading
import time
import traceback
import weakref
from multiprocessing import connection as mp_connection
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.lut import LookupTable
from ..core.registry import LutRegistry
from ..transformer.config import TransformerConfig
from ..transformer.models import EncoderModel
from . import faults as _faults
from .faults import FaultPlan
from .server import ReplicaPool
from .session import (
    InferenceSession,
    SessionConfig,
    adopted_model_config,
    attach_weight_state,
    export_weight_state,
)
from .spec import OPERATOR_PRIMITIVES, BackendSpec
from .transport import (
    TRANSPORTS,
    WorkerEndpoint,
    WorkerTransport,
    create_transport,
    serving_ring_bytes,
)

__all__ = [
    "WorkerDiedError",
    "SharedWeightStore",
    "ShardedPool",
]


class WorkerDiedError(RuntimeError):
    """A shard worker process exited while (or before) serving a request."""


#: Manifest row: (array name, shm block name, shape, dtype string).
_ManifestRow = Tuple[str, str, Tuple[int, ...], str]


def _close_handles(handles: Sequence[shared_memory.SharedMemory]) -> None:
    """Close attached block handles, tolerating still-exported buffers."""
    for handle in handles:
        try:
            handle.close()
        except BufferError:
            pass


class SharedWeightStore:
    """Frozen weight arrays in named ``multiprocessing.shared_memory`` blocks.

    The creating process copies each array into its own block exactly once;
    any process holding the :meth:`manifest` can :meth:`attach` and get
    read-only numpy views onto the same physical pages.  N worker replicas
    therefore share *one* copy of the weights per machine.

    :meth:`unlink` is idempotent and safe to call with views still alive:
    the block names are removed immediately (no new process can attach), and
    the memory itself is released once the last mapping goes away.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        self._manifest: List[_ManifestRow] = []
        self._unlinked = False
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                block = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
                view[...] = array
                self._blocks[name] = block
                self._manifest.append(
                    (name, block.name, tuple(array.shape), array.dtype.str)
                )
        except BaseException:
            self.unlink()
            raise

    def manifest(self) -> List[_ManifestRow]:
        """The attachment recipe: picklable, no array data."""
        return list(self._manifest)

    @property
    def total_bytes(self) -> int:
        """Bytes of weight data shared through the blocks."""
        return sum(
            int(np.prod(shape)) * np.dtype(dtype).itemsize
            for _, _, shape, dtype in self._manifest
        )

    def arrays(self) -> Dict[str, np.ndarray]:
        """Read-only views onto the blocks in the *creating* process."""
        out: Dict[str, np.ndarray] = {}
        for name, _, shape, dtype in self._manifest:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._blocks[name].buf
            )
            view.flags.writeable = False
            out[name] = view
        return out

    @staticmethod
    def attach(
        manifest: Sequence[_ManifestRow],
    ) -> Tuple[Dict[str, np.ndarray], List[shared_memory.SharedMemory]]:
        """Map the manifest's blocks read-only in this (worker) process.

        Returns the arrays plus the open block handles — the caller must
        keep the handles alive as long as the arrays are in use and
        ``close()`` them on shutdown.  Attaching registers the name with the
        resource tracker again (CPython registers attachments and creations
        alike), which is harmless here: shard workers are spawned children
        of the creating process, so they share its tracker and the
        registration set just re-adds an existing entry — the owner's
        ``unlink`` remains the single cleanup point.
        """
        arrays: Dict[str, np.ndarray] = {}
        handles: List[shared_memory.SharedMemory] = []
        try:
            for name, shm_name, shape, dtype in manifest:
                block = shared_memory.SharedMemory(name=shm_name)
                handles.append(block)
                view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
                view.flags.writeable = False
                arrays[name] = view
        except BaseException:
            _close_handles(handles)
            raise
        return arrays, handles

    def unlink(self) -> None:
        """Remove every block name (idempotent; safe with live views).

        Mappings still held by this or other processes stay valid until
        they are closed; ``BufferError`` from closing a block whose views
        are still exported is tolerated — the OS reclaims the memory when
        the last mapping disappears.
        """
        if self._unlinked:
            return
        self._unlinked = True
        for block in self._blocks.values():
            try:
                block.unlink()
            except FileNotFoundError:
                pass
            try:
                block.close()
            except BufferError:
                # The creating process still holds views (e.g. the parent
                # model was rebound onto the blocks); the mapping stays open
                # but the name is gone, which is what unlink guarantees.
                pass

    @property
    def unlinked(self) -> bool:
        return self._unlinked


@dataclass
class _WorkerInit:
    """Everything a worker needs to reconstruct its replica, all picklable."""

    transformer_config: TransformerConfig
    session_config: Dict[str, object]  # SessionConfig.to_dict()
    spec: Dict[str, object]  # BackendSpec.to_dict()
    manifest: List[_ManifestRow]
    #: (primitive name, num_entries) -> fitted table, shipped so workers
    #: never re-fit registry primitives.
    tables: Dict[Tuple[str, int], LookupTable]
    lut_overrides: Dict[str, LookupTable]
    #: Fault schedule armed in the worker (chaos testing); None = no faults.
    fault_plan: Optional[FaultPlan] = None


class _ShippedRegistry:
    """A read-only stand-in for :class:`LutRegistry` inside a worker.

    Serves exactly the fitted tables the parent shipped; anything else is a
    deployment bug (a worker silently re-fitting tables would both stall the
    replica and break bitwise parity with the parent's tables).
    """

    def __init__(self, tables: Mapping[Tuple[str, int], LookupTable]) -> None:
        self._tables = dict(tables)

    def lut(self, function_name: str, num_entries: int = 16) -> LookupTable:
        try:
            return self._tables[(function_name, int(num_entries))]
        except KeyError:
            raise RuntimeError(
                f"primitive {function_name!r} with {num_entries} entries was "
                "not shipped to this shard worker; workers never fit tables"
            ) from None

    def get(self, function_name: str, num_entries: int = 16):
        raise RuntimeError(
            "shard workers hold LUT tables only (no fitted networks); run "
            "calibration on the ShardedPool itself — it re-fits on the parent "
            "and broadcasts the calibrated tables to every worker"
        )


def _build_worker_session(
    init: _WorkerInit,
) -> Tuple[InferenceSession, List[shared_memory.SharedMemory]]:
    """Reconstruct one replica session from the shipped description."""
    arrays, handles = SharedWeightStore.attach(init.manifest)
    try:
        model = EncoderModel.skeleton(init.transformer_config)
        attach_weight_state(model, arrays)
        session = InferenceSession(
            config=SessionConfig.from_dict(init.session_config),
            spec=BackendSpec.from_dict(init.spec),
            registry=_ShippedRegistry(init.tables),
            model=model,
        )
        if init.lut_overrides:
            session.apply_lut_overrides(init.lut_overrides)
        # Warm every lazy per-dtype cache before serving, like SessionPool.
        session.forward([np.zeros(1, dtype=np.int64)])
    except BaseException:
        _close_handles(handles)
        raise
    return session, handles


def _worker_main(
    endpoint: WorkerEndpoint, init: _WorkerInit, worker_index: int = 0
) -> None:
    """Entry point of one shard worker process (spawn-safe, module level)."""
    injector = None
    if init.fault_plan is not None:
        # Arm worker-side faults before the session warmup runs (the
        # warmup's session.forward ticks the session_forward counter).
        injector = _faults.install(init.fault_plan, worker_index=worker_index)
    try:
        session, handles = _build_worker_session(init)
    except BaseException:
        try:
            endpoint.send("error", traceback.format_exc())
        except (BrokenPipeError, OSError):
            pass
        endpoint.close()
        return
    endpoint.send("ready", None)
    hidden_size = session.model.config.hidden_size
    result_dtype = np.dtype(session.model.config.compute_dtype)
    try:
        while True:
            try:
                op, payload = endpoint.recv()
            except (EOFError, OSError):
                return  # parent went away; nothing left to serve
            received_at = time.monotonic()
            if injector is not None:
                injector.on_worker_request(op)  # may stall or crash here
            if op == "close":
                endpoint.send("ok", None)
                return
            try:
                if op == "forward":
                    # Zero-copy result path: reserve the response ring and
                    # let the session write each request's rows straight
                    # into it (``forward_packed``) — the packing *is* the
                    # shipping.  Transports without a ring (or a batch too
                    # big for it) return None and take the generic path.
                    lengths = [int(np.asarray(r).shape[0]) for r in payload]
                    flat = endpoint.begin_packed_response(
                        lengths, hidden_size, result_dtype
                    )
                    if flat is not None:
                        session.forward_packed(payload, out=flat)
                        endpoint.commit_packed_response()
                        continue
                    result = session.forward(payload)
                elif op == "forward_deadline":
                    # Deadline-aware forward: the payload's last element is
                    # an int64 row of per-request remaining budgets in
                    # microseconds (-1 = no deadline), measured from this
                    # request's receipt.  A request whose budget already
                    # lapsed — e.g. after a stall between receipt and
                    # compute — is skipped and answered with a zero-length
                    # row block (a real request always has >= 1 token, so
                    # zero rows is an unambiguous expired-in-flight mark).
                    budgets_us = np.asarray(payload[-1])
                    now = time.monotonic()
                    lengths = []
                    live_payload = []
                    for budget_us, request in zip(budgets_us, payload[:-1]):
                        budget_us = int(budget_us)
                        if 0 <= budget_us and received_at + budget_us / 1e6 <= now:
                            lengths.append(0)
                        else:
                            lengths.append(int(np.asarray(request).shape[0]))
                            live_payload.append(request)
                    flat = endpoint.begin_packed_response(
                        lengths, hidden_size, result_dtype
                    )
                    if flat is not None:
                        # Expired requests occupy zero rows, so the live
                        # rows pack contiguously in request order.
                        if live_payload:
                            session.forward_packed(live_payload, out=flat)
                        endpoint.commit_packed_response()
                        continue
                    served = iter(
                        session.forward(live_payload) if live_payload else []
                    )
                    empty = np.empty((0, hidden_size), dtype=result_dtype)
                    result = [
                        next(served) if length else empty for length in lengths
                    ]
                elif op == "pooled":
                    result = session.pooled(payload)
                elif op == "apply_lut_overrides":
                    session.apply_lut_overrides(payload)
                    result = None
                elif op == "ping":
                    result = "pong"
                else:
                    raise ValueError(f"unknown shard worker op {op!r}")
                endpoint.send("ok", result)
            except BaseException:
                endpoint.send("error", traceback.format_exc())
    finally:
        _close_handles(handles)
        endpoint.close()


class _ShardClient:
    """Parent-side handle to one worker replica.

    Duck-types the serving half of :class:`InferenceSession` (``forward`` /
    ``pooled`` / ``apply_lut_overrides``), which is exactly what
    :class:`~repro.api.server.ReplicaPool` and
    :class:`~repro.api.server.ServingQueue` call on a pool's ``sessions``.
    One request is in flight per worker at a time (guarded by a lock); the
    transport wait releases the GIL, which is where the cross-process
    parallelism comes from.
    """

    def __init__(
        self,
        index: int,
        process,
        transport: WorkerTransport,
        request_timeout_s: float,
        deadline_grace_s: float = 5.0,
    ) -> None:
        self.index = index
        self.process = process
        self.transport = transport
        self._request_timeout_s = request_timeout_s
        self._deadline_grace_s = deadline_grace_s
        self._lock = threading.Lock()
        #: Set when the channel can no longer be trusted (a request timed
        #: out with the worker still computing: its eventual reply would be
        #: returned to the *next* request).  A broken client never serves
        #: again.
        self._broken = False

    @property
    def defunct(self) -> bool:
        """True once this replica can never serve again (dead or poisoned)."""
        return self._broken or not self.process.is_alive()

    # ------------------------------------------------------------------ #
    # Wire protocol
    # ------------------------------------------------------------------ #
    def _death_message(self, context: str) -> str:
        return (
            f"shard worker {self.index} (pid {self.process.pid}) died "
            f"{context} (exitcode {self.process.exitcode}); its shard of the "
            "request cannot be served"
        )

    def _recv(self, timeout_s: float, context: str):
        # One blocking wait on {response channel, process sentinel} bounded
        # by the deadline — no repeated short polls, so a parent thread
        # waiting on a busy worker sleeps instead of burning CPU.  The
        # sentinel covers every death, including one so early the worker
        # never collected its end of the pipe (where no EOF would ever
        # arrive); a reply sent just before death is still drained first.
        ready = mp_connection.wait(
            [self.transport.wait_handle, self.process.sentinel],
            timeout=max(0.0, timeout_s),
        )
        if self.transport.wait_handle in ready or (
            ready and self.transport.poll(0)
        ):
            return self.transport.recv()
        if ready:  # only the sentinel fired: the worker is gone
            raise WorkerDiedError(self._death_message(context))
        raise TimeoutError(
            f"shard worker {self.index} did not answer within "
            f"{timeout_s:.1f} s"
        )

    def _call(self, op: str, payload, timeout_s: float | None = None):
        timeout_s = self._request_timeout_s if timeout_s is None else timeout_s
        with self._lock:
            if self._broken:
                raise WorkerDiedError(
                    f"shard worker {self.index} was terminated after a "
                    "timed-out request; it can no longer serve"
                )
            if not self.process.is_alive():
                raise WorkerDiedError(self._death_message(f"before {op!r}"))
            try:
                self.transport.send(op, payload)
                status, value = self._recv(timeout_s, f"while serving {op!r}")
            except WorkerDiedError:
                # Whatever the request occupied in the rings is abandoned;
                # release the slots so the accounting never wedges.
                self.transport.release()
                raise
            except TimeoutError:
                # Checked before OSError — TimeoutError subclasses it, and
                # the death branch below must not swallow timeouts.  The
                # worker may still answer this request later; reusing the
                # channel would hand that stale reply to the next caller.
                # Poison the client and put the worker down.
                self._broken = True
                self.transport.release()
                self.process.terminate()
                raise
            except (BrokenPipeError, EOFError, OSError) as exc:
                self.transport.release()
                raise WorkerDiedError(
                    self._death_message(f"while serving {op!r}")
                ) from exc
        if status == "ok":
            return value
        if status == "error":
            raise RuntimeError(
                f"shard worker {self.index} raised while serving {op!r}:\n{value}"
            )
        # Anything else means the channel desynchronised (a stale reply or
        # protocol drift between client and worker) — say so instead of
        # presenting the payload as a worker traceback.
        raise RuntimeError(
            f"shard worker {self.index} sent unexpected status {status!r} "
            f"while serving {op!r}"
        )

    def wait_ready(self, timeout_s: float) -> None:
        with self._lock:
            try:
                status, value = self._recv(timeout_s, "during initialisation")
            except (BrokenPipeError, EOFError, OSError) as exc:
                # A hard death (segfault, OOM kill) surfaces as pipe EOF —
                # poll() reports EOF as readable, so recv() raises before
                # _recv's liveness branch can.  Map it to the descriptive
                # error like every other channel interaction.
                raise WorkerDiedError(
                    self._death_message("during initialisation")
                ) from exc
        if status == "ready":
            return
        if status == "error":
            raise RuntimeError(
                f"shard worker {self.index} failed to initialise:\n{value}"
            )
        raise RuntimeError(
            f"shard worker {self.index} sent unexpected status {status!r} "
            "during initialisation"
        )

    # ------------------------------------------------------------------ #
    # InferenceSession serving surface
    # ------------------------------------------------------------------ #
    def forward(self, requests: Sequence[np.ndarray]) -> List[np.ndarray]:
        return self._call("forward", [np.asarray(r) for r in requests])

    def forward_deadline(
        self,
        requests: Sequence[np.ndarray],
        budgets_s: Sequence[Optional[float]],
    ) -> List[np.ndarray]:
        """``forward`` with per-request remaining deadline budgets.

        ``budgets_s[i]`` is request ``i``'s remaining time in seconds
        (``None`` = no deadline).  The budgets ship with the batch as one
        extra int64 microsecond row, so the worker can skip requests that
        expire in flight — those come back as zero-length row blocks.  When
        *every* request carries a deadline the transport wait is capped at
        the largest budget plus the grace window instead of the full
        request timeout; a worker that blows through the cap is treated
        exactly like a timed-out one (poisoned and terminated), since its
        eventual reply could no longer be delivered to anyone.
        """
        budget_us = np.asarray(
            [-1 if b is None else max(0, int(b * 1e6)) for b in budgets_s],
            dtype=np.int64,
        )
        payload = [np.asarray(r) for r in requests] + [budget_us]
        timeout_s = None
        if len(budget_us) and bool(np.all(budget_us >= 0)):
            timeout_s = min(
                self._request_timeout_s,
                float(budget_us.max()) / 1e6 + self._deadline_grace_s,
            )
        return self._call("forward_deadline", payload, timeout_s=timeout_s)

    def pooled(self, requests: Sequence[np.ndarray]) -> np.ndarray:
        return self._call("pooled", [np.asarray(r) for r in requests])

    def apply_lut_overrides(self, overrides: Mapping[str, LookupTable]) -> None:
        self._call("apply_lut_overrides", dict(overrides))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, timeout_s: float) -> None:
        """Ask the worker to exit; escalate to terminate/kill if it won't.

        The whole sequence is bounded by ``timeout_s`` per step: the client
        lock is acquired with a timeout (an in-flight request may hold it
        for up to ``request_timeout_s``), and if it cannot be had in time
        the polite close handshake is skipped and the worker is terminated.
        """
        acquired = self._lock.acquire(timeout=timeout_s)
        try:
            if acquired and not self._broken and self.process.is_alive():
                try:
                    self.transport.send("close", None)
                    self._recv(timeout_s, "during shutdown")
                except (WorkerDiedError, TimeoutError, BrokenPipeError,
                        EOFError, OSError):
                    pass
        finally:
            if acquired:
                self._lock.release()
        self.process.join(timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout_s)
        # Closes the pipe ends and unlinks any shared-memory rings — the
        # transport's resources must never outlive the pool, dead worker
        # or not.
        self.transport.close()


def _required_tables(
    spec: BackendSpec, registry: LutRegistry
) -> Dict[Tuple[str, int], LookupTable]:
    """The fitted tables a worker's ``build_backend`` will ask a registry for.

    Only ``nn_lut`` operators consult the registry (``linear_lut`` tables are
    recomputed analytically, ``exact``/``ibert`` need none).  Every ``nn_lut``
    primitive ships its base table even when a calibrated override exists:
    the worker session builds the uncalibrated backend first and applies
    overrides after, exactly like the parent did.
    """
    tables: Dict[Tuple[str, int], LookupTable] = {}
    for op, op_spec in spec.operators().items():
        if op_spec.method != "nn_lut":
            continue
        for primitive in OPERATOR_PRIMITIVES[op]:
            key = (primitive, int(op_spec.num_entries))
            if key not in tables:
                tables[key] = registry.lut(
                    primitive, num_entries=op_spec.num_entries
                )
    return tables


def _restore_model_weights(model: EncoderModel) -> None:
    """Give a model serving off shared-memory views private arrays back.

    During a pool's life the parent model reads the shared blocks (one
    weight copy per machine).  At teardown those blocks are unlinked, so the
    model — possibly adopted from the caller, who may later edit weights in
    place — is rebound onto fresh private copies of the same bytes, exactly
    as writable as before the pool existed.
    """
    state = export_weight_state(model)
    restored = {
        name: array.copy()
        for name, array in state.items()
        if not array.flags.writeable
    }
    if restored:
        attach_weight_state(model, {**state, **restored})


def _release_pool_resources(
    store: SharedWeightStore,
    model: EncoderModel,
    transports: Sequence[WorkerTransport],
) -> None:
    """Teardown shared between close() and the GC safety-net finalizer.

    Closing the transports is idempotent (a normal ``close()`` already shut
    them down via the client shutdowns); on the GC path it is what unlinks
    the ring blocks and drops the pipe ends so orphaned workers see EOF.
    """
    try:
        _restore_model_weights(model)
    finally:
        store.unlink()
        for transport in transports:
            transport.close()


class ShardedPool(ReplicaPool):
    """Replica sessions in worker *processes* over shared-memory weights.

    Drop-in for :class:`~repro.api.server.SessionPool` (same construction
    signature, same ``forward``/``pooled``/``classify``/``calibrate`` surface,
    same deterministic ``j % N`` sharding), with replicas that run in their
    own interpreters — the multi-core story the GIL denies the threaded pool.

    Cost model: weights are shipped once per machine (shared memory blocks;
    the parent's own model is rebound onto them, so there is exactly one
    copy), while request/response arrays cross the process boundary through
    the chosen ``transport`` — ``"pipe"`` pickles them per call,
    ``"shm_ring"`` moves the hot-path payloads through preallocated
    shared-memory rings (see :mod:`repro.api.transport`) and keeps the pipe
    as doorbell/control channel and variable-shape fallback.  Sharding pays
    off when forward compute dominates — many rows, real depth — and the
    threaded pool stays preferable for tiny single-request traffic; the ring
    transport shrinks the boundary tax that trade-off prices.

    ``ring_bytes`` overrides the per-ring payload capacity (default: sized
    for a full ``max_batch_size`` batch of maximum-length sequences, so the
    fallback only fires for payloads the serving path never produces).
    Batches beyond the capacity still serve correctly — they fall back to
    the pickle pipe, visible in each client's ``transport.stats``.

    ``mp_context`` defaults to ``"spawn"``: it is the strictest start method
    (nothing is inherited, so it proves the replica truly reconstructs from
    the serializable spec — the same recipe a cross-machine shard would use)
    and the only one that is safe regardless of parent threads.

    Use as a context manager or call :meth:`close`, which shuts workers down
    and always unlinks the shared-memory blocks (weights and rings alike).
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        spec: BackendSpec | None = None,
        registry: LutRegistry | None = None,
        num_replicas: int = 2,
        model: EncoderModel | None = None,
        mp_context: str = "spawn",
        start_timeout_s: float = 120.0,
        request_timeout_s: float = 600.0,
        transport: str = "pipe",
        ring_bytes: int | None = None,
        deadline_grace_s: float = 5.0,
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown worker transport {transport!r}; available "
                f"transports: {', '.join(TRANSPORTS)}"
            )
        if ring_bytes is not None and ring_bytes < 0:
            raise ValueError(f"ring_bytes must be >= 0, got {ring_bytes}")
        self.transport_name = transport
        template = InferenceSession(
            config=config, spec=spec, registry=registry, model=model
        )
        self._template = template
        self.config = template.config
        self.spec = template.spec
        self.sessions: List[_ShardClient] = []
        self._closed = False
        store = SharedWeightStore(export_weight_state(template.model))
        self._store = store
        self._transports: List[WorkerTransport] = []
        # Restore the model's private weights and unlink the blocks — weight
        # store and transport rings alike — even if the pool is never closed
        # (GC / interpreter exit).
        self._finalizer = weakref.finalize(
            self, _release_pool_resources, store, template.model, self._transports
        )
        try:
            # One copy of the weights per machine: the parent's model reads
            # the same blocks the workers map.
            attach_weight_state(template.model, store.arrays())
            for linear in template.model.iter_linears():
                linear.prepare()
            template.forward([np.zeros(1, dtype=np.int64)])
            worker_config = adopted_model_config(
                template.model,
                max_batch_size=template.config.max_batch_size,
                bucket_size=template.config.bucket_size,
                seed=template.config.seed,
            )
            init = _WorkerInit(
                transformer_config=template.model.config,
                session_config=worker_config.to_dict(),
                spec=template.spec.to_dict(),
                manifest=store.manifest(),
                tables=_required_tables(template.spec, template.registry),
                lut_overrides=dict(template.lut_overrides),
                # A fault plan armed in this process at construction time is
                # baked into every worker (they are spawned, not forked, so
                # the injector cannot be inherited).
                fault_plan=_faults.active_plan(),
            )
            context = multiprocessing.get_context(mp_context)
            request_bytes, response_bytes = self._ring_sizes(
                template, ring_bytes
            )
            # Everything spawn_replica() needs to repeat this loop for one
            # more worker after construction (live hot-add).
            self._worker_init = init
            self._context = context
            self._request_bytes = request_bytes
            self._response_bytes = response_bytes
            self._start_timeout_s = start_timeout_s
            self._request_timeout_s = request_timeout_s
            self._deadline_grace_s = deadline_grace_s
            self._next_worker_index = num_replicas
            for index in range(num_replicas):
                worker_transport = create_transport(
                    transport,
                    context,
                    request_bytes=request_bytes,
                    response_bytes=response_bytes,
                )
                self._transports.append(worker_transport)
                try:
                    process = context.Process(
                        target=_worker_main,
                        args=(worker_transport.endpoint(), init, index),
                        name=f"shard-worker-{index}",
                        daemon=True,
                    )
                    process.start()
                except BaseException:
                    # Not yet tracked by a client; close() cannot reap it.
                    worker_transport.close()
                    raise
                worker_transport.on_worker_started()
                client = _ShardClient(
                    index, process, worker_transport, request_timeout_s,
                    deadline_grace_s=deadline_grace_s,
                )
                # Track before waiting so close() reaps it on any failure.
                self.sessions.append(client)
            # One shared deadline across the fleet (not per worker): N slow
            # workers must not stack N full start timeouts.
            start_deadline = time.monotonic() + start_timeout_s
            for client in self.sessions:
                client.wait_ready(max(0.0, start_deadline - time.monotonic()))
        except BaseException:
            self.close()
            raise

    @classmethod
    def from_model(
        cls,
        model: EncoderModel,
        spec: BackendSpec | None = None,
        registry: LutRegistry | None = None,
        num_replicas: int = 2,
        max_batch_size: int = 32,
        bucket_size: int = 1,
        **kwargs,
    ) -> "ShardedPool":
        """Sharded pool over an already-built encoder (its engine wins)."""
        config = adopted_model_config(
            model, max_batch_size=max_batch_size, bucket_size=bucket_size
        )
        return cls(config=config, spec=spec, registry=registry,
                   num_replicas=num_replicas, model=model, **kwargs)

    @staticmethod
    def _ring_sizes(
        template: InferenceSession, ring_bytes: int | None
    ) -> Tuple[int, int]:
        """Per-worker ring payload capacities (request, response) in bytes.

        The default holds the largest payload the serving path produces: a
        full ``max_batch_size`` batch of maximum-length sequences — int64
        token ids on the request side, compute-dtype hidden-state rows on
        the response side — plus the per-item length table.  An explicit
        ``ring_bytes`` caps both (undersized rings degrade to the pipe
        fallback, they never fail).
        """
        if ring_bytes is not None:
            return ring_bytes, ring_bytes
        return serving_ring_bytes(
            rows=template.config.max_batch_size,
            seq_len=template.max_sequence_length,
            hidden=template.model.config.hidden_size,
            itemsize=np.dtype(template.model.config.compute_dtype).itemsize,
        )

    def _serve_sharded(self, requests: Sequence[np.ndarray], serve) -> List:
        if self._closed:
            raise RuntimeError(
                "ShardedPool is closed; its workers and shared-memory "
                "weights are gone"
            )
        return super()._serve_sharded(requests, serve)

    # ------------------------------------------------------------------ #
    # Calibration: re-fit on the parent, broadcast to every worker
    # ------------------------------------------------------------------ #
    def calibrate(
        self, samples: Sequence[np.ndarray], config=None, operators=None
    ) -> Dict[str, LookupTable]:
        """Dataset-free calibration for the whole sharded fleet.

        The parent template session records/re-fits (it holds the fitted
        networks; workers hold tables only), then the calibrated tables are
        installed into every worker so the fleet keeps serving one
        consistent backend.
        """
        if self._closed:
            raise RuntimeError(
                "ShardedPool is closed; there are no workers to calibrate"
            )
        calibrated = self._template.calibrate(
            samples, config=config, operators=operators
        )
        for client in self.sessions:
            client.apply_lut_overrides(calibrated)
        return calibrated

    # ------------------------------------------------------------------ #
    # Live membership
    # ------------------------------------------------------------------ #
    def spawn_replica(self) -> "_ShardClient":
        """Start one more worker process and adopt it into the pool.

        Repeats the construction recipe for a single worker — fresh
        transport, spawned process over the *same* shared-memory weight
        blocks and serialized init — waits for readiness, and installs any
        tables calibrated since construction, so the newcomer serves the
        same backend as the incumbents.  The new client is appended to
        ``sessions`` before returning.
        """
        if self._closed:
            raise RuntimeError(
                "ShardedPool is closed; it cannot spawn a replica"
            )
        if _faults._ACTIVE is not None:
            _faults._ACTIVE.on_spawn()
        index = self._next_worker_index
        self._next_worker_index += 1
        worker_transport = create_transport(
            self.transport_name,
            self._context,
            request_bytes=self._request_bytes,
            response_bytes=self._response_bytes,
        )
        # Tracked immediately so the GC finalizer unlinks this worker's ring
        # blocks even if readiness below fails (the finalizer holds the
        # list object, so appends stay visible to it).
        self._transports.append(worker_transport)
        try:
            process = self._context.Process(
                target=_worker_main,
                args=(worker_transport.endpoint(), self._worker_init, index),
                name=f"shard-worker-{index}",
                daemon=True,
            )
            process.start()
        except BaseException:
            worker_transport.close()
            raise
        worker_transport.on_worker_started()
        client = _ShardClient(
            index, process, worker_transport, self._request_timeout_s,
            deadline_grace_s=self._deadline_grace_s,
        )
        try:
            client.wait_ready(self._start_timeout_s)
            if (
                self._template.lut_overrides
                and self._template.lut_overrides
                != self._worker_init.lut_overrides
            ):
                # The pool was calibrated after construction; the baked init
                # predates those tables.
                client.apply_lut_overrides(self._template.lut_overrides)
        except BaseException:
            client.shutdown(5.0)
            raise
        self.sessions.append(client)
        return client

    def retire_replica(self, handle: "_ShardClient") -> None:
        """Shut one worker down and drop it from ``sessions``.

        The worker's shared ring blocks are released by its transport close
        (via the client shutdown); the weight blocks stay — they belong to
        the pool, not the worker.
        """
        if handle in self.sessions:
            self.sessions.remove(handle)
        handle.shutdown(10.0)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers and release the shared-memory weights.

        Idempotent.  The blocks are unlinked even when a worker is already
        dead, refuses to exit (it gets terminated), or construction failed
        halfway — shared memory must never outlive the pool — and the
        template/adopted model gets private writable weight arrays back
        (see :func:`_restore_model_weights`).  Dropping the pool without
        closing triggers the same teardown from a GC finalizer.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for client in self.sessions:
                client.shutdown(timeout)
        finally:
            self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def shared_weight_bytes(self) -> int:
        """Bytes of frozen-encoder weights held in the shared-memory blocks."""
        return self._store.total_bytes

    def __enter__(self) -> "ShardedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
