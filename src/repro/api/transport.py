"""Pluggable parent<->worker transports for multi-process sharded serving.

PR 4's :class:`~repro.api.sharding.ShardedPool` moved replicas into worker
processes, but every request batch and every result still crossed the process
boundary by pickle over a ``multiprocessing.Pipe``.  In the paper's
integer-deployment setting the per-token compute is cheap, so that
serialization is a first-order tax on sharded throughput.  This module makes
the channel a seam instead of an implementation detail:

* :class:`WorkerTransport` — the parent-side protocol the pool's shard
  clients program against (``send``/``poll``/``recv``/``release``/``close``),
  paired with a picklable :class:`WorkerEndpoint` the worker process serves
  from.  Control traffic (init handshake, calibration broadcast, close) and
  hot-path traffic (``forward``/``pooled`` batches and their results) both
  flow through it.
* :class:`PipeTransport` — the original pickle-over-Pipe channel, extracted
  verbatim from ``sharding.py``.  Every message is pickled; simple, shape-
  agnostic, and the baseline the ring is benchmarked against.
* :class:`ShmRingTransport` — zero-copy hot path.  Payloads that match the
  serving shapes (ragged token-id batches in, ragged hidden-state rows or a
  pooled matrix out) are packed into preallocated
  ``multiprocessing.shared_memory`` rings with a fixed int64 dtype/shape
  header; the pipe carries only a tiny doorbell per message.  Anything the
  rings cannot describe — control dicts, oversized batches — falls back to
  the pickle pipe transparently (counted in :attr:`WorkerTransport.stats`).
  Every ring frame carries a CRC32 of its payload; a frame that fails the
  check at decode raises :class:`TransportIntegrityError` and demotes the
  channel to pipe-only, so corruption never decodes as truth.

The wire discipline is strictly one request in flight per worker (the shard
client serialises calls under a lock), so each direction needs exactly one
message slot: a request ring and a response ring per worker, with doorbell
sequence numbers guarding against stale messages.  The pipe also doubles as
the liveness signal — a dead worker's end-of-file wakes any blocking
``poll`` — which is what lets the client wait without a busy loop.

This seam is the deliberate stepping stone to the ROADMAP's cross-*machine*
sharding: a socket transport implements the same two halves and slots into
``ShardedPool(transport=...)`` unchanged.
"""

from __future__ import annotations

# staticcheck: pickle-boundary -- payloads here must survive pickling into spawned workers

import time
import zlib
from abc import ABC, abstractmethod
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import faults as _faults
from .batching import RequestBatcher

__all__ = [
    "TransportError",
    "TransportIntegrityError",
    "WorkerTransport",
    "WorkerEndpoint",
    "PipeTransport",
    "ShmRingTransport",
    "TRANSPORTS",
    "create_transport",
]


class TransportError(RuntimeError):
    """A transport-level protocol violation (stale doorbell, bad reserve)."""


class TransportIntegrityError(TransportError):
    """A ring frame failed its checksum (or describes an impossible payload).

    Raised by the parent-side decode so corruption surfaces as a typed
    error instead of garbage results.  The transport degrades to the pickle
    pipe for the rest of its life (the ring memory is suspect); the
    scheduler's retry policy treats this as a replica-channel fault and
    re-routes the batch.
    """


#: Transport kinds accepted by :func:`create_transport` (and the
#: ``ShardedPool(transport=...)`` knob).
TRANSPORTS: Tuple[str, ...] = ("pipe", "shm_ring")

#: Doorbell tag: a pipe message ``(_SHM_TAG, seq, op_or_status)`` means "the
#: payload is in the shared-memory ring, stamped with ``seq``".
_SHM_TAG = "__shm__"

#: Ring header: int64[16] at the start of each block.
#: [0] seq  [1] kind  [2] n (ragged items / array ndim)  [3] dtype code
#: [4] trailing dim (ragged rows; 0 = 1-D items)  [5..12] array shape
#: [13] CRC32 of the payload bytes the header describes (sealed at encode
#: time, verified at decode time — see :class:`TransportIntegrityError`).
_HEADER_SLOTS = 16
_HEADER_BYTES = _HEADER_SLOTS * 8
_MAX_ARRAY_NDIM = 8
_CRC_SLOT = 13

_KIND_RAGGED = 1
_KIND_ARRAY = 2

#: numpy dtypes the fixed-shape header can describe; anything else falls
#: back to the pickle pipe.
_DTYPE_CODES: Dict[str, int] = {
    "<i8": 1,
    "<i4": 2,
    "<f2": 3,
    "<f4": 4,
    "<f8": 5,
}
_CODE_DTYPES: Dict[int, np.dtype] = {
    code: np.dtype(s) for s, code in _DTYPE_CODES.items()
}


def _ragged_spec(
    payload: object,
) -> Optional[Tuple[np.dtype, int, List[int]]]:
    """``(dtype, trailing, lengths)`` if ``payload`` is a ring-packable ragged
    batch — a non-empty list of uniform-dtype 1-D arrays (``trailing == 0``)
    or 2-D row blocks sharing their trailing dimension — else ``None``.
    """
    if not isinstance(payload, (list, tuple)) or not payload:
        return None
    first = payload[0]
    if not isinstance(first, np.ndarray) or first.dtype.str not in _DTYPE_CODES:
        return None
    ndim = first.ndim
    if ndim not in (1, 2):
        return None
    trailing = int(first.shape[1]) if ndim == 2 else 0
    if ndim == 2 and trailing == 0:
        # A (n, 0) block would be indistinguishable from 1-D items in the
        # header (trailing == 0 marks 1-D); route it through the pipe.
        return None
    lengths: List[int] = []
    for item in payload:
        if (
            not isinstance(item, np.ndarray)
            or item.dtype != first.dtype
            or item.ndim != ndim
            or (ndim == 2 and int(item.shape[1]) != trailing)
        ):
            return None
        lengths.append(int(item.shape[0]))
    return first.dtype, trailing, lengths


class _ShmRing:
    """One direction of the zero-copy channel: a single-message shm buffer.

    The serving protocol keeps at most one request in flight per worker, so
    each direction needs exactly one slot; the request/response ring pair
    plus doorbell sequence numbers over the pipe make the buffers safe to
    reuse call after call.  Layout: an int64[16] header (see module
    constants), then for ragged messages ``int64[n]`` lengths, then the
    concatenated payload elements.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, payload_bytes: int) -> "_ShmRing":
        size = _HEADER_BYTES + max(0, int(payload_bytes))
        return cls(shared_memory.SharedMemory(create=True, size=size), owner=True)

    @classmethod
    def attach(cls, name: str) -> "_ShmRing":
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def payload_capacity(self) -> int:
        """Bytes available for one message's lengths + elements."""
        return self._shm.size - _HEADER_BYTES

    def _header(self) -> np.ndarray:
        return np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=self._shm.buf)

    def _view(self, count: int, dtype: np.dtype, byte_offset: int) -> np.ndarray:
        return np.ndarray(
            (count,), dtype=dtype, buffer=self._shm.buf,
            offset=_HEADER_BYTES + byte_offset,
        )

    # ------------------------------------------------------------------ #
    # Integrity
    # ------------------------------------------------------------------ #
    def _described_payload_nbytes(self, header: np.ndarray) -> int:
        """Payload bytes the header claims follow it, or ``-1`` when the
        header itself is implausible (corrupt shape/length fields would
        otherwise send the checksum — or the decode — out of bounds)."""
        kind = int(header[1])
        dtype = _CODE_DTYPES.get(int(header[3]))
        if dtype is None:
            return -1
        if kind == _KIND_RAGGED:
            n = int(header[2])
            trailing = int(header[4])
            if n < 1 or trailing < 0 or n * 8 > self.payload_capacity:
                return -1
            total = 0
            for value in self._view(n, np.dtype(np.int64), 0):
                length = int(value)
                if length < 0:
                    return -1
                total += length
            nbytes = n * 8 + total * max(1, trailing) * dtype.itemsize
        elif kind == _KIND_ARRAY:
            ndim = int(header[2])
            if ndim < 0 or ndim > _MAX_ARRAY_NDIM:
                return -1
            count = 1
            for axis in range(ndim):
                extent = int(header[5 + axis])
                if extent < 0:
                    return -1
                count *= extent
            nbytes = count * dtype.itemsize
        else:
            return -1
        return nbytes if nbytes <= self.payload_capacity else -1

    def _payload_crc(self, nbytes: int) -> int:
        return zlib.crc32(self._shm.buf[_HEADER_BYTES:_HEADER_BYTES + nbytes])

    def seal(self) -> None:
        """Stamp the current message's payload CRC32 into the header.

        Every encode path ends here — ``try_encode`` for whole payloads,
        and the packed-response commit for results written directly into a
        :meth:`reserve_ragged` view (the reservation cannot seal: the
        caller writes the payload *after* reserving).
        """
        header = self._header()
        nbytes = self._described_payload_nbytes(header)
        header[_CRC_SLOT] = self._payload_crc(max(0, nbytes))

    def verify(self) -> None:
        """Raise :class:`TransportIntegrityError` unless the frame is intact."""
        header = self._header()
        nbytes = self._described_payload_nbytes(header)
        if nbytes < 0:
            raise TransportIntegrityError(
                "ring frame header describes an impossible payload; the "
                "frame is corrupt"
            )
        actual = self._payload_crc(nbytes)
        if actual != int(header[_CRC_SLOT]) & 0xFFFFFFFF:
            raise TransportIntegrityError(
                f"ring frame checksum mismatch (stored "
                f"{int(header[_CRC_SLOT]) & 0xFFFFFFFF:#010x}, computed "
                f"{actual:#010x}); the frame is corrupt"
            )

    def corrupt_payload(self, salt: int) -> None:
        """Flip one payload byte in place (fault injection / tests only)."""
        header = self._header()
        nbytes = self._described_payload_nbytes(header)
        if nbytes <= 0:
            return
        offset = _HEADER_BYTES + (salt % nbytes)
        self._shm.buf[offset] ^= 0xFF

    # ------------------------------------------------------------------ #
    # Encode
    # ------------------------------------------------------------------ #
    def try_encode(self, payload: object, seq: int) -> bool:
        """Pack ``payload`` into the ring if its shape/dtype/size allow.

        Returns ``False`` (ring untouched as far as the reader is concerned)
        when the payload is not one of the supported message kinds or does
        not fit the preallocated capacity — the caller then falls back to
        the pickle pipe.
        """
        spec = _ragged_spec(payload)
        if spec is not None:
            dtype, trailing, lengths = spec
            flat = self.reserve_ragged(lengths, trailing, dtype, seq)
            if flat is None:
                return False
            RequestBatcher.pack_ragged(payload, flat)  # type: ignore[arg-type]
            self.seal()
            return True
        if isinstance(payload, np.ndarray):
            if (
                payload.dtype.str not in _DTYPE_CODES
                or payload.ndim > _MAX_ARRAY_NDIM
                or payload.nbytes > self.payload_capacity
            ):
                return False
            header = self._header()
            header[0] = seq
            header[1] = _KIND_ARRAY
            header[2] = payload.ndim
            header[3] = _DTYPE_CODES[payload.dtype.str]
            header[4] = 0
            for axis in range(payload.ndim):
                header[5 + axis] = payload.shape[axis]
            flat = self._view(payload.size, payload.dtype, 0)
            flat.reshape(payload.shape if payload.ndim else (1,))[...] = payload
            self.seal()
            return True
        return False

    def reserve_ragged(
        self,
        lengths: Sequence[int],
        trailing: int,
        dtype: np.dtype,
        seq: int,
    ) -> Optional[np.ndarray]:
        """Write a ragged-message header + lengths; return the flat view.

        The returned array — ``(total,)`` for 1-D items, ``(total,
        trailing)`` for row blocks — is the ring's own memory: writing
        results into it *is* the packing step (no intermediate buffer, no
        pickle).  Returns ``None`` if the message would not fit.
        """
        dtype = np.dtype(dtype)
        if dtype.str not in _DTYPE_CODES or not lengths:
            return None
        n = len(lengths)
        total = int(sum(lengths))
        elements = total * max(1, trailing)
        needed = n * 8 + elements * dtype.itemsize
        if needed > self.payload_capacity:
            return None
        header = self._header()
        header[0] = seq
        header[1] = _KIND_RAGGED
        header[2] = n
        header[3] = _DTYPE_CODES[dtype.str]
        header[4] = trailing
        self._view(n, np.dtype(np.int64), 0)[...] = lengths
        flat = self._view(elements, dtype, n * 8)
        return flat.reshape((total, trailing)) if trailing else flat

    # ------------------------------------------------------------------ #
    # Decode
    # ------------------------------------------------------------------ #
    def decode(self, expected_seq: int, copy: bool) -> object:
        """The ring's current message; views when ``copy=False``.

        Views are only valid until the next message lands; the worker (which
        consumes a request fully before its response is produced) reads
        views, the parent (which hands results to callers) copies.
        """
        header = self._header()
        if int(header[0]) != expected_seq:
            raise TransportError(
                f"shared-memory ring message is stamped seq {int(header[0])}, "
                f"expected {expected_seq}; the channel is out of sync"
            )
        self.verify()
        kind = int(header[1])
        dtype = _CODE_DTYPES.get(int(header[3]))
        if dtype is None:
            raise TransportError(f"unknown ring dtype code {int(header[3])}")
        if kind == _KIND_RAGGED:
            n = int(header[2])
            trailing = int(header[4])
            lengths = [int(v) for v in self._view(n, np.dtype(np.int64), 0)]
            elements = sum(lengths) * max(1, trailing)
            flat = self._view(elements, dtype, n * 8)
            if trailing:
                flat = flat.reshape((sum(lengths), trailing))
            items = RequestBatcher.unpack_ragged(flat, lengths)
            if copy:
                return [item.copy() for item in items]
            for item in items:
                item.flags.writeable = False
            return items
        if kind == _KIND_ARRAY:
            ndim = int(header[2])
            shape = tuple(int(header[5 + axis]) for axis in range(ndim))
            count = int(np.prod(shape)) if ndim else 1
            view = self._view(count, dtype, 0).reshape(shape)
            if copy:
                return view.copy()
            view.flags.writeable = False
            return view
        raise TransportError(f"unknown ring message kind {kind}")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close this process's mapping (idempotent, view-tolerant)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # Views handed out by decode()/reserve_ragged() may still be
            # alive; the mapping is released when they go away.
            pass

    def unlink(self) -> None:
        """Remove the block name (owner only; idempotent)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class WorkerEndpoint(ABC):
    """Worker-process half of a transport: picklable, serve-loop facing."""

    @abstractmethod
    def recv(self) -> Tuple[str, object]:
        """Block for the next ``(op, payload)`` request from the parent."""

    @abstractmethod
    def send(self, status: str, value: object) -> None:
        """Ship ``(status, value)`` back to the parent."""

    def begin_packed_response(
        self, lengths: Sequence[int], trailing: int, dtype: np.dtype
    ) -> Optional[np.ndarray]:
        """Reserve the response ring and return the flat array to write into.

        Transports without a zero-copy path return ``None``; the caller then
        materialises its result normally and uses :meth:`send`.
        """
        return None

    def commit_packed_response(self, status: str = "ok") -> None:
        """Publish a response written via :meth:`begin_packed_response`."""
        raise TransportError("no packed response was reserved on this endpoint")

    def close(self) -> None:
        """Release the endpoint's handles (pipe end, ring mappings)."""


class WorkerTransport(ABC):
    """Parent-side half of one worker's message channel.

    One transport instance serves exactly one worker; the shard client holds
    it for the worker's lifetime and serialises calls, so implementations
    may assume at most one request is outstanding.  ``poll`` must wake on
    worker death (pipe end-of-file), which is what lets callers block on a
    single deadline instead of spinning.
    """

    #: Kind string (``"pipe"`` / ``"shm_ring"``), mirrors :data:`TRANSPORTS`.
    name: str

    def __init__(self) -> None:
        #: Message-routing counters: how many requests/responses used the
        #: zero-copy rings vs the pickle-pipe fallback, and how many ring
        #: frames failed their integrity check (always 0 for pipe).
        self.stats: Dict[str, int] = {
            "ring_requests": 0,
            "pipe_requests": 0,
            "ring_responses": 0,
            "pipe_responses": 0,
            "integrity_failures": 0,
        }

    @abstractmethod
    def endpoint(self) -> WorkerEndpoint:
        """The picklable worker half (pass as a ``Process`` argument)."""

    def on_worker_started(self) -> None:
        """Drop parent copies of worker-only handles after ``start()``."""

    @abstractmethod
    def send(self, op: str, payload: object) -> None:
        """Ship ``(op, payload)`` to the worker (ring when possible)."""

    @property
    @abstractmethod
    def wait_handle(self):
        """The parent-side readable ``Connection`` a response arrives on.

        Exposed so callers can block on ``multiprocessing.connection.wait``
        over *several* wakeup sources at once — typically this handle plus
        the worker's process sentinel — instead of polling in a loop.
        """

    def poll(self, timeout_s: float) -> bool:
        """Block up to ``timeout_s`` for a response (or worker EOF)."""
        return self.wait_handle.poll(max(0.0, timeout_s))

    @abstractmethod
    def recv(self) -> Tuple[str, object]:
        """The worker's ``(status, value)`` response; raises ``EOFError`` on
        a dead worker's closed pipe."""

    def release(self) -> None:
        """Free any hot-path resources tied to an abandoned request.

        Called after a failed or timed-out call so ring slots never stay
        marked in-use once their request can no longer complete.
        """

    @abstractmethod
    def close(self) -> None:
        """Close (and for owned shared memory, unlink) everything parent-side."""

    @property
    def slots_in_use(self) -> int:
        """Ring slots currently tied to an outstanding request (0 for pipe)."""
        return 0

    def shm_names(self) -> List[str]:
        """Names of the shared-memory blocks this transport owns (if any)."""
        return []


class _PipeBackedTransport(WorkerTransport):
    """Shared lifecycle for transports whose parent channel is a duplex Pipe.

    Owns the pipe pair: the child end is handed to the endpoint and the
    parent's copy dropped once the worker holds its own
    (:meth:`on_worker_started`), responses are awaited on the parent end
    (:attr:`wait_handle`), and :meth:`close` is idempotent.
    """

    def __init__(self, context) -> None:
        super().__init__()
        self._parent_conn, self._child_conn = context.Pipe(duplex=True)
        self._child_closed = False
        self._closed = False

    def on_worker_started(self) -> None:
        if not self._child_closed:
            self._child_closed = True
            self._child_conn.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran; a closed transport refuses to send."""
        return self._closed

    def _check_open(self) -> None:
        """Raise instead of letting a send hit a dropped pipe end.

        With live retirement the pool can close a worker's transport while
        some other holder of the client still tries to talk to it; an OSError
        on a closed ``Connection`` is indistinguishable from a worker death,
        so surface the lifecycle error explicitly.
        """
        if self._closed:
            raise TransportError(
                "transport is closed; its worker was retired or the pool "
                "shut down"
            )

    @property
    def wait_handle(self):
        return self._parent_conn

    def _close_pipes(self) -> None:
        for conn, already_closed in (
            (self._parent_conn, False),
            (self._child_conn, self._child_closed),
        ):
            if already_closed:
                continue
            try:
                conn.close()
            except OSError:
                pass
        self._child_closed = True

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._close_pipes()


# --------------------------------------------------------------------------- #
# Pipe transport: the original pickle-everything channel
# --------------------------------------------------------------------------- #
class _PipeEndpoint(WorkerEndpoint):
    def __init__(self, conn) -> None:
        self._conn = conn

    def recv(self) -> Tuple[str, object]:
        return self._conn.recv()

    def send(self, status: str, value: object) -> None:
        self._conn.send((status, value))

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class PipeTransport(_PipeBackedTransport):
    """Pickle over a duplex ``multiprocessing.Pipe`` — the PR-4 channel.

    Every message is pickled whole.  Shape-agnostic and allocation-free to
    set up, but each request/result pays serialise + kernel copies +
    deserialise; see :class:`ShmRingTransport` for the zero-copy hot path.
    """

    name = "pipe"

    def endpoint(self) -> _PipeEndpoint:
        return _PipeEndpoint(self._child_conn)

    def send(self, op: str, payload: object) -> None:
        self._check_open()
        self.stats["pipe_requests"] += 1
        self._parent_conn.send((op, payload))

    def recv(self) -> Tuple[str, object]:
        self.stats["pipe_responses"] += 1
        return self._parent_conn.recv()


# --------------------------------------------------------------------------- #
# Shared-memory ring transport: zero-copy hot path, pipe doorbell + fallback
# --------------------------------------------------------------------------- #
class _ShmRingEndpoint(WorkerEndpoint):
    """Worker half: attaches the rings by name on first use."""

    def __init__(self, conn, request_name: str, response_name: str) -> None:
        self._conn = conn
        self._request_name = request_name
        self._response_name = response_name
        self._request_ring: Optional[_ShmRing] = None
        self._response_ring: Optional[_ShmRing] = None
        #: Sequence number of the in-hand ring request (None once answered,
        #: or when the request arrived by pipe fallback — responses then
        #: have no seq to stamp and use the pipe too).
        self._seq: Optional[int] = None
        self._reserved_seq: Optional[int] = None

    def _rings(self) -> Tuple[_ShmRing, _ShmRing]:
        if self._request_ring is None:
            self._request_ring = _ShmRing.attach(self._request_name)
            self._response_ring = _ShmRing.attach(self._response_name)
        return self._request_ring, self._response_ring  # type: ignore[return-value]

    def recv(self) -> Tuple[str, object]:
        msg = self._conn.recv()
        self._reserved_seq = None  # any stale reservation is now abandoned
        if isinstance(msg, tuple) and len(msg) == 3 and msg[0] == _SHM_TAG:
            _, seq, op = msg
            request_ring, _ = self._rings()
            payload = request_ring.decode(seq, copy=False)
            self._seq = seq
            return op, payload
        self._seq = None
        return msg

    def send(self, status: str, value: object) -> None:
        self._reserved_seq = None  # a generic reply abandons any reservation
        if self._seq is not None:
            _, response_ring = self._rings()
            if response_ring.try_encode(value, self._seq):
                seq, self._seq = self._seq, None
                self._conn.send((_SHM_TAG, seq, status))
                return
        self._seq = None
        self._conn.send((status, value))

    def begin_packed_response(
        self, lengths: Sequence[int], trailing: int, dtype: np.dtype
    ) -> Optional[np.ndarray]:
        if self._seq is None:
            return None
        _, response_ring = self._rings()
        flat = response_ring.reserve_ragged(lengths, trailing, dtype, self._seq)
        if flat is None:
            return None
        self._reserved_seq = self._seq
        return flat

    def commit_packed_response(self, status: str = "ok") -> None:
        if self._reserved_seq is None:
            raise TransportError(
                "no packed response was reserved on this endpoint"
            )
        seq, self._reserved_seq, self._seq = self._reserved_seq, None, None
        _, response_ring = self._rings()
        response_ring.seal()
        self._conn.send((_SHM_TAG, seq, status))

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
        for ring in (self._request_ring, self._response_ring):
            if ring is not None:
                ring.close()


class ShmRingTransport(_PipeBackedTransport):
    """Zero-copy hot path over preallocated shared-memory rings.

    Serving-shaped payloads (ragged token batches in; ragged hidden-state
    rows or one pooled matrix out) are written straight into a
    request/response ring pair — a fixed int64 header describing dtype and
    shape, then the elements — and announced with a tiny doorbell over the
    pipe.  The pipe remains the control channel and the transparent
    fallback for anything the rings cannot hold: unsupported payloads
    (calibration dicts) or batches beyond the preallocated capacity (sized
    at construction for ``max_batch_size`` full-length sequences; see
    :attr:`stats` for how traffic actually routed).

    Worker death is detected exactly like the pipe transport: the doorbell
    pipe reports end-of-file, so a blocking ``poll`` wakes immediately.
    """

    name = "shm_ring"

    def __init__(
        self, context, request_bytes: int, response_bytes: int
    ) -> None:
        if request_bytes < 0 or response_bytes < 0:
            raise ValueError(
                f"ring sizes must be >= 0 bytes, got request={request_bytes}, "
                f"response={response_bytes}"
            )
        self._request_ring: Optional[_ShmRing] = None
        self._response_ring: Optional[_ShmRing] = None
        self._seq = 0
        self._slot_busy = False
        self._degraded = False
        super().__init__(context)
        try:
            self._request_ring = _ShmRing.create(request_bytes)
            self._response_ring = _ShmRing.create(response_bytes)
        except BaseException:
            self.close()
            raise

    def endpoint(self) -> _ShmRingEndpoint:
        assert self._request_ring is not None and self._response_ring is not None
        return _ShmRingEndpoint(
            self._child_conn, self._request_ring.name, self._response_ring.name
        )

    def on_worker_started(self) -> None:
        if not self._child_closed:
            self._child_closed = True
            self._child_conn.close()

    @property
    def degraded(self) -> bool:
        """Whether an integrity failure demoted this channel to pipe-only."""
        return self._degraded

    def send(self, op: str, payload: object) -> None:
        self._check_open()
        self._seq += 1
        assert self._request_ring is not None
        if not self._degraded and self._request_ring.try_encode(
            payload, self._seq
        ):
            self._slot_busy = True
            self.stats["ring_requests"] += 1
            self._parent_conn.send((_SHM_TAG, self._seq, op))
        else:
            self.stats["pipe_requests"] += 1
            self._parent_conn.send((op, payload))

    def recv(self) -> Tuple[str, object]:
        msg = self._parent_conn.recv()
        if isinstance(msg, tuple) and len(msg) == 3 and msg[0] == _SHM_TAG:
            _, seq, status = msg
            if seq != self._seq:
                raise TransportError(
                    f"response doorbell carries seq {seq}, expected "
                    f"{self._seq}; the channel is out of sync"
                )
            assert self._response_ring is not None
            try:
                if _faults._ACTIVE is not None:
                    _faults._ACTIVE.on_ring_response(self._response_ring)
                value = self._response_ring.decode(seq, copy=True)
            except TransportIntegrityError:
                # The ring memory is suspect: free the slot, fall back to
                # the pipe for every later message, and let the caller's
                # retry policy re-route the batch.
                self._slot_busy = False
                self._degraded = True
                self.stats["integrity_failures"] += 1
                raise
            self._slot_busy = False
            self.stats["ring_responses"] += 1
            return status, value
        self._slot_busy = False
        self.stats["pipe_responses"] += 1
        return msg

    def release(self) -> None:
        self._slot_busy = False

    @property
    def slots_in_use(self) -> int:
        return int(self._slot_busy)

    def shm_names(self) -> List[str]:
        return [
            ring.name
            for ring in (self._request_ring, self._response_ring)
            if ring is not None
        ]

    def close(self) -> None:
        """Close pipe ends; close and unlink both rings (idempotent).

        The rings must never outlive the transport — unlink happens here
        even when the worker died or never started; mappings still held by
        a straggler worker stay valid until it exits.
        """
        if self._closed:
            return
        self._closed = True
        self._slot_busy = False
        self._close_pipes()
        for ring in (self._request_ring, self._response_ring):
            if ring is not None:
                ring.unlink()
                ring.close()


# --------------------------------------------------------------------------- #
# Factory
# --------------------------------------------------------------------------- #
#: Payload bytes per ring when the caller supplies no sizing (1 MiB covers
#: the tiny/small scenarios comfortably; ShardedPool computes a model-shaped
#: default instead of relying on this).
DEFAULT_RING_BYTES = 1 << 20


def serving_ring_bytes(
    rows: int, seq_len: int, hidden: int, itemsize: int
) -> Tuple[int, int]:
    """``(request_bytes, response_bytes)`` holding one full serving batch.

    The single definition of the ring-capacity formula: ``rows`` requests of
    up to ``seq_len`` int64 token ids in (plus the per-item length table),
    and the same batch's ``(token, hidden)`` result rows out at the engine's
    ``itemsize``.  ``ShardedPool`` sizes its default rings with this, and
    the IPC microbenchmark uses it so its measurement reflects the rings
    serving actually allocates.
    """
    lengths_bytes = rows * 8
    request = lengths_bytes + rows * seq_len * 8
    response = lengths_bytes + rows * seq_len * hidden * itemsize
    return request, response


def create_transport(
    kind: str,
    context,
    request_bytes: Optional[int] = None,
    response_bytes: Optional[int] = None,
) -> WorkerTransport:
    """One worker's transport of the requested ``kind``.

    ``request_bytes`` / ``response_bytes`` size the shared-memory rings
    (ignored by ``"pipe"``); ``context`` is the ``multiprocessing`` start
    context whose ``Pipe`` the channel uses.
    """
    if kind == "pipe":
        return PipeTransport(context)
    if kind == "shm_ring":
        return ShmRingTransport(
            context,
            request_bytes=DEFAULT_RING_BYTES if request_bytes is None else request_bytes,
            response_bytes=(
                DEFAULT_RING_BYTES if response_bytes is None else response_bytes
            ),
        )
    raise ValueError(
        f"unknown worker transport {kind!r}; available transports: "
        f"{', '.join(TRANSPORTS)}"
    )


# --------------------------------------------------------------------------- #
# Echo worker: transport cost in isolation (IPC microbenchmark + tests)
# --------------------------------------------------------------------------- #
def _echo_worker_main(
    endpoint: WorkerEndpoint, hidden_size: int, dtype_str: str
) -> None:
    """Serve transport round trips with zero compute.

    For an ``"echo"`` request (a ragged token batch) the reply is a
    serving-shaped result — one ``(length, hidden_size)`` block per request,
    from a preallocated scratch buffer — so a round trip measures exactly
    what the transport adds to a ``forward``: request packing/pickling, the
    doorbell or pipe write, and the parent-side copy-out.  ``"echo_slow"``
    sleeps first (timeout/poisoning tests); ``"close"`` exits.
    """
    dtype = np.dtype(dtype_str)
    scratch = np.zeros(0, dtype=dtype)
    try:
        endpoint.send("ready", None)
        while True:
            try:
                op, payload = endpoint.recv()
            except (EOFError, OSError):
                return
            if op == "close":
                endpoint.send("ok", None)
                return
            if op == "ping":
                endpoint.send("ok", "pong")
                continue
            if op == "echo_slow":
                time.sleep(0.5)
            lengths = [int(np.asarray(item).shape[0]) for item in payload]
            out = endpoint.begin_packed_response(lengths, hidden_size, dtype)
            if out is not None:
                # Write-into-ring path: the "result" bytes are whatever the
                # scratch reservation holds — the compute that would fill
                # them is exactly what this worker leaves out.
                endpoint.commit_packed_response()
                continue
            total = sum(lengths)
            if scratch.size < total * hidden_size:
                scratch = np.zeros(total * hidden_size, dtype=dtype)
            flat = scratch[: total * hidden_size].reshape(total, hidden_size)
            endpoint.send("ok", RequestBatcher.unpack_ragged(flat, lengths))
    finally:
        endpoint.close()


def _spawn_echo_worker(
    kind: str,
    context,
    hidden_size: int,
    dtype: np.dtype,
    request_bytes: int,
    response_bytes: int,
):
    """``(transport, process)`` for a ready echo worker of ``kind``.

    Shared by the IPC microbenchmark and the transport tests; the worker is
    reaped (and the transport closed) on any start failure.
    """
    transport = create_transport(
        kind, context, request_bytes=request_bytes, response_bytes=response_bytes
    )
    process = None
    try:
        process = context.Process(
            target=_echo_worker_main,
            args=(transport.endpoint(), hidden_size, np.dtype(dtype).str),
            name=f"echo-worker-{kind}",
            daemon=True,
        )
        process.start()
        transport.on_worker_started()
        if not transport.poll(120):
            raise TimeoutError(f"{kind} echo worker never became ready")
        status, value = transport.recv()
        if status != "ready":
            raise RuntimeError(f"{kind} echo worker failed to start: {value}")
    except BaseException:
        if process is not None and process.is_alive():
            process.terminate()
            process.join(10)
        transport.close()
        raise
    return transport, process


def _shutdown_echo_worker(transport: WorkerTransport, process) -> None:
    """Polite close handshake, then escalate; always closes the transport."""
    try:
        if process.is_alive():
            transport.send("close", None)
            if transport.poll(10):
                transport.recv()
        process.join(10)
        if process.is_alive():
            process.terminate()
            process.join(10)
    finally:
        transport.close()
