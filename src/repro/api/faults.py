"""Deterministic fault injection for the serving stack.

The serving layer's standing discipline is that every failure mode ships
with a test that provokes it.  Worker death and timeouts were easy to
provoke ad hoc (kill the process, monkeypatch a sleep); the failure modes
added by the resilience layer — crashes at a *specific* request, stalled
responses, corrupted ring frames, spawn failures — need a harness that can
trigger them at exact, reproducible points in a live run.  This module is
that harness.

Design:

``FaultPlan``
    A frozen, picklable description of *what* to inject and *when*, in
    terms of 1-based per-site counters ("crash on the 3rd forward request
    worker 0 handles", "corrupt the 2nd ring response").  Because the plan
    is plain data it crosses the ``spawn`` process boundary inside
    ``_WorkerInit``, so worker-side faults are armed in the worker itself.

``FaultInjector``
    The live counter state for one process.  Each hook site bumps its own
    counter and consults the plan.  Counters are guarded by a private lock
    (hooks may run from multiple serving threads); sleeps and crashes
    happen strictly outside it.

Zero-overhead-when-disabled contract: every hook site in the serving stack
is guarded by ``if _faults._ACTIVE is not None:`` — a single module-global
load and identity check.  No plan installed means no extra work and no
code-path change anywhere.

Note on determinism: the ``session_forward`` counter also ticks for warmup
forwards (worker startup and ``ServingQueue`` warmup each run one), so
plans targeting ``session_error_at`` should account for them or target the
worker-side ``on_worker_request`` sites, which only tick on real requests.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

__all__ = [
    "InjectedFaultError",
    "FaultPlan",
    "FaultInjector",
    "install",
    "uninstall",
    "active",
    "active_plan",
    "inject",
]

#: Exit code used for injected worker crashes, distinct from real segfault
#: or interpreter-error codes so chaos tests can tell them apart.
CRASH_EXIT_CODE = 23

#: Worker ops that count as "a request" for worker-side fault counters.
_WORKER_OPS = ("forward", "forward_deadline", "pooled")


class InjectedFaultError(RuntimeError):
    """An error deliberately raised by the fault injector."""


@dataclass(frozen=True)
class FaultPlan:
    """Seedable, declarative schedule of faults to inject.

    All ``*_at`` fields are 1-based counts at their site and ``None``
    disables that fault.  Worker-side faults (``worker_crash_at``,
    ``worker_stall_at``, ``worker_latency_ms``) fire inside shard worker
    processes; the ``*_worker_index`` selectors restrict them to one
    worker (``None`` targets every worker).  Parent-side faults
    (``corrupt_response_at``, ``spawn_fail_at``) and in-process session
    faults (``session_error_at``) fire wherever the injector is installed.
    """

    seed: int = 0
    # Worker-side faults (armed inside shard worker processes).
    worker_crash_at: Optional[int] = None
    crash_worker_index: Optional[int] = None
    worker_stall_at: Optional[int] = None
    stall_worker_index: Optional[int] = None
    worker_stall_s: float = 0.25
    worker_latency_ms: float = 0.0
    # Session-side faults (any process hosting an InferenceSession).
    session_error_at: Optional[int] = None
    session_error_count: int = 1
    # Parent-side faults.
    corrupt_response_at: Optional[int] = None
    corrupt_count: int = 1
    spawn_fail_at: Optional[int] = None
    spawn_fail_count: int = 1

    def __post_init__(self) -> None:
        for name in (
            "worker_crash_at",
            "worker_stall_at",
            "session_error_at",
            "corrupt_response_at",
            "spawn_fail_at",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (1-based), got {value}")
        for name in ("session_error_count", "corrupt_count", "spawn_fail_count"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.worker_stall_s < 0.0:
            raise ValueError(f"worker_stall_s must be >= 0, got {self.worker_stall_s}")
        if self.worker_latency_ms < 0.0:
            raise ValueError(
                f"worker_latency_ms must be >= 0, got {self.worker_latency_ms}"
            )


class FaultInjector:
    """Live per-process fault state: counters plus the plan they consult.

    Hook methods are cheap no-ops when their fault is not configured.  The
    counter lock is never held across a sleep or a raise.
    """

    def __init__(self, plan: FaultPlan, worker_index: Optional[int] = None) -> None:
        self.plan = plan
        self.worker_index = worker_index
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        # Stream split per worker so every process draws distinct bytes.
        offset = 0 if worker_index is None else worker_index + 1
        self._rng = np.random.default_rng(plan.seed + offset)

    def _next(self, site: str) -> int:
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
        return count

    def counts(self) -> Dict[str, int]:
        """Snapshot of per-site hook counters (for tests and demos)."""
        with self._lock:
            return dict(self._counts)

    @staticmethod
    def _in_window(k: int, at: Optional[int], count: int) -> bool:
        return at is not None and at <= k < at + count

    def _targets(self, index: Optional[int]) -> bool:
        return index is None or index == self.worker_index

    # ------------------------------------------------------------------
    # Hook sites.  Each is called only behind an ``_ACTIVE is not None``
    # guard at its seam.
    # ------------------------------------------------------------------

    def on_worker_request(self, op: str) -> None:
        """Worker loop, right after a request op is received."""
        if op not in _WORKER_OPS:
            return
        plan = self.plan
        k = self._next("worker_request")
        if plan.worker_latency_ms > 0.0:
            time.sleep(plan.worker_latency_ms / 1000.0)
        if (
            plan.worker_stall_at is not None
            and self._targets(plan.stall_worker_index)
            and self._in_window(k, plan.worker_stall_at, 1)
        ):
            time.sleep(plan.worker_stall_s)
        if (
            plan.worker_crash_at is not None
            and self._targets(plan.crash_worker_index)
            and k == plan.worker_crash_at
        ):
            # Hard exit: no cleanup, no exception — indistinguishable from
            # an OOM kill or segfault from the parent's point of view.
            os._exit(CRASH_EXIT_CODE)

    def on_session_forward(self) -> None:
        """Top of ``InferenceSession.forward`` (ticks on warmups too)."""
        plan = self.plan
        if plan.session_error_at is None:
            return
        k = self._next("session_forward")
        if self._in_window(k, plan.session_error_at, plan.session_error_count):
            raise InjectedFaultError(f"injected session fault on forward #{k}")

    def on_ring_response(self, ring) -> None:
        """Parent transport, just before decoding a ring response frame."""
        plan = self.plan
        if plan.corrupt_response_at is None:
            return
        k = self._next("ring_response")
        if self._in_window(k, plan.corrupt_response_at, plan.corrupt_count):
            ring.corrupt_payload(int(self._rng.integers(0, 1 << 31)))

    def on_spawn(self) -> None:
        """Top of ``spawn_replica`` on both pool kinds."""
        plan = self.plan
        if plan.spawn_fail_at is None:
            return
        k = self._next("spawn")
        if self._in_window(k, plan.spawn_fail_at, plan.spawn_fail_count):
            raise InjectedFaultError(f"injected spawn failure on spawn #{k}")


#: The process-wide injector, or None (the common case: no faults armed).
_ACTIVE: Optional[FaultInjector] = None


def install(plan: FaultPlan, worker_index: Optional[int] = None) -> FaultInjector:
    """Arm ``plan`` process-wide; returns the live injector."""
    global _ACTIVE
    injector = FaultInjector(plan, worker_index=worker_index)
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Disarm fault injection process-wide."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    """The installed injector, or None when fault injection is disabled."""
    return _ACTIVE


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, or None — what pools bake into worker inits."""
    return None if _ACTIVE is None else _ACTIVE.plan


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Context manager: arm ``plan`` for the block, disarm on exit."""
    injector = install(plan)
    try:
        yield injector
    finally:
        if _ACTIVE is injector:
            uninstall()
