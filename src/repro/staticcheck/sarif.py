"""SARIF 2.1.0 output so CI systems can ingest the report natively.

One run, one driver (``repro.staticcheck``), one rule descriptor per rule
id that actually fired.  Baselined findings are emitted with
``suppressions`` (kind ``external``, carrying the baseline reason) so code
scanners show them as reviewed rather than hiding them; inline-suppressed
findings stay out entirely, matching the text/json formats' gate
semantics.  ``partialFingerprints`` carries the same line-independent
``rule|path|symbol`` identity the baseline uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .findings import Finding

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_LEVELS = {"error": "error", "warning": "warning"}


def _result(finding: Finding, suppression_reason: Optional[str] = None) -> Dict:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"repro/v1": finding.fingerprint},
    }
    if suppression_reason is not None:
        result["suppressions"] = [
            {"kind": "external", "justification": suppression_reason}
        ]
    return result


def to_sarif(report, baseline_reasons: Optional[Dict[str, str]] = None) -> Dict:
    """Render an :class:`~repro.staticcheck.engine.Report` as a SARIF log."""
    reasons = baseline_reasons or {}
    results: List[Dict] = [_result(f) for f in report.findings]
    for finding in report.baselined:
        results.append(
            _result(
                finding,
                suppression_reason=reasons.get(
                    finding.fingerprint, "baselined without a recorded reason"
                ),
            )
        )
    rule_ids = sorted({r["ruleId"] for r in results})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.staticcheck",
                        "rules": [{"id": rule_id} for rule_id in rule_ids],
                    }
                },
                "results": results,
            }
        ],
    }
