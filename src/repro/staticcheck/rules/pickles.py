"""Pickle-boundary checker (``pickle-unsafe``).

In modules declared a worker boundary (``# staticcheck: pickle-boundary``)
— the transport seam and the sharded-pool bootstrap — everything pushed
through ``*.send(...)`` or handed to ``Process(target=..., args=...)``
must survive pickling in a *spawned* child.  This rule is a syntactic
deny-list for values that certainly will not:

* lambdas and generator expressions;
* functions defined *inside* the current function (spawn pickles by
  qualified name; a closure-local function cannot be looked up);
* ``self.<attr>`` where the attribute name screams unpicklable runtime
  state (``lock``/``cond``/``thread``/``semaphore``/``executor``/
  ``pool``/``sock``/``session``): locks and live sessions must be
  reconstructed worker-side from spec payloads, never shipped.

Spec dicts, ndarrays, fitted tables, and module-level worker mains all
pass untouched — the allowlist is "everything this rule cannot prove
broken", which matches how the seam is actually used.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Set

from ..findings import Finding
from ._common import FunctionNode, call_name, self_attr

__all__ = ["PickleBoundaryRule"]

_SUSPECT_ATTR = re.compile(
    r"(lock|cond|thread|semaph|executor|pool|sock|session)", re.IGNORECASE
)
_SINK_METHODS = {"send"}
_SPAWN_LEAVES = {"Process"}


class PickleBoundaryRule:
    rule_ids = ("pickle-unsafe",)

    def check_module(self, src) -> Iterable[Finding]:
        if "pickle-boundary" not in src.tags:
            return []
        findings: List[Finding] = []
        self._walk(src, src.tree, "<module>", nested=set(), findings=findings)
        return findings

    def _walk(
        self, src, node: ast.AST, scope: str, nested: Set[str], findings: List[Finding]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, *FunctionNode)):
                name = child.name if scope == "<module>" else f"{scope}.{child.name}"
                # Names of functions nested one level deeper are closure-local
                # from the perspective of child's body.
                child_nested: Set[str] = set()
                if isinstance(child, FunctionNode):
                    child_nested = {
                        stmt.name
                        for stmt in child.body
                        if isinstance(stmt, FunctionNode)
                    }
                self._walk(src, child, name, child_nested, findings)
            else:
                if isinstance(child, ast.Call):
                    self._check_call(src, child, scope, nested, findings)
                self._walk(src, child, scope, nested, findings)

    def _check_call(
        self, src, call: ast.Call, scope: str, nested: Set[str], findings: List[Finding]
    ) -> None:
        func = call.func
        is_sink = isinstance(func, ast.Attribute) and func.attr in _SINK_METHODS
        name = call_name(call)
        is_spawn = name is not None and name.rsplit(".", 1)[-1] in _SPAWN_LEAVES
        if not (is_sink or is_spawn):
            return
        payloads = list(call.args) + [kw.value for kw in call.keywords]
        for payload in payloads:
            for node in ast.walk(payload):
                bad = self._classify(node, nested)
                if bad is None:
                    continue
                kind, detail = bad
                sink = "send()" if is_sink else "Process(...)"
                findings.append(
                    Finding(
                        rule="pickle-unsafe",
                        path=src.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{detail} shipped through {sink} will not survive "
                            "the pickle boundary into a spawned worker"
                        ),
                        symbol=f"{scope}:{kind}",
                    )
                )

    @staticmethod
    def _classify(node: ast.AST, nested: Set[str]):
        if isinstance(node, ast.Lambda):
            return "lambda", "a lambda"
        if isinstance(node, ast.GeneratorExp):
            return "genexp", "a generator expression"
        if isinstance(node, ast.Name) and node.id in nested:
            return node.id, f"nested function {node.id!r}"
        attr = self_attr(node)
        if attr is not None and _SUSPECT_ATTR.search(attr):
            return attr, f"self.{attr} (unpicklable runtime state by name)"
        return None
