"""Built-in rule set."""

from .locks import LockDisciplineRule
from .lifecycle import ResourceLifecycleRule
from .dtypes import DtypeDisciplineRule
from .pickles import PickleBoundaryRule
from .parity import ParityGateRule

ALL_RULES = (
    LockDisciplineRule,
    ResourceLifecycleRule,
    DtypeDisciplineRule,
    PickleBoundaryRule,
    ParityGateRule,
)

__all__ = [
    "ALL_RULES",
    "LockDisciplineRule",
    "ResourceLifecycleRule",
    "DtypeDisciplineRule",
    "PickleBoundaryRule",
    "ParityGateRule",
]
