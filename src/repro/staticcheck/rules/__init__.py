"""Built-in rule set.

Per-module rules implement ``check_module(source)``; whole-program rules
implement ``check_project(ctx)`` where ``ctx`` is a
:class:`~repro.staticcheck.engine.RuleContext` carrying the shared
:class:`~repro.staticcheck.facts.ProjectFacts` (class index + MRO, call
graph, lock/blocking summaries).  A rule may implement both.
"""

from .locks import LockDisciplineRule
from .lifecycle import ResourceLifecycleRule
from .dtypes import DtypeDisciplineRule
from .pickles import PickleBoundaryRule
from .parity import ParityGateRule
from .lockorder import BlockingUnderLockRule, LockOrderRule
from .specdrift import SpecDriftRule

ALL_RULES = (
    LockDisciplineRule,
    ResourceLifecycleRule,
    DtypeDisciplineRule,
    PickleBoundaryRule,
    ParityGateRule,
    LockOrderRule,
    BlockingUnderLockRule,
    SpecDriftRule,
)

__all__ = [
    "ALL_RULES",
    "LockDisciplineRule",
    "ResourceLifecycleRule",
    "DtypeDisciplineRule",
    "PickleBoundaryRule",
    "ParityGateRule",
    "LockOrderRule",
    "BlockingUnderLockRule",
    "SpecDriftRule",
]
