"""Small AST helpers shared by the rules (re-exported from
:mod:`..astutil`, which the facts layer also uses — importing from here
must not pull the rule registry in, so keep this file re-export-only)."""

from ..astutil import (  # noqa: F401
    FunctionNode,
    call_name,
    dotted_name,
    iter_functions,
    iter_scoped_nodes,
    self_attr,
)

__all__ = [
    "FunctionNode",
    "call_name",
    "dotted_name",
    "iter_functions",
    "iter_scoped_nodes",
    "self_attr",
]
