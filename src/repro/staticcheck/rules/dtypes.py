"""Dtype-discipline checker (``dtype-upcast``).

In modules declared hot-path (``# staticcheck: hot-path``), numpy
constructors that default to float64 must spell their ``dtype=`` out.
A bare ``np.zeros(n)`` inside an fp32 pipeline silently mints float64,
and the first binary op upcasts the whole tensor — exactly the class of
bug the ``compute_dtype`` parity contract exists to prevent.

Flagged without ``dtype=`` (always default to float64):
``np.zeros/ones/empty/full/linspace/eye/identity``.  ``np.array`` /
``np.asarray`` are flagged only when called on a *literal* (list/tuple/
number): on an existing array they preserve its dtype, which is the
codebase's deliberate idiom.  ``np.arange`` is excluded (integer args
yield int64 — a different, intentional contract), as are the ``*_like``
constructors (dtype-preserving).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..findings import Finding
from ._common import call_name, iter_scoped_nodes

__all__ = ["DtypeDisciplineRule"]

_ALWAYS_FLOAT64 = {"zeros", "ones", "empty", "full", "linspace", "eye", "identity"}
_LITERAL_ONLY = {"array", "asarray", "ascontiguousarray"}
_NUMPY_ROOTS = {"np", "numpy"}


class DtypeDisciplineRule:
    rule_ids = ("dtype-upcast",)

    def check_module(self, src) -> Iterable[Finding]:
        if "hot-path" not in src.tags:
            return []
        findings: List[Finding] = []
        for scope, node in iter_scoped_nodes(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or "." not in name:
                continue
            root, leaf = name.split(".", 1)[0], name.rsplit(".", 1)[-1]
            if root not in _NUMPY_ROOTS:
                continue
            if any(kw.arg in ("dtype", "like") for kw in node.keywords):
                continue
            if leaf in _ALWAYS_FLOAT64:
                pass
            elif leaf in _LITERAL_ONLY and node.args and _is_literal(node.args[0]):
                pass
            else:
                continue
            findings.append(
                Finding(
                    rule="dtype-upcast",
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"np.{leaf}(...) without dtype= mints float64 in a "
                        "hot-path module; pass dtype= explicitly (float64 is "
                        "fine — just say so)"
                    ),
                    symbol=f"{scope}:{leaf}",
                )
            )
        return findings


def _is_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Tuple)):
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float, complex)):
        return True
    return False
