"""Interprocedural lock rules (``lock-order``, ``blocking-under-lock``).

Both ride on the whole-program facts (:mod:`..facts`): per-function lock
acquisitions, the locks held at every call site, the blocking operations a
function performs, and the call graph that connects them.

``lock-order`` builds the global lock-acquisition graph — an edge A -> B
whenever some code path acquires B while holding A, either directly
(nested ``with``) or through any chain of calls — and reports every cycle
between *distinct* locks: two threads entering the cycle from different
edges can each hold the lock the other needs, the classic ABBA deadlock.
Self-edges (re-acquisition of the same token) are out of scope: the token
identity cannot distinguish two instances of one class, so they would be
dominated by false positives.

``blocking-under-lock`` reports a blocking operation (``Connection.recv``/
``poll``, ``connection.wait``, ``Thread/Process.join``, ``Condition.wait``,
``queue.get``, ``subprocess`` waits, ``time.sleep``) executed — or
transitively reachable through calls — while a ``threading`` lock is held.
That is the exact shape of the recv-busy-wait and queue-hang bugs this
repo has fixed by hand before: every other thread needing the lock stalls
for as long as the blocked call takes, which may be forever.  The one
sanctioned idiom is exempt: ``self._cond.wait()`` while holding only the
lock *aliased by that condition* releases the lock as it sleeps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..findings import Finding

__all__ = ["LockOrderRule", "BlockingUnderLockRule", "short_token"]


def short_token(token: str) -> str:
    """Readable lock name: last two dotted components (``Class.attr``)."""
    return ".".join(token.split(".")[-2:])


def _scope_of(qualname: str, module_name: str) -> str:
    """Finding symbol scope: the qualname without its module prefix."""
    prefix = f"{module_name}."
    return qualname[len(prefix):] if qualname.startswith(prefix) else qualname


class LockOrderRule:
    rule_ids = ("lock-order",)

    def check_project(self, ctx) -> Iterable[Finding]:
        facts = ctx.facts
        trans = facts.transitive_acquires()
        # edge (a, b): acquiring b while holding a; keep one representative
        # witness per edge for the report.
        edges: Dict[Tuple[str, str], Tuple[str, int, int, str]] = {}

        def witness(a: str, b: str, func, line: int, col: int, via: str) -> None:
            if a == b:
                return
            edges.setdefault((a, b), (func.module, line, col, via))

        for func in facts.functions.values():
            for acq in func.acquires:
                for held in acq.held:
                    witness(
                        held, acq.token, func, acq.line, acq.col,
                        f"{_scope_of(func.qualname, _modname(facts, func))} acquires "
                        f"{short_token(acq.token)} directly",
                    )
            for call in func.calls:
                if not call.held:
                    continue
                for target in facts.resolve_call(func, call.name):
                    for token in trans.get(target, ()):
                        for held in call.held:
                            witness(
                                held, token, func, call.line, call.col,
                                f"{_scope_of(func.qualname, _modname(facts, func))} "
                                f"calls {call.name} which may acquire "
                                f"{short_token(token)}",
                            )

        findings: List[Finding] = []
        for cycle in _cycles({a: set() for pair in edges for a in pair}, edges):
            tokens = sorted(cycle)
            label = " <-> ".join(short_token(t) for t in tokens)
            # Witness edge: the lexicographically first edge inside the cycle.
            inside = sorted(
                (pair, loc) for pair, loc in edges.items()
                if pair[0] in cycle and pair[1] in cycle
            )
            (a, b), (module, line, col, via) = inside[0]
            findings.append(
                Finding(
                    rule="lock-order",
                    path=module,
                    line=line,
                    col=col,
                    message=(
                        f"lock-order cycle between {label}: some path acquires "
                        f"{short_token(b)} while holding {short_token(a)} "
                        f"({via}) and another path takes them in the opposite "
                        "order — two threads can deadlock"
                    ),
                    symbol=f"cycle:{label}",
                )
            )
        return findings


def _modname(facts, func) -> str:
    mod = facts.modules.get(func.module)
    return mod.modname if mod is not None else ""


def _cycles(
    nodes: Dict[str, Set[str]],
    edges: Dict[Tuple[str, str], object],
) -> List[Set[str]]:
    """Strongly connected components with >= 2 nodes (Tarjan, iterative)."""
    graph: Dict[str, List[str]] = {n: [] for n in nodes}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    out: List[Set[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = graph[node]
            while child_i < len(children):
                child = children[child_i]
                child_i += 1
                if child not in index:
                    work[-1] = (node, child_i)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) >= 2:
                    out.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return out


class BlockingUnderLockRule:
    rule_ids = ("blocking-under-lock",)

    def check_project(self, ctx) -> Iterable[Finding]:
        facts = ctx.facts
        trans = facts.transitive_blocking()
        findings: List[Finding] = []
        for func in facts.functions.values():
            modname = _modname(facts, func)
            scope = _scope_of(func.qualname, modname)
            # Blocking ops performed directly under a lock.
            for op in func.blocking:
                offending = _offending(op.held, op.exempt_token)
                if offending:
                    findings.append(
                        self._finding(
                            func, op.line, op.col, scope,
                            target=op.label,
                            labels=[op.label],
                            locks=offending,
                        )
                    )
            # Blocking ops reachable through a call made under a lock.
            for call in func.calls:
                if not call.held:
                    continue
                labels: Set[str] = set()
                locks: Set[str] = set()
                for target in facts.resolve_call(func, call.name):
                    for label, exempt in trans.get(target, ()):
                        offending = _offending(call.held, exempt)
                        if offending:
                            labels.add(label)
                            locks.update(offending)
                if labels:
                    findings.append(
                        self._finding(
                            func, call.line, call.col, scope,
                            target=call.name.rsplit(".", 1)[-1],
                            labels=sorted(labels),
                            locks=locks,
                        )
                    )
        return findings

    @staticmethod
    def _finding(func, line, col, scope, *, target, labels, locks) -> Finding:
        lock_names = ", ".join(sorted(short_token(t) for t in locks))
        return Finding(
            rule="blocking-under-lock",
            path=func.module,
            line=line,
            col=col,
            message=(
                f"{', '.join(labels)} may block while {lock_names} is held "
                f"(via {target}); every thread contending for the lock stalls "
                "until it returns"
            ),
            symbol=f"{scope}:{target}",
        )


def _offending(held, exempt: Optional[str]) -> Set[str]:
    offending = set(held)
    if exempt is not None:
        offending.discard(exempt)
    return offending
