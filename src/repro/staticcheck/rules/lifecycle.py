"""Resource-lifecycle checker (``resource-leak``).

Every acquisition of an OS-backed resource — ``SharedMemory(...)``,
``tempfile.mkstemp()``, builtin ``open(...)``, ``socket.socket(...)`` —
bound to a local variable must provably reach its release.  Accepted
proofs, in the spirit of how this codebase actually manages ownership:

* a release call (``v.close()/unlink()/release()/terminate()``,
  ``os.close/unlink/remove/replace(v)``) inside a ``finally`` block or an
  ``except`` handler of the same function (covers the
  ``try: ... except BaseException: cleanup(); raise`` idiom);
* an *immediate* release — the very next statement in the same block
  (``fd, tmp = mkstemp(); os.close(fd)``): nothing can raise in between;
* ownership transfer: the value is returned/yielded, stored into an
  attribute/container (``self._blocks[name] = block``,
  ``handles.append(block)``), or passed to another call — whoever
  receives it owns it now.  Attribute storage only counts when the
  enclosing class actually defines a teardown method
  (``close``/``unlink``/``release``/``shutdown``/``__exit__``/``__del__``
  or a ``weakref.finalize`` registration); stashing a handle on a class
  with no teardown is still a leak.

Acquisitions inside a ``with`` are inherently fine and never tracked.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..findings import Finding
from ._common import FunctionNode, call_name, self_attr

__all__ = ["ResourceLifecycleRule"]

_ACQUIRE_LEAVES = {"SharedMemory", "mkstemp", "socket"}
_RELEASE_METHODS = {"close", "unlink", "release", "terminate", "shutdown"}
_OS_RELEASE = {"os.close", "os.unlink", "os.remove", "os.replace", "os.rename"}
_TEARDOWN_METHODS = {
    "close",
    "unlink",
    "release",
    "shutdown",
    "terminate",
    "__exit__",
    "__del__",
}


def _is_acquire(call: ast.Call) -> Optional[str]:
    name = call_name(call)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    if leaf in _ACQUIRE_LEAVES:
        return leaf
    if name == "open":
        return "open"
    return None


def _class_has_teardown(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, FunctionNode) and stmt.name in _TEARDOWN_METHODS:
            return True
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("weakref.finalize", "finalize"):
                return True
    return False


class ResourceLifecycleRule:
    rule_ids = ("resource-leak",)

    def check_module(self, src) -> Iterable[Finding]:
        findings: List[Finding] = []
        self._walk(src, src.tree, scope="<module>", cls=None, findings=findings)
        return findings

    def _walk(self, src, node: ast.AST, scope: str, cls, findings: List[Finding]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                name = child.name if scope == "<module>" else f"{scope}.{child.name}"
                self._walk(src, child, name, child, findings)
            elif isinstance(child, FunctionNode):
                name = child.name if scope == "<module>" else f"{scope}.{child.name}"
                self._check_function(src, child, name, cls, findings)
                self._walk(src, child, name, cls, findings)
            else:
                self._walk(src, child, scope, cls, findings)

    # -- per function ------------------------------------------------------

    def _check_function(
        self, src, func: ast.AST, scope: str, cls, findings: List[Finding]
    ) -> None:
        acquisitions: List[Tuple[str, str, ast.stmt, List[ast.stmt], int]] = []

        def scan_block(stmts: List[ast.stmt]) -> None:
            for idx, stmt in enumerate(stmts):
                if isinstance(stmt, FunctionNode):
                    continue  # nested function: handled as its own scope
                if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                    kind = _is_acquire(stmt.value)
                    if kind is not None:
                        for var in _target_names(stmt.targets):
                            acquisitions.append((var, kind, stmt, stmts, idx))
                        for target in stmt.targets:
                            attr = self_attr(target)
                            if attr is None:
                                continue
                            # Acquired straight onto self: fine iff the class
                            # can actually tear it down.
                            if cls is None or not _class_has_teardown(cls):
                                where = (
                                    "a class with no teardown method"
                                    if cls is not None
                                    else "module state"
                                )
                                findings.append(
                                    Finding(
                                        rule="resource-leak",
                                        path=src.rel,
                                        line=stmt.lineno,
                                        col=stmt.col_offset,
                                        message=(
                                            f"{kind}(...) handle self.{attr} is "
                                            f"stored on {where}: nothing ever "
                                            "closes it"
                                        ),
                                        symbol=f"{scope}:{attr}:{kind}",
                                    )
                                )
                for _, value in ast.iter_fields(stmt):
                    if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                        scan_block(value)
                    elif isinstance(value, list):
                        for item in value:
                            if isinstance(item, ast.excepthandler):
                                scan_block(item.body)
                            elif isinstance(item, ast.withitem):
                                pass

        scan_block(getattr(func, "body", []))
        if not acquisitions:
            return

        protected = _protected_release_vars(func)
        for var, kind, stmt, block, idx in acquisitions:
            if var in protected:
                continue
            if idx + 1 < len(block) and _stmt_releases(block[idx + 1], var):
                continue
            escape = _escapes(func, var, stmt)
            if escape == "transfer":
                continue
            if escape == "attr":
                if cls is not None and _class_has_teardown(cls):
                    continue
                where = "a class with no teardown method" if cls is not None else "module state"
                findings.append(
                    Finding(
                        rule="resource-leak",
                        path=src.rel,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            f"{kind}(...) handle {var!r} is stored on {where}: "
                            "nothing ever closes it"
                        ),
                        symbol=f"{scope}:{var}:{kind}",
                    )
                )
                continue
            findings.append(
                Finding(
                    rule="resource-leak",
                    path=src.rel,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"{kind}(...) handle {var!r} has no release guaranteed on "
                        "all paths (use try/finally, an except-cleanup handler, "
                        "or a with block)"
                    ),
                    symbol=f"{scope}:{var}:{kind}",
                )
            )


def _target_names(targets: Sequence[ast.expr]) -> List[str]:
    names: List[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    names.append(elt.id)
    return names


def _releases_var(call: ast.Call, var: str) -> bool:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == var
        and func.attr in _RELEASE_METHODS
    ):
        return True
    name = call_name(call)
    if name in _OS_RELEASE and call.args:
        first = call.args[0]
        if isinstance(first, ast.Name) and first.id == var:
            return True
    return False


def _stmt_releases(stmt: ast.stmt, var: str) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and _releases_var(node, var):
            return True
    return False


def _protected_release_vars(func: ast.AST) -> Set[str]:
    """Variables released inside a finally block or an except handler
    somewhere in the function."""
    protected: Set[str] = set()

    def collect(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    func_node = node.func
                    if isinstance(func_node, ast.Attribute) and isinstance(
                        func_node.value, ast.Name
                    ):
                        if func_node.attr in _RELEASE_METHODS:
                            protected.add(func_node.value.id)
                    name = call_name(node)
                    if name in _OS_RELEASE and node.args:
                        first = node.args[0]
                        if isinstance(first, ast.Name):
                            protected.add(first.id)

    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            collect(node.finalbody)
            for handler in node.handlers:
                collect(handler.body)
    return protected


def _escapes(func: ast.AST, var: str, acquire_stmt: ast.stmt) -> Optional[str]:
    """``"transfer"`` if ownership provably leaves the function,
    ``"attr"`` if it is stashed on an attribute/container, else None."""
    attr_store = False
    for node in ast.walk(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and _mentions(value, var):
                return "transfer"
        elif isinstance(node, ast.Assign) and node is not acquire_stmt:
            stored = any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
            )
            if stored and _mentions(node.value, var):
                if any(
                    isinstance(t, ast.Attribute) and self_attr(t) is not None
                    for t in node.targets
                ):
                    attr_store = True
                else:
                    return "transfer"  # stored into a caller-visible container
        elif isinstance(node, ast.Call):
            if _releases_var(node, var):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == var:
                    return "transfer"
    return "attr" if attr_store else None


def _mentions(expr: ast.expr, var: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == var for node in ast.walk(expr)
    )
