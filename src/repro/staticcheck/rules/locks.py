"""Lock-discipline / race checker.

Per class, infer the guard attributes (``self._lock = threading.Lock()``,
``self._work = threading.Condition(self._lock)`` — the Condition aliases
its underlying lock, so holding either holds both) and which instance
attributes the class protects with them: an attribute with at least one
*guarded* write outside ``__init__`` is considered lock-protected, and any
access to it from another method without the owning lock held is flagged
(``unguarded-attr``).  Also enforces the Condition idiom: ``G.wait()``
must sit inside a ``while``-predicate loop (``wait-no-loop``) and
``G.notify()/notify_all()`` requires the lock held (``notify-no-lock``).

Heuristics that keep the rule honest on this codebase:

* ``__init__`` (and ``__del__``/``__post_init__``) are construction /
  teardown — single-threaded by contract, never flagged.
* A method that calls ``self.G.acquire(...)`` manages the guard manually
  (e.g. timed acquisition in ``_ShardClient.shutdown``); the static
  with-block analysis cannot follow it, so the whole method is exempt.
* Functions nested inside a method (thread targets, callbacks) start with
  no locks held — they typically run later, on another thread.
"""

from __future__ import annotations

import ast
from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Set

from ..facts import GuardScan
from ..findings import Finding
from ._common import FunctionNode, call_name, iter_functions, self_attr

__all__ = ["LockDisciplineRule"]

_EXEMPT_METHODS = {"__init__", "__del__", "__post_init__", "__enter__", "__exit__"}


class _Access(NamedTuple):
    attr: str
    method: str
    held: FrozenSet[str]  # group representatives held at this point
    is_write: bool
    line: int
    col: int
    manual_sync: bool


class _ClassLocks:
    """Guard discovery for one class — a thin view over the shared
    :class:`~repro.staticcheck.facts.GuardScan` (the same discovery and
    Condition-alias grouping the whole-program facts use)."""

    def __init__(self, node: ast.ClassDef) -> None:
        scan = GuardScan(node)
        self.guards: Set[str] = set(scan.parent)
        self.cond_guards: Set[str] = scan.cond_guards
        self._groups: Dict[str, str] = scan.groups()

    def group(self, name: str) -> str:
        return self._groups.get(name, name)


class LockDisciplineRule:
    rule_ids = ("unguarded-attr", "wait-no-loop", "notify-no-lock")

    def check_module(self, src) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(src, node))
        return findings

    # -- per class ---------------------------------------------------------

    def _check_class(self, src, node: ast.ClassDef) -> List[Finding]:
        locks = _ClassLocks(node)
        if not locks.guards:
            return []

        accesses: List[_Access] = []
        findings: List[Finding] = []

        for method_name, func in iter_functions(node):
            manual = self._manually_synchronized(func, locks)
            self._walk_block(
                src,
                node.name,
                method_name,
                func.body,
                held=frozenset(),
                locks=locks,
                accesses=accesses,
                findings=findings,
                manual_sync=manual,
                in_while=False,
            )

        # Which attributes does the class actually protect?  An attribute
        # counts as protected when some method other than __init__ writes it
        # with a guard held.
        owner_votes: Dict[str, Counter] = {}
        for acc in accesses:
            if acc.is_write and acc.held and acc.method not in _EXEMPT_METHODS:
                owner_votes.setdefault(acc.attr, Counter()).update(acc.held)

        for acc in accesses:
            votes = owner_votes.get(acc.attr)
            if not votes:
                continue
            if acc.method in _EXEMPT_METHODS or acc.manual_sync:
                continue
            owning = votes.most_common(1)[0][0]
            if owning in acc.held:
                continue
            kind = "write" if acc.is_write else "read"
            findings.append(
                Finding(
                    rule="unguarded-attr",
                    path=src.rel,
                    line=acc.line,
                    col=acc.col,
                    message=(
                        f"{kind} of self.{acc.attr} without holding the lock "
                        f"(self.{owning}) that guards its writes elsewhere in "
                        f"{node.name}"
                    ),
                    symbol=f"{node.name}.{acc.method}:{acc.attr}",
                )
            )
        return findings

    @staticmethod
    def _manually_synchronized(func: ast.AST, locks: _ClassLocks) -> bool:
        for sub in ast.walk(func):
            if isinstance(sub, ast.Call):
                name = call_name(sub)
                if name is None:
                    continue
                parts = name.split(".")
                if (
                    len(parts) == 3
                    and parts[0] == "self"
                    and parts[1] in locks.guards
                    and parts[2] == "acquire"
                ):
                    return True
        return False

    # -- guarded-region walk ----------------------------------------------

    def _walk_block(
        self,
        src,
        class_name: str,
        method: str,
        stmts: List[ast.stmt],
        *,
        held: FrozenSet[str],
        locks: _ClassLocks,
        accesses: List[_Access],
        findings: List[Finding],
        manual_sync: bool,
        in_while: bool,
    ) -> None:
        for stmt in stmts:
            self._walk_stmt(
                src,
                class_name,
                method,
                stmt,
                held=held,
                locks=locks,
                accesses=accesses,
                findings=findings,
                manual_sync=manual_sync,
                in_while=in_while,
            )

    def _walk_stmt(
        self,
        src,
        class_name: str,
        method: str,
        stmt: ast.stmt,
        *,
        held: FrozenSet[str],
        locks: _ClassLocks,
        accesses: List[_Access],
        findings: List[Finding],
        manual_sync: bool,
        in_while: bool,
    ) -> None:
        kwargs = dict(
            held=held,
            locks=locks,
            accesses=accesses,
            findings=findings,
            manual_sync=manual_sync,
            in_while=in_while,
        )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = set(held)
            for item in stmt.items:
                attr = self_attr(item.context_expr)
                if attr is not None and attr in locks.guards:
                    new_held.add(locks.group(attr))
                else:
                    self._scan_expr(src, class_name, method, item.context_expr, **kwargs)
            self._walk_block(
                src,
                class_name,
                method,
                stmt.body,
                **{**kwargs, "held": frozenset(new_held)},
            )
            return
        if isinstance(stmt, FunctionNode):
            # Nested function: runs later, possibly on another thread —
            # analyse with nothing held, under a qualified scope name.
            self._walk_block(
                src,
                class_name,
                f"{method}.{stmt.name}",
                stmt.body,
                **{**kwargs, "held": frozenset()},
            )
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(src, class_name, method, stmt.test, **kwargs)
            self._walk_block(
                src, class_name, method, stmt.body, **{**kwargs, "in_while": True}
            )
            self._walk_block(src, class_name, method, stmt.orelse, **kwargs)
            return

        # Generic statement: scan expressions, recurse into child blocks.
        for field_name, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                is_store = field_name in ("target", "targets")
                self._scan_expr(
                    src, class_name, method, value, is_write=is_store, **kwargs
                )
            elif isinstance(value, list):
                if value and isinstance(value[0], ast.stmt):
                    self._walk_block(src, class_name, method, value, **kwargs)
                elif field_name == "targets":
                    for tgt in value:
                        if isinstance(tgt, ast.expr):
                            self._scan_expr(
                                src, class_name, method, tgt, is_write=True, **kwargs
                            )
                else:
                    for item in value:
                        if isinstance(item, ast.expr):
                            self._scan_expr(src, class_name, method, item, **kwargs)
                        elif isinstance(item, ast.excepthandler):
                            self._walk_block(src, class_name, method, item.body, **kwargs)
                        elif isinstance(item, ast.withitem):  # pragma: no cover
                            self._scan_expr(
                                src, class_name, method, item.context_expr, **kwargs
                            )

    def _scan_expr(
        self,
        src,
        class_name: str,
        method: str,
        expr: ast.expr,
        *,
        held: FrozenSet[str],
        locks: _ClassLocks,
        accesses: List[_Access],
        findings: List[Finding],
        manual_sync: bool,
        in_while: bool,
        is_write: bool = False,
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._check_cond_call(
                    src, class_name, method, node, held, locks, findings, in_while
                )
            attr = self_attr(node)
            if attr is None or attr in locks.guards:
                continue
            ctx_write = is_write and node is expr
            if isinstance(getattr(node, "ctx", None), (ast.Store, ast.Del)):
                ctx_write = True
            accesses.append(
                _Access(
                    attr=attr,
                    method=method,
                    held=held,
                    is_write=ctx_write,
                    line=node.lineno,
                    col=node.col_offset,
                    manual_sync=manual_sync,
                )
            )

    def _check_cond_call(
        self,
        src,
        class_name: str,
        method: str,
        call: ast.Call,
        held: FrozenSet[str],
        locks: _ClassLocks,
        findings: List[Finding],
        in_while: bool,
    ) -> None:
        name = call_name(call)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "self" or parts[1] not in locks.guards:
            return
        guard, op = parts[1], parts[2]
        if op == "wait" and guard in locks.cond_guards and not in_while:
            findings.append(
                Finding(
                    rule="wait-no-loop",
                    path=src.rel,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"self.{guard}.wait() outside a while-predicate loop: "
                        "spurious wakeups make a bare wait incorrect"
                    ),
                    symbol=f"{class_name}.{method}:{guard}.wait",
                )
            )
        elif op in ("notify", "notify_all") and locks.group(guard) not in held:
            findings.append(
                Finding(
                    rule="notify-no-lock",
                    path=src.rel,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"self.{guard}.{op}() without the condition's lock "
                        "held raises RuntimeError at runtime"
                    ),
                    symbol=f"{class_name}.{method}:{guard}.{op}",
                )
            )
