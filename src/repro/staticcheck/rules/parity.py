"""Parity-gate audit (``parity-gap``).

The repo's standing contract is that every serving shape is gated
bitwise-equal to per-call inference under ``compute_dtype="float64"``.
This project-level rule cross-references the public forward-shaped entry
points of the serving surface (``api/`` modules) against ``tests/``: a
public method named ``forward``/``forward_deadline``/``forward_packed``/
``pooled``/``classify``/``serve``/``serve_one``/``generate`` reachable on a public
class must be named — together with its class and the token ``float64`` —
by at least one test file.  A new serving API with no parity test is
exactly the rot this package exists to catch.

Attribution rides on the whole-program class index: a class with
project-internal subclasses is an abstract seam (``ReplicaPool``), and the
thing actually exercised by callers — and therefore the thing that needs a
parity test under its own name — is each concrete *leaf* subclass, with
every entry point it defines **or inherits**.  (The pre-facts version
attributed inherited methods to the abstract base, so a leaf pool with no
parity tests at all could hide behind its parent's coverage.)

The rule only runs when the analysis is given a tests directory (the CLI
passes ``<root>/tests`` automatically when it exists), so scanning a
stray file elsewhere never produces spurious gaps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from ..findings import Finding

__all__ = ["ParityGateRule", "HOT_ENTRY_POINTS"]

HOT_ENTRY_POINTS = frozenset(
    {
        "forward",
        "forward_deadline",
        "forward_packed",
        "pooled",
        "classify",
        "serve",
        "serve_one",
        "generate",
    }
)


class ParityGateRule:
    rule_ids = ("parity-gap",)

    def check_project(self, ctx) -> Iterable[Finding]:
        tests_dir = ctx.tests_dir
        if tests_dir is None or not Path(tests_dir).is_dir():
            return []
        test_texts: List[str] = []
        for test_file in sorted(Path(tests_dir).rglob("test_*.py")):
            try:
                test_texts.append(test_file.read_text(encoding="utf-8"))
            except OSError:
                continue
        facts = ctx.facts
        findings: List[Finding] = []
        for cls in sorted(facts.classes.values(), key=lambda c: c.qualname):
            if not cls.public or "/api/" not in f"/{cls.module}":
                continue
            if facts.subclasses.get(cls.qualname):
                # Abstract seam: its entry points are audited on each
                # concrete leaf, under the leaf's own name.
                continue
            for method, line in self._entry_points(facts, cls):
                if self._covered(cls.name, method, test_texts):
                    continue
                findings.append(
                    Finding(
                        rule="parity-gap",
                        path=cls.module,
                        line=line,
                        col=0,
                        message=(
                            f"{cls.name}.{method} is a public serving "
                            "entry point but no test file names it together "
                            "with a float64 parity check"
                        ),
                        symbol=f"{cls.name}.{method}",
                    )
                )
        return findings

    @staticmethod
    def _entry_points(facts, cls) -> List[Tuple[str, int]]:
        """(method, report line) for every hot entry point the class
        defines or inherits from a project class, innermost-MRO first."""
        out: Dict[str, int] = {}
        for qualname in facts.mro(cls.qualname):
            owner = facts.classes[qualname]
            for method, func_qual in owner.methods.items():
                if method not in HOT_ENTRY_POINTS or method in out:
                    continue
                if owner is cls:
                    line = facts.functions[func_qual].lineno
                else:
                    # Inherited: point at the leaf class definition — that
                    # is where the missing parity coverage belongs.
                    line = cls.lineno
                out[method] = line
        return sorted(out.items())

    @staticmethod
    def _covered(class_name: str, method: str, test_texts: List[str]) -> bool:
        for text in test_texts:
            if class_name in text and method in text and "float64" in text:
                return True
        return False
