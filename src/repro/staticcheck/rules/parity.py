"""Parity-gate audit (``parity-gap``).

The repo's standing contract is that every serving shape is gated
bitwise-equal to per-call inference under ``compute_dtype="float64"``.
This project-level rule cross-references the public forward-shaped entry
points of the serving surface (``api/`` modules) against ``tests/``: a
public method named ``forward``/``forward_packed``/``pooled``/
``classify``/``serve``/``serve_one``/``generate`` on a public class must
be named — together with its class and the token ``float64`` — by at
least one test file.  A new serving API with no parity test is exactly
the rot this package exists to catch.

The rule only runs when the analysis is given a tests directory (the CLI
passes ``<root>/tests`` automatically when it exists), so scanning a
stray file elsewhere never produces spurious gaps.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..findings import Finding
from ._common import FunctionNode

__all__ = ["ParityGateRule", "HOT_ENTRY_POINTS"]

HOT_ENTRY_POINTS = frozenset(
    {"forward", "forward_packed", "pooled", "classify", "serve", "serve_one", "generate"}
)


class ParityGateRule:
    rule_ids = ("parity-gap",)

    def check_project(
        self, sources: Sequence[object], tests_dir: Optional[Path]
    ) -> Iterable[Finding]:
        if tests_dir is None or not Path(tests_dir).is_dir():
            return []
        test_texts: List[str] = []
        for test_file in sorted(Path(tests_dir).rglob("test_*.py")):
            try:
                test_texts.append(test_file.read_text(encoding="utf-8"))
            except OSError:
                continue
        findings: List[Finding] = []
        for src in sources:
            if "/api/" not in f"/{src.rel}":
                continue
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                    continue
                for stmt in node.body:
                    if not isinstance(stmt, FunctionNode):
                        continue
                    if stmt.name not in HOT_ENTRY_POINTS:
                        continue
                    if self._covered(node.name, stmt.name, test_texts):
                        continue
                    findings.append(
                        Finding(
                            rule="parity-gap",
                            path=src.rel,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"{node.name}.{stmt.name} is a public serving "
                                "entry point but no test file names it together "
                                "with a float64 parity check"
                            ),
                            symbol=f"{node.name}.{stmt.name}",
                        )
                    )
        return findings

    @staticmethod
    def _covered(class_name: str, method: str, test_texts: List[str]) -> bool:
        for text in test_texts:
            if class_name in text and method in text and "float64" in text:
                return True
        return False
