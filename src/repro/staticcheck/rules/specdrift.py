"""Serialisation drift audits (``spec-drift``, ``opcode-unhandled``).

The serving stack ships three kinds of structured payloads across the
process boundary: dataclass specs serialised with ``to_dict``/``from_dict``
(``SessionConfig``, ``BackendSpec``, ``OperatorSpec``, ``LookupTable``),
and control-message opcodes on the worker transports.  Both halves of each
protocol live in different functions — often different modules — so
nothing at runtime checks they agree until a worker rebuilds a config
wrong or hangs on an unanswered message.

``spec-drift`` proves, for every class defining both ``to_dict`` and
``from_dict``:

* **field coverage** — every dataclass field is read (``self.<field>``) by
  ``to_dict`` or by a same-class method it calls (the write closure, so
  ``BackendSpec.to_dict`` gets credit for the fields ``operators()``
  reads).  A field that never reaches the payload silently resets on the
  worker.
* **key symmetry** — every key ``to_dict`` writes is read (or at least
  admitted by the ``known``-set vocabulary) in ``from_dict``, and every
  key ``from_dict`` knows is actually written.  Deleting a field from
  ``SessionConfig.to_dict()`` fails here.
* **default consistency** — a literal fallback in ``from_dict``
  (``payload.get("k", d)`` / ``_typed_field(payload, "k", t, d)``) must
  equal the dataclass field's literal default; otherwise an absent key
  deserialises to a different config than the dataclass would construct.

``opcode-unhandled`` audits the pickle-boundary module group (everything
tagged ``# staticcheck: pickle-boundary``): every opcode string constant
sent with ``.send("op", ...)`` / ``._call("op", ...)`` must be compared
against (handled) somewhere in the group.  Deleting a handler branch from
``_worker_main`` fails here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..facts import NO_DEFAULT, OPAQUE_DEFAULT, ClassFacts, ProjectFacts
from ..findings import Finding

__all__ = ["SpecDriftRule"]

#: Depth bound for the same-class write closure of ``to_dict``.
_CLOSURE_DEPTH = 3


def _write_closure_reads(facts: ProjectFacts, cls: ClassFacts) -> Set[str]:
    """``self.<attr>`` names read by ``to_dict`` or same-class methods it
    calls, expanded to ``_CLOSURE_DEPTH`` levels of ``self.m()`` calls."""
    reads: Set[str] = set()
    to_dict = facts.find_method(cls.qualname, "to_dict")
    if to_dict is None:
        return reads
    frontier = [to_dict]
    seen = {to_dict}
    for _ in range(_CLOSURE_DEPTH):
        next_frontier: List[str] = []
        for qualname in frontier:
            func = facts.functions.get(qualname)
            if func is None:
                continue
            reads.update(func.self_reads)
            for call in func.calls:
                head, _, leaf = call.name.rpartition(".")
                if head != "self":
                    continue
                target = facts.find_method(cls.qualname, leaf)
                if target is not None and target not in seen:
                    seen.add(target)
                    next_frontier.append(target)
        if not next_frontier:
            break
        frontier = next_frontier
    return reads


class SpecDriftRule:
    rule_ids = ("spec-drift", "opcode-unhandled")

    def check_project(self, ctx) -> Iterable[Finding]:
        facts: ProjectFacts = ctx.facts
        findings: List[Finding] = []
        for cls in facts.classes.values():
            serde = cls.serde
            if serde is None or not (serde.has_to and serde.has_from):
                continue
            findings.extend(self._check_class(facts, cls))
        findings.extend(self._check_opcodes(facts))
        return findings

    # -- to_dict / from_dict pairs ---------------------------------------
    def _check_class(self, facts: ProjectFacts, cls: ClassFacts) -> List[Finding]:
        serde = cls.serde
        findings: List[Finding] = []

        # Field coverage: every dataclass field must reach the payload.
        if cls.is_dataclass and cls.fields:
            reads = _write_closure_reads(facts, cls)
            for fld in cls.fields:
                if fld.name not in reads:
                    findings.append(
                        Finding(
                            rule="spec-drift",
                            path=cls.module,
                            line=serde.to_dict_line,
                            col=0,
                            message=(
                                f"dataclass field {cls.name}.{fld.name} is never "
                                "read by to_dict() (or the methods it calls): "
                                "it silently resets to its default across the "
                                "serialisation boundary"
                            ),
                            symbol=f"{cls.name}.serialize:{fld.name}",
                        )
                    )

        # Key symmetry: the write and read vocabularies must agree.
        read_vocab = serde.known_keys | serde.from_dict_keys
        if serde.to_dict_keys is not None and read_vocab:
            for key in sorted(serde.to_dict_keys - read_vocab):
                findings.append(
                    Finding(
                        rule="spec-drift",
                        path=cls.module,
                        line=serde.to_dict_line,
                        col=0,
                        message=(
                            f"{cls.name}.to_dict() writes key {key!r} but "
                            "from_dict() neither reads nor admits it — the "
                            "value is dropped (or rejected) on rebuild"
                        ),
                        symbol=f"{cls.name}.to_dict:{key}",
                    )
                )
            for key in sorted(read_vocab - serde.to_dict_keys):
                findings.append(
                    Finding(
                        rule="spec-drift",
                        path=cls.module,
                        line=serde.from_dict_line,
                        col=0,
                        message=(
                            f"{cls.name}.from_dict() expects key {key!r} but "
                            "to_dict() never writes it — a round-tripped "
                            "payload always takes the fallback path"
                        ),
                        symbol=f"{cls.name}.from_dict:{key}",
                    )
                )

        # Default consistency: from_dict fallbacks vs dataclass defaults.
        field_defaults: Dict[str, str] = {f.name: f.default for f in cls.fields}
        for key, fallback in sorted(serde.defaults.items()):
            declared = field_defaults.get(key)
            if declared is None or declared in (OPAQUE_DEFAULT, NO_DEFAULT):
                continue
            if fallback in (OPAQUE_DEFAULT,):
                continue
            if fallback != declared:
                findings.append(
                    Finding(
                        rule="spec-drift",
                        path=cls.module,
                        line=serde.from_dict_line,
                        col=0,
                        message=(
                            f"{cls.name}.from_dict() defaults {key!r} to "
                            f"{fallback} but the dataclass field defaults to "
                            f"{declared}: an absent key deserialises to a "
                            "different config than construction would produce"
                        ),
                        symbol=f"{cls.name}.default:{key}",
                    )
                )
        return findings

    # -- control-message opcodes -----------------------------------------
    def _check_opcodes(self, facts: ProjectFacts) -> List[Finding]:
        group = [
            mod for mod in facts.modules.values() if "pickle-boundary" in mod.tags
        ]
        if not group:
            return []
        handled: Set[str] = set()
        for mod in group:
            handled.update(mod.handled_ops)
        findings: List[Finding] = []
        for mod in sorted(group, key=lambda m: m.rel):
            for op, (line, col) in sorted(mod.sent_ops.items()):
                if op in handled:
                    continue
                findings.append(
                    Finding(
                        rule="opcode-unhandled",
                        path=mod.rel,
                        line=line,
                        col=col,
                        message=(
                            f"control message {op!r} is sent across the worker "
                            "boundary but no pickle-boundary module compares "
                            "against it — the other side cannot handle it"
                        ),
                        symbol=f"op:{op}",
                    )
                )
        return findings
