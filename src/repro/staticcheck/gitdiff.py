"""``--diff`` support: map a git ref to the set of changed lines per file.

Runs ``git diff -U0 <ref> -- .`` at the project root and parses the
unified-diff hunk headers — no third-party dependency, no worktree
mutation.  Only the *new-side* line numbers matter (findings are reported
against the current tree); deletions contribute the line the hunk lands
on, so a finding sitting right where code was removed still surfaces.

The result maps root-relative POSIX paths (the same shape
:class:`~repro.staticcheck.findings.Finding` carries) to sets of changed
line numbers.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path
from typing import Dict, Set

__all__ = ["changed_lines", "GitDiffError"]

_HUNK = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")
_NEW_FILE = re.compile(r"^\+\+\+ (?:b/)?(.+)$")


class GitDiffError(RuntimeError):
    """``git diff`` could not be run or did not understand the ref."""


def changed_lines(ref: str, root: Path) -> Dict[str, Set[int]]:
    """Changed (new-side) lines per root-relative path since ``ref``.

    Uncommitted work counts: the diff is taken against the working tree,
    exactly what the analyzer is about to scan.
    """
    try:
        proc = subprocess.run(
            ["git", "diff", "-U0", "--no-color", ref, "--", "."],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise GitDiffError(f"could not run git diff: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"exit code {proc.returncode}"
        raise GitDiffError(f"git diff {ref!r} failed: {detail}")
    return parse_unified_diff(proc.stdout)


def parse_unified_diff(text: str) -> Dict[str, Set[int]]:
    """New-side changed lines per path from ``-U0`` unified diff text."""
    changed: Dict[str, Set[int]] = {}
    current: Set[int] = set()
    for line in text.splitlines():
        match = _NEW_FILE.match(line)
        if match is not None:
            target = match.group(1)
            if target == "/dev/null":  # file deleted: nothing on the new side
                current = set()
                continue
            current = changed.setdefault(Path(target).as_posix(), set())
            continue
        match = _HUNK.match(line)
        if match is None:
            continue
        start = int(match.group(1))
        count = int(match.group(2)) if match.group(2) is not None else 1
        if count == 0:
            # Pure deletion: anchor on the surviving line so findings that
            # now sit where code vanished still count as touched.
            current.add(max(start, 1))
        else:
            current.update(range(start, start + count))
    return changed
