"""Command-line front end: ``python -m repro.staticcheck [paths] ...``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import Baseline, Report, analyze, default_rules
from .gitdiff import GitDiffError, changed_lines
from .sarif import to_sarif

__all__ = ["main", "build_parser"]

DEFAULT_BASELINE_NAME = "staticcheck_baseline.json"

#: Exit-code contract (scripts/check.sh and CI rely on it):
#:   0 — gate clean (no non-baselined, non-suppressed findings)
#:   1 — at least one live finding (or a stale baseline entry)
#:   2 — usage / environment error (bad --diff ref, unreadable baseline)
EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE = 0, 1, 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=(
            "Invariant-aware static analysis: lock discipline, resource "
            "lifecycle, dtype discipline, pickle boundary, parity-gate audit."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyse (default: src/ if it exists, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--diff",
        metavar="GIT_REF",
        default=None,
        help=(
            "only report findings on lines/symbols changed since GIT_REF "
            "(facts are still built over everything scanned); stale-baseline "
            "checking is disabled in this mode"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "phase-1 parser processes (default: auto — serial below "
            "the parallel threshold, else one per core up to 8)"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root anchoring relative paths/fingerprints (default: cwd)",
    )
    parser.add_argument(
        "--tests",
        type=Path,
        default=None,
        help="tests directory for the parity audit (default: <root>/tests if present)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current non-suppressed findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to keep (others are dropped from the report)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = (args.root or Path.cwd()).resolve()

    paths: List[Path] = [Path(p) for p in args.paths]
    if not paths:
        default = root / "src"
        paths = [default if default.is_dir() else root]

    tests_dir = args.tests
    if tests_dir is None:
        candidate = root / "tests"
        tests_dir = candidate if candidate.is_dir() else None

    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)
    baseline: Optional[Baseline] = None
    if not args.no_baseline:
        if baseline_path.is_file():
            baseline = Baseline.load(baseline_path)
        elif args.write_baseline:
            baseline = Baseline(path=baseline_path)

    diff_lines = None
    if args.diff is not None:
        try:
            diff_lines = changed_lines(args.diff, root)
        except GitDiffError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    report = analyze(
        paths,
        root=root,
        tests_dir=tests_dir,
        baseline=baseline,
        rules=default_rules(),
        jobs=args.jobs,
        changed_lines=diff_lines,
    )

    if args.rules:
        keep = {r.strip() for r in args.rules.split(",") if r.strip()}
        report = Report(
            findings=[f for f in report.findings if f.rule in keep],
            baselined=[f for f in report.baselined if f.rule in keep],
            suppressed=[f for f in report.suppressed if f.rule in keep],
            stale_baseline=report.stale_baseline,
        )

    if args.write_baseline:
        if baseline is None:
            baseline = Baseline(path=baseline_path)
        baseline.save(report.findings + report.baselined)
        print(
            f"wrote {len({f.fingerprint for f in report.findings + report.baselined})} "
            f"entries to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.fmt == "sarif":
        reasons = baseline.entries if baseline is not None else {}
        print(json.dumps(to_sarif(report, baseline_reasons=reasons), indent=2))
    elif args.fmt == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in report.findings],
                    "baselined": [f.to_dict() for f in report.baselined],
                    "suppressed": [f.to_dict() for f in report.suppressed],
                    "stale_baseline": report.stale_baseline,
                    "ok": report.ok,
                },
                indent=2,
            )
        )
    else:
        for finding in report.findings:
            print(
                f"{finding.location()}: {finding.severity}[{finding.rule}] "
                f"{finding.message}"
            )
        for fp in report.stale_baseline:
            print(f"stale baseline entry (no longer fires): {fp}", file=sys.stderr)
        summary = (
            f"{len(report.findings)} finding(s), "
            f"{len(report.baselined)} baselined, "
            f"{len(report.suppressed)} suppressed"
        )
        stream = sys.stderr if report.findings else sys.stdout
        print(summary, file=stream)

    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
