"""Source collection, caching, fan-out, and the two-phase analyze() driver.

Phase 1 (per file, embarrassingly parallel): parse, run the per-module
rules, and extract the picklable :mod:`.facts` bundle.  Results are cached
in-process by content hash — repeated ``analyze()`` calls over an unchanged
tree (the tier-1 suite runs several) skip straight to phase 2 — and can fan
out over a ``multiprocessing`` pool when the file count is large enough to
amortise the fork (``jobs=`` or ``REPRO_STATICCHECK_JOBS`` override the
auto-threshold).

Phase 2 (whole program, in the parent): link the module facts into one
:class:`~.facts.ProjectFacts` — class index with MRO, call graph, lock and
blocking summaries — and hand a :class:`RuleContext` to every project rule.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .facts import ModuleFacts, ProjectFacts, extract_module_facts, link
from .findings import Finding

__all__ = [
    "ModuleSource",
    "Baseline",
    "Report",
    "RuleContext",
    "analyze",
    "collect_sources",
    "default_rules",
]

_PRAGMA_RE = re.compile(r"#\s*staticcheck:\s*([a-z][a-z0-9-]*)\b")
_IGNORE_RE = re.compile(r"#\s*staticcheck:\s*ignore\[([^\]]+)\]")

#: Module-level declarations a pragma comment may carry.  ``ignore`` is
#: handled separately (it is positional, not module-wide).
MODULE_TAGS = frozenset({"hot-path", "pickle-boundary"})

#: Below this many files a fork pool costs more than it saves; the tier-1
#: tree sits under it on purpose.  ``jobs=`` / REPRO_STATICCHECK_JOBS force
#: either way.
PARALLEL_THRESHOLD = 80


@dataclass
class ModuleSource:
    """One parsed Python module plus its staticcheck annotations.

    ``tree`` is absent when the module came back from a worker process or
    the phase-1 cache — per-module rules already ran against it there, and
    project rules consume :attr:`facts` instead.
    """

    path: Path  # absolute
    rel: str  # project-root-relative, posix separators
    text: str
    tree: Optional[ast.Module]
    tags: Set[str] = field(default_factory=set)
    #: line number -> set of rule ids suppressed there ("*" = all rules)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    facts: Optional[ModuleFacts] = None

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        tags: Set[str] = set()
        suppressions: Dict[int, Set[str]] = {}
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if "staticcheck" not in line:
                continue
            ignore = _IGNORE_RE.search(line)
            if ignore:
                rules = {r.strip() for r in ignore.group(1).split(",") if r.strip()}
                rules = rules or {"*"}
                suppressions.setdefault(lineno, set()).update(rules)
                # A comment-only line suppresses the statement below it; a
                # trailing comment only its own line.  Decorators are
                # transparent: an ignore above ``@decorator`` lines reaches
                # the ``def``/``class`` they decorate.
                if line.lstrip().startswith("#"):
                    target = lineno + 1
                    while target <= len(lines) and lines[target - 1].lstrip().startswith("@"):
                        suppressions.setdefault(target, set()).update(rules)
                        target += 1
                    suppressions.setdefault(target, set()).update(rules)
                continue
            for match in _PRAGMA_RE.finditer(line):
                tag = match.group(1)
                if tag in MODULE_TAGS:
                    tags.add(tag)
        rel = _rel_for(path, root)
        source = cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            tags=tags,
            suppressions=suppressions,
        )
        source.facts = extract_module_facts(rel, tree, tags)
        return source

    def is_suppressed(self, finding: Finding) -> bool:
        """True if an ``ignore[...]`` comment applies to the finding's line
        (a trailing comment on the same line, or a comment-only line
        directly above it) and names the rule or ``*``."""
        rules = self.suppressions.get(finding.line)
        return bool(rules) and ("*" in rules or finding.rule in rules)


def _rel_for(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class Baseline:
    """Grandfathered findings, keyed by line-independent fingerprint."""

    path: Optional[Path] = None
    #: fingerprint -> reason
    entries: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        entries: Dict[str, str] = {}
        for entry in data.get("entries", []):
            entries[entry["fingerprint"]] = entry.get("reason", "")
        return cls(path=path, entries=entries)

    def save(self, findings: Sequence[Finding], reasons: Optional[Dict[str, str]] = None) -> None:
        if self.path is None:
            raise ValueError("baseline has no backing path")
        reasons = reasons or {}
        entries = []
        for fp in sorted({f.fingerprint for f in findings}):
            reason = reasons.get(fp) or self.entries.get(fp) or "grandfathered (TODO: justify or fix)"
            entries.append({"fingerprint": fp, "reason": reason})
        payload = {
            "comment": (
                "Grandfathered staticcheck findings. Each entry must carry a reason; "
                "remove the entry when the finding is fixed. Refresh with "
                "`python -m repro.staticcheck src --write-baseline`."
            ),
            "version": 1,
            "entries": entries,
        }
        self.path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: List[Finding]  # new — these fail the gate
    baselined: List[Finding]
    suppressed: List[Finding]
    stale_baseline: List[str]  # baseline fingerprints that no longer fire
    facts: Optional[ProjectFacts] = None

    @property
    def ok(self) -> bool:
        # A stale baseline entry fails the gate too: the entry documents a
        # finding that no longer exists, so the baseline is lying about
        # the tree until it is pruned.
        return not self.findings and not self.stale_baseline


@dataclass
class RuleContext:
    """Everything a project-level rule may ask for.

    ``facts`` is the whole-program view (class index + MRO, call graph,
    lock/blocking summaries); ``sources`` carries per-file text and
    suppressions; ``tests_dir`` feeds the parity audit.
    """

    sources: List[ModuleSource]
    tests_dir: Optional[Path]
    facts: ProjectFacts


def default_rules() -> List[object]:
    """Instantiate one of each built-in rule (import deferred so the
    package can be introspected without pulling every rule in)."""
    from .rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


_SKIP_DIRS = {"__pycache__", ".git", ".hg", "node_modules", ".venv", "venv"}


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.startswith(".") for part in sub.parts):
                    continue
                sub = sub.resolve()
                if sub not in seen:
                    seen.add(sub)
                    files.append(sub)
        elif path.suffix == ".py":
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(resolved)
    return files


def collect_sources(paths: Sequence[Path], root: Path) -> List[ModuleSource]:
    return [ModuleSource.parse(path, root) for path in _collect_files(paths)]


# --------------------------------------------------------------------------- #
# Phase 1: parse + per-module rules + fact extraction (cached, parallel)
# --------------------------------------------------------------------------- #
#: (path, root, sha256, rule-key) -> (ModuleSource without tree, findings)
_PHASE1_CACHE: Dict[Tuple[str, str, str, str], Tuple[ModuleSource, List[Finding]]] = {}
_PHASE1_CACHE_MAX = 4096


def _module_rule_key(rules: Sequence[object]) -> str:
    return ",".join(
        sorted(type(r).__name__ for r in rules if hasattr(r, "check_module"))
    )


def _run_phase1(path: Path, root: Path, rules: Sequence[object]) -> Tuple[ModuleSource, List[Finding]]:
    """Parse one file, run per-module rules, drop the tree."""
    source = ModuleSource.parse(path, root)
    findings: List[Finding] = []
    for rule in rules:
        check_module = getattr(rule, "check_module", None)
        if check_module is not None:
            findings.extend(check_module(source))
    source.tree = None  # picklable + cache-friendly; phase 2 uses facts
    return source, findings


def _phase1_worker(args: Tuple[str, str, Sequence[object]]):
    path_str, root_str, rules = args
    source, findings = _run_phase1(Path(path_str), Path(root_str), rules)
    return source, findings


def _resolve_jobs(jobs: Optional[int], file_count: int) -> int:
    if jobs is None:
        env = os.environ.get("REPRO_STATICCHECK_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        if file_count < PARALLEL_THRESHOLD:
            return 1
        jobs = min(os.cpu_count() or 1, 8)
    return max(1, jobs)


def _load_modules(
    files: Sequence[Path],
    root: Path,
    rules: Sequence[object],
    jobs: Optional[int],
) -> Tuple[List[ModuleSource], List[Finding]]:
    rule_key = _module_rule_key(rules)
    sources: List[ModuleSource] = []
    findings: List[Finding] = []
    missing: List[Path] = []
    keys: Dict[Path, Tuple[str, str, str, str]] = {}
    for path in files:
        sha = hashlib.sha256(path.read_bytes()).hexdigest()
        key = (str(path), str(root.resolve()), sha, rule_key)
        keys[path] = key
        if key not in _PHASE1_CACHE:
            missing.append(path)

    if missing:
        n_jobs = _resolve_jobs(jobs, len(missing))
        produced: Dict[str, Tuple[ModuleSource, List[Finding]]] = {}
        if n_jobs > 1:
            import multiprocessing

            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork: stay serial
                ctx = None
            if ctx is not None:
                work = [(str(p), str(root), rules) for p in missing]
                with ctx.Pool(processes=min(n_jobs, len(work))) as pool:
                    for source, file_findings in pool.map(_phase1_worker, work):
                        produced[str(source.path)] = (source, file_findings)
            else:
                n_jobs = 1
        if n_jobs <= 1:
            for path in missing:
                produced[str(path)] = _run_phase1(path, root, rules)
        if len(_PHASE1_CACHE) > _PHASE1_CACHE_MAX:
            _PHASE1_CACHE.clear()
        for path in missing:
            _PHASE1_CACHE[keys[path]] = produced[str(path)]

    for path in files:
        source, file_findings = _PHASE1_CACHE[keys[path]]
        sources.append(source)
        findings.extend(file_findings)
    return sources, list(findings)


# --------------------------------------------------------------------------- #
# The driver
# --------------------------------------------------------------------------- #
def analyze(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    tests_dir: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[object]] = None,
    jobs: Optional[int] = None,
    changed_lines: Optional[Mapping[str, Set[int]]] = None,
) -> Report:
    """Run every rule over ``paths`` and split findings into
    new / baselined / suppressed.

    ``root`` anchors the relative paths used in fingerprints (defaults to
    the current directory).  ``tests_dir`` feeds the parity audit; when
    ``None`` the audit is skipped.  ``jobs`` forces the phase-1 fan-out
    width (default: auto).  ``changed_lines`` (rel path -> line numbers)
    restricts *reported* findings to changed lines or functions containing
    them — the diff mode of the CLI; facts are still built over everything
    scanned, and staleness reporting is disabled because unchanged files'
    baseline entries legitimately do not fire.
    """
    root = (root or Path.cwd()).resolve()
    resolved_paths = [Path(p) for p in paths]
    if rules is None:
        rules = default_rules()

    files = _collect_files(resolved_paths)
    sources, raw = _load_modules(files, root, rules, jobs)
    facts = link(src.facts for src in sources if src.facts is not None)
    ctx = RuleContext(sources=sources, tests_dir=tests_dir, facts=facts)

    by_rel = {src.rel: src for src in sources}
    for rule in rules:
        check_project = getattr(rule, "check_project", None)
        if check_project is not None:
            raw.extend(check_project(ctx))

    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    findings: List[Finding] = []
    baselined: List[Finding] = []
    suppressed: List[Finding] = []
    fired: Set[str] = set()
    for finding in raw:
        src = by_rel.get(finding.path)
        if src is not None and src.is_suppressed(finding):
            suppressed.append(finding)
            continue
        if baseline is not None and baseline.matches(finding):
            fired.add(finding.fingerprint)
            baselined.append(finding)
            continue
        if changed_lines is not None and not _touches_changes(
            finding, changed_lines, facts
        ):
            continue
        findings.append(finding)

    stale: List[str] = []
    if baseline is not None and changed_lines is None:
        # Only report staleness for files that were actually scanned this
        # run — a partial scan must not claim repo-wide entries are stale.
        scanned = set(by_rel)
        for fp in sorted(baseline.entries):
            try:
                fp_path = fp.split("|", 2)[1]
            except IndexError:
                fp_path = ""
            if fp_path in scanned and fp not in fired:
                stale.append(fp)

    return Report(
        findings=findings,
        baselined=baselined,
        suppressed=suppressed,
        stale_baseline=stale,
        facts=facts,
    )


def _touches_changes(
    finding: Finding,
    changed_lines: Mapping[str, Set[int]],
    facts: ProjectFacts,
) -> bool:
    """Diff filter: the finding's line changed, or it sits inside a
    function/class whose span contains a changed line."""
    lines = changed_lines.get(finding.path)
    if not lines:
        return False
    if finding.line in lines:
        return True
    mod = facts.modules.get(finding.path)
    if mod is None:
        return False
    spans: List[Tuple[int, int]] = [
        (f.lineno, f.end_lineno)
        for f in mod.functions.values()
        if f.lineno <= finding.line <= f.end_lineno
    ]
    spans.extend(
        (c.lineno, c.end_lineno)
        for c in mod.classes.values()
        if c.lineno <= finding.line <= c.end_lineno
    )
    if not spans:
        return False
    # Innermost enclosing scope: the tightest span wins, so a one-line edit
    # elsewhere in a big class does not resurrect every finding in it.
    start, end = min(spans, key=lambda s: s[1] - s[0])
    return any(start <= line <= end for line in lines)
