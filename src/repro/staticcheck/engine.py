"""Source collection, suppression/baseline handling, and the analyze() driver."""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding

__all__ = [
    "ModuleSource",
    "Baseline",
    "Report",
    "analyze",
    "collect_sources",
    "default_rules",
]

_PRAGMA_RE = re.compile(r"#\s*staticcheck:\s*([a-z][a-z0-9-]*)\b")
_IGNORE_RE = re.compile(r"#\s*staticcheck:\s*ignore\[([^\]]+)\]")

#: Module-level declarations a pragma comment may carry.  ``ignore`` is
#: handled separately (it is positional, not module-wide).
MODULE_TAGS = frozenset({"hot-path", "pickle-boundary"})


@dataclass
class ModuleSource:
    """One parsed Python module plus its staticcheck annotations."""

    path: Path  # absolute
    rel: str  # project-root-relative, posix separators
    text: str
    tree: ast.Module
    tags: Set[str] = field(default_factory=set)
    #: line number -> set of rule ids suppressed there ("*" = all rules)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        tags: Set[str] = set()
        suppressions: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            if "staticcheck" not in line:
                continue
            ignore = _IGNORE_RE.search(line)
            if ignore:
                rules = {r.strip() for r in ignore.group(1).split(",") if r.strip()}
                suppressions.setdefault(lineno, set()).update(rules or {"*"})
                # A comment-only line suppresses the statement below it; a
                # trailing comment only its own line.
                if line.lstrip().startswith("#"):
                    suppressions.setdefault(lineno + 1, set()).update(rules or {"*"})
                continue
            for match in _PRAGMA_RE.finditer(line):
                tag = match.group(1)
                if tag in MODULE_TAGS:
                    tags.add(tag)
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            tags=tags,
            suppressions=suppressions,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """True if an ``ignore[...]`` comment applies to the finding's line
        (a trailing comment on the same line, or a comment-only line
        directly above it) and names the rule or ``*``."""
        rules = self.suppressions.get(finding.line)
        return bool(rules) and ("*" in rules or finding.rule in rules)


@dataclass
class Baseline:
    """Grandfathered findings, keyed by line-independent fingerprint."""

    path: Optional[Path] = None
    #: fingerprint -> reason
    entries: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        entries: Dict[str, str] = {}
        for entry in data.get("entries", []):
            entries[entry["fingerprint"]] = entry.get("reason", "")
        return cls(path=path, entries=entries)

    def save(self, findings: Sequence[Finding], reasons: Optional[Dict[str, str]] = None) -> None:
        if self.path is None:
            raise ValueError("baseline has no backing path")
        reasons = reasons or {}
        entries = []
        for fp in sorted({f.fingerprint for f in findings}):
            reason = reasons.get(fp) or self.entries.get(fp) or "grandfathered (TODO: justify or fix)"
            entries.append({"fingerprint": fp, "reason": reason})
        payload = {
            "comment": (
                "Grandfathered staticcheck findings. Each entry must carry a reason; "
                "remove the entry when the finding is fixed. Refresh with "
                "`python -m repro.staticcheck src --write-baseline`."
            ),
            "version": 1,
            "entries": entries,
        }
        self.path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: List[Finding]  # new — these fail the gate
    baselined: List[Finding]
    suppressed: List[Finding]
    stale_baseline: List[str]  # baseline fingerprints that no longer fire

    @property
    def ok(self) -> bool:
        return not self.findings


def default_rules() -> List[object]:
    """Instantiate one of each built-in rule (import deferred so the
    package can be introspected without pulling every rule in)."""
    from .rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


_SKIP_DIRS = {"__pycache__", ".git", ".hg", "node_modules", ".venv", "venv"}


def collect_sources(paths: Sequence[Path], root: Path) -> List[ModuleSource]:
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.startswith(".") for part in sub.parts):
                    continue
                files.append(sub)
        elif path.suffix == ".py":
            files.append(path)
    sources: List[ModuleSource] = []
    for path in files:
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        sources.append(ModuleSource.parse(path, root))
    return sources


def analyze(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    tests_dir: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[object]] = None,
) -> Report:
    """Run every rule over ``paths`` and split findings into
    new / baselined / suppressed.

    ``root`` anchors the relative paths used in fingerprints (defaults to
    the current directory).  ``tests_dir`` feeds the parity audit; when
    ``None`` the audit is skipped.
    """
    root = (root or Path.cwd()).resolve()
    resolved_paths = [Path(p) for p in paths]
    sources = collect_sources(resolved_paths, root)
    if rules is None:
        rules = default_rules()

    raw: List[Finding] = []
    by_rel = {src.rel: src for src in sources}
    for rule in rules:
        check_module = getattr(rule, "check_module", None)
        if check_module is not None:
            for src in sources:
                raw.extend(check_module(src))
        check_project = getattr(rule, "check_project", None)
        if check_project is not None:
            raw.extend(check_project(sources, tests_dir))

    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    findings: List[Finding] = []
    baselined: List[Finding] = []
    suppressed: List[Finding] = []
    fired: Set[str] = set()
    for finding in raw:
        src = by_rel.get(finding.path)
        if src is not None and src.is_suppressed(finding):
            suppressed.append(finding)
            continue
        if baseline is not None and baseline.matches(finding):
            fired.add(finding.fingerprint)
            baselined.append(finding)
            continue
        findings.append(finding)

    stale: List[str] = []
    if baseline is not None:
        # Only report staleness for files that were actually scanned this
        # run — a partial scan must not claim repo-wide entries are stale.
        scanned = set(by_rel)
        for fp in sorted(baseline.entries):
            try:
                fp_path = fp.split("|", 2)[1]
            except IndexError:
                fp_path = ""
            if fp_path in scanned and fp not in fired:
                stale.append(fp)

    return Report(
        findings=findings,
        baselined=baselined,
        suppressed=suppressed,
        stale_baseline=stale,
    )
