"""Small AST helpers shared by the rules and the facts extractor."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> Optional[str]:
    """``X`` for ``self.X`` nodes, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_functions(
    class_node: ast.ClassDef,
) -> Iterator[Tuple[str, ast.AST]]:
    """Top-level methods of a class, as (name, node)."""
    for stmt in class_node.body:
        if isinstance(stmt, FunctionNode):
            yield stmt.name, stmt


def call_name(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


def iter_scoped_nodes(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield every node with its qualified scope (``Class.method`` /
    ``func.inner`` / ``<module>``)."""

    def visit(node: ast.AST, scope: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, *FunctionNode)):
                name = child.name if scope == "<module>" else f"{scope}.{child.name}"
                yield name, child
                yield from visit(child, name)
            else:
                yield scope, child
                yield from visit(child, scope)

    yield from visit(tree, "<module>")
