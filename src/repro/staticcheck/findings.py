"""The finding record every checker produces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Finding", "SEVERITIES"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``symbol`` is the *stable* identity of the finding — the enclosing
    qualified scope plus the offending name (e.g. ``ServingQueue.start:
    _live_workers``) — deliberately excluding the line number, so baseline
    entries survive unrelated edits to the file.
    """

    rule: str
    path: str  # project-root-relative, posix separators
    line: int
    col: int
    message: str
    symbol: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}|{self.path}|{self.symbol}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "severity": self.severity,
            "fingerprint": self.fingerprint,
        }
