"""Whole-program project facts: the shared substrate phase-2 rules run on.

Phase 1 of the analyzer parses every module once and distills it into a
picklable :class:`ModuleFacts` bundle — classes (bases, methods, dataclass
fields, lock guards), per-function summaries (locks acquired, locks held at
each call site, blocking operations, ``self.<attr>`` reads), imports, and
serialisation (``to_dict``/``from_dict``) shapes.  :func:`link` merges the
per-module bundles into one :class:`ProjectFacts` with the cross-module
structure resolved: an MRO per class, a subclass map, and a call graph that
resolves ``self.method(...)`` (through the MRO *and* down to project
subclasses), ``module.func(...)`` and ``Class.method(...)`` targets.

On top of the call graph, :class:`ProjectFacts` computes two bounded
fixpoints that interprocedural rules consume directly:

* :meth:`ProjectFacts.transitive_acquires` — every lock token a function may
  acquire, directly or through calls (drives the ``lock-order`` graph);
* :meth:`ProjectFacts.transitive_blocking` — every blocking operation
  (``recv``/``join``/``Condition.wait``/``queue.get``/``subprocess`` waits /
  ``time.sleep``) reachable from a function (drives ``blocking-under-lock``).

Both fixpoints only ever grow finite sets, so they terminate; an iteration
cap bounds pathological recursion.  Everything here is deliberately
picklable (plain dataclasses, no AST nodes) so phase 1 can fan out with
``multiprocessing`` and the results stream back cheaply.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .astutil import FunctionNode, call_name, dotted_name, self_attr

__all__ = [
    "Acquire",
    "BlockingOp",
    "CallSite",
    "ClassFacts",
    "FieldInfo",
    "FunctionFacts",
    "GuardScan",
    "ModuleFacts",
    "ProjectFacts",
    "SerdeFacts",
    "extract_module_facts",
    "link",
]

#: Constructors whose result guards shared state.  ``Condition(lock)``
#: aliases the lock it wraps — holding either holds both.
GUARD_CTORS = frozenset({"Lock", "RLock", "Condition"})

#: Iteration cap for the interprocedural fixpoints (recursion guard; the
#: sets are finite and monotone so real code converges in a handful).
FIXPOINT_CAP = 50

#: A ``field(default_factory=...)`` or otherwise non-literal default.
OPAQUE_DEFAULT = "<opaque>"
#: No default at all (a required field / no default argument).
NO_DEFAULT = "<required>"


# --------------------------------------------------------------------------- #
# Picklable fact records
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Acquire:
    """One lock acquisition inside a function body."""

    token: str  # canonical lock identity (see ``ModuleFacts`` docstring)
    held: FrozenSet[str]  # tokens already held when this one is taken
    line: int
    col: int
    manual: bool  # ``.acquire()`` call rather than a ``with`` block


@dataclass(frozen=True)
class CallSite:
    """One call expression, with the locks held when it runs."""

    name: str  # raw dotted callee ("self._recv", "mod.func", "fn")
    held: FrozenSet[str]
    line: int
    col: int


@dataclass(frozen=True)
class BlockingOp:
    """One potentially-blocking operation performed directly by a function.

    ``exempt_token`` carries the lock aliased by a ``self.<cond>.wait()``:
    waiting on a condition *releases* that lock, so holding it alone is the
    correct idiom, not a blocking-under-lock defect.
    """

    label: str  # human-readable operation ("Connection.recv", "time.sleep")
    held: FrozenSet[str]
    line: int
    col: int
    exempt_token: Optional[str] = None


@dataclass
class FunctionFacts:
    """Summary of one function or method body."""

    qualname: str  # "mod.Class.method", "mod.func", "mod.Class.m.inner"
    module: str  # project-relative path
    cls: Optional[str]  # owning class qualname ("mod.Class"), if a method
    name: str
    lineno: int
    end_lineno: int
    acquires: List[Acquire] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    blocking: List[BlockingOp] = field(default_factory=list)
    self_reads: Set[str] = field(default_factory=set)  # ``self.<attr>`` loads


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field declaration."""

    name: str
    #: repr() of a literal default, OPAQUE_DEFAULT, or NO_DEFAULT.
    default: str


@dataclass
class SerdeFacts:
    """Shape of a class's ``to_dict`` / ``from_dict`` pair."""

    #: Constant keys of the dict literal ``to_dict`` returns (None when the
    #: return shape is not a plain dict literal — key checks are skipped).
    to_dict_keys: Optional[Set[str]] = None
    to_dict_line: int = 0
    from_dict_line: int = 0
    #: Same-class methods ``to_dict`` calls (``self.m()``) — the write
    #: closure follows these to credit fields they read.
    to_dict_calls: Set[str] = field(default_factory=set)
    #: Keys ``from_dict`` explicitly reads (``payload["k"]``, ``.get("k")``,
    #: ``_typed_field(payload, "k", ...)``, ``"k" in payload``).
    from_dict_keys: Set[str] = field(default_factory=set)
    #: String-set literals in ``from_dict`` (the ``known`` / unknown-check
    #: vocabulary).
    known_keys: Set[str] = field(default_factory=set)
    #: repr() of the literal default each key falls back to in ``from_dict``.
    defaults: Dict[str, str] = field(default_factory=dict)
    has_to: bool = False
    has_from: bool = False


@dataclass
class ClassFacts:
    name: str
    module: str  # project-relative path
    modname: str  # dotted module name
    qualname: str  # "modname.ClassName"
    lineno: int
    end_lineno: int
    public: bool
    bases: List[str] = field(default_factory=list)  # raw dotted base names
    #: method name -> qualname of the defining FunctionFacts (this class only)
    methods: Dict[str, str] = field(default_factory=dict)
    #: guard attr -> union-find representative within this class
    guard_groups: Dict[str, str] = field(default_factory=dict)
    cond_guards: Set[str] = field(default_factory=set)
    is_dataclass: bool = False
    fields: List[FieldInfo] = field(default_factory=list)
    serde: Optional[SerdeFacts] = None


@dataclass
class ModuleFacts:
    """Everything phase 2 needs to know about one module.

    Lock tokens are canonical strings: ``modname.Class.attr`` for an
    instance guard (attributed to the class that *constructs* it, so every
    subclass's uses converge on one identity) and ``modname.name`` for a
    module-level guard.
    """

    rel: str
    modname: str
    tags: Set[str] = field(default_factory=set)
    #: local alias -> dotted module name (``import x.y as z``)
    imports: Dict[str, str] = field(default_factory=dict)
    #: local name -> (dotted module, attr) (``from m import a as b``)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)  # by name
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)  # by qualname
    module_guards: Set[str] = field(default_factory=set)  # tokens
    #: opcode string -> first (line, col) it is sent from (``.send("op", ...)``
    #: / ``._call("op", ...)`` with a constant first argument)
    sent_ops: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: string constants this module compares against (``op == "close"`` …)
    handled_ops: Set[str] = field(default_factory=set)


# --------------------------------------------------------------------------- #
# Extraction (phase 1, per module, parallel-safe)
# --------------------------------------------------------------------------- #
def module_name_for(rel: str) -> str:
    """Dotted module name for a project-relative path (`src/` stripped)."""
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _literal_repr(node: Optional[ast.expr]) -> str:
    if node is None:
        return NO_DEFAULT
    try:
        return repr(ast.literal_eval(node))
    except (ValueError, TypeError, SyntaxError):
        return OPAQUE_DEFAULT


class GuardScan:
    """Per-class guard discovery with Condition/lock union-find aliasing."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.parent: Dict[str, str] = {}
        self.cond_guards: Set[str] = set()
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            ctor = call_name(stmt.value)
            if ctor is None:
                continue
            leaf = ctor.rsplit(".", 1)[-1]
            if leaf not in GUARD_CTORS:
                continue
            for target in stmt.targets:
                attr = self_attr(target)
                if attr is None:
                    continue
                self.parent.setdefault(attr, attr)
                if leaf == "Condition":
                    self.cond_guards.add(attr)
                    if stmt.value.args:
                        inner = self_attr(stmt.value.args[0])
                        if inner is not None:
                            self.parent.setdefault(inner, inner)
                            self._union(attr, inner)

    def _find(self, name: str) -> str:
        root = name
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        return root

    def _union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self.parent[rb] = ra

    def groups(self) -> Dict[str, str]:
        return {name: self._find(name) for name in self.parent}


_BLOCKING_LAST = {
    "recv": "Connection.recv",
    "recv_bytes": "Connection.recv",
    "communicate": "subprocess communicate",
}

_BLOCKING_FULL = {
    "time.sleep": "time.sleep",
    "subprocess.run": "subprocess.run",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "connection.wait": "connection.wait",
    "mp_connection.wait": "connection.wait",
}

_TIMEOUT_HINTS = ("time", "deadline", "remaining", "wait", "sec")


def _looks_like_timeout(arg: ast.expr) -> bool:
    if isinstance(arg, ast.Constant):
        return isinstance(arg.value, (int, float)) and not isinstance(arg.value, bool)
    if isinstance(arg, ast.Name):
        return any(hint in arg.id.lower() for hint in _TIMEOUT_HINTS)
    return isinstance(arg, (ast.BinOp, ast.Call, ast.Attribute))


def _classify_blocking(call: ast.Call, name: str) -> Optional[str]:
    """Blocking-op label for a call, or None.  Heuristic but deliberate:

    * ``*.recv`` / ``*.recv_bytes`` / ``*.communicate`` always block;
    * ``time.sleep`` / ``subprocess.run|check_*`` / ``connection.wait`` by
      full dotted name;
    * ``*.join`` only with no args or a single timeout-looking arg (keeps
      ``"sep".join(items)`` / ``os.path.join(a, b)`` out);
    * ``*.wait`` with at most a timeout arg (Condition/Event/Connection);
    * ``*.get`` only with zero positional args — ``dict.get(key)`` always
      passes the key positionally, ``queue.get()`` never does.
    """
    if name in _BLOCKING_FULL:
        return _BLOCKING_FULL[name]
    head, _, last = name.rpartition(".")
    if not head or head.startswith("os.path"):
        return None
    if last in _BLOCKING_LAST:
        return _BLOCKING_LAST[last]
    if last == "get":
        return "queue.get" if not call.args else None
    if last == "poll":
        # poll(0) / poll() are non-blocking probes; poll(timeout) waits.
        if call.args and _looks_like_timeout(call.args[0]) and not (
            isinstance(call.args[0], ast.Constant) and not call.args[0].value
        ):
            return "Connection.poll"
        return None
    if last not in ("join", "wait"):
        return None
    # join / wait: at most one positional arg, and it must look like a timeout
    if len(call.args) > 1:
        return None
    if call.args and not _looks_like_timeout(call.args[0]):
        return None
    return f"{name}()"


class _FunctionWalker:
    """Walks one function body tracking the held-lock set."""

    def __init__(
        self,
        facts: FunctionFacts,
        guard_token,  # (attr) -> token or None, for self.<attr>
        module_token,  # (name) -> token or None, for bare names
        cond_guards: Set[str],
        sink: Dict[str, FunctionFacts],
    ) -> None:
        self.facts = facts
        self.guard_token = guard_token
        self.module_token = module_token
        self.cond_guards = cond_guards
        self.sink = sink

    def walk(self, body: Sequence[ast.stmt], held: FrozenSet[str]) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _lock_token(self, expr: ast.expr) -> Optional[str]:
        attr = self_attr(expr)
        if attr is not None:
            return self.guard_token(attr)
        if isinstance(expr, ast.Name):
            return self.module_token(expr.id)
        return None

    def _stmt(self, stmt: ast.stmt, held: FrozenSet[str]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = set(held)
            for item in stmt.items:
                ctx = item.context_expr
                token = self._lock_token(ctx)
                if token is not None:
                    self.facts.acquires.append(
                        Acquire(
                            token=token,
                            held=frozenset(new_held),
                            line=ctx.lineno,
                            col=ctx.col_offset,
                            manual=False,
                        )
                    )
                    new_held.add(token)
                else:
                    self._expr(ctx, held)
            self.walk(stmt.body, frozenset(new_held))
            return
        if isinstance(stmt, FunctionNode):
            # Nested function: runs later, possibly on another thread —
            # summarised separately, starting with nothing held.
            nested = FunctionFacts(
                qualname=f"{self.facts.qualname}.{stmt.name}",
                module=self.facts.module,
                cls=self.facts.cls,
                name=stmt.name,
                lineno=stmt.lineno,
                end_lineno=stmt.end_lineno or stmt.lineno,
            )
            self.sink[nested.qualname] = nested
            _FunctionWalker(
                nested, self.guard_token, self.module_token, self.cond_guards, self.sink
            ).walk(stmt.body, frozenset())
            return
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.expr):
                self._expr(value, held)
            elif isinstance(value, ast.stmt):
                self._stmt(value, held)
            elif isinstance(value, (ast.excepthandler, ast.match_case)):
                for sub in ast.iter_child_nodes(value):
                    if isinstance(sub, ast.stmt):
                        self._stmt(sub, held)
                    elif isinstance(sub, ast.expr):
                        self._expr(sub, held)

    def _expr(self, expr: ast.expr, held: FrozenSet[str]) -> None:
        for node in ast.walk(expr):
            attr = self_attr(node)
            if attr is not None and isinstance(getattr(node, "ctx", None), ast.Load):
                self.facts.self_reads.add(attr)
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            self._call(node, name, held)

    def _call(self, node: ast.Call, name: str, held: FrozenSet[str]) -> None:
        parts = name.split(".")
        # Manual lock management: self.X.acquire() / bare_lock.acquire()
        if parts[-1] == "acquire" and len(parts) >= 2:
            token = None
            if parts[0] == "self" and len(parts) == 3:
                token = self.guard_token(parts[1])
            elif len(parts) == 2:
                token = self.module_token(parts[0])
            if token is not None:
                self.facts.acquires.append(
                    Acquire(
                        token=token,
                        held=held,
                        line=node.lineno,
                        col=node.col_offset,
                        manual=True,
                    )
                )
                return
        label = _classify_blocking(node, name)
        if label is not None:
            exempt = None
            if parts[-1] == "wait" and parts[0] == "self" and len(parts) == 3:
                if parts[1] in self.cond_guards:
                    exempt = self.guard_token(parts[1])
            self.facts.blocking.append(
                BlockingOp(
                    label=label,
                    held=held,
                    line=node.lineno,
                    col=node.col_offset,
                    exempt_token=exempt,
                )
            )
            return
        self.facts.calls.append(
            CallSite(name=name, held=held, line=node.lineno, col=node.col_offset)
        )


def _decorator_names(node: ast.AST) -> List[str]:
    names = []
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.append(name.rsplit(".", 1)[-1])
    return names


def _dataclass_fields(node: ast.ClassDef) -> List[FieldInfo]:
    fields: List[FieldInfo] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        value = stmt.value
        if value is None:
            fields.append(FieldInfo(name=name, default=NO_DEFAULT))
        elif isinstance(value, ast.Call) and (call_name(value) or "").endswith("field"):
            default = NO_DEFAULT
            for kw in value.keywords:
                if kw.arg == "default":
                    default = _literal_repr(kw.value)
                elif kw.arg == "default_factory":
                    default = OPAQUE_DEFAULT
            fields.append(FieldInfo(name=name, default=default))
        else:
            fields.append(FieldInfo(name=name, default=_literal_repr(value)))
    return fields


def _scan_to_dict(func: ast.AST, serde: SerdeFacts) -> None:
    serde.has_to = True
    serde.to_dict_line = func.lineno
    keys: Optional[Set[str]] = None
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            found: Set[str] = set()
            clean = True
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    found.add(key.value)
                else:
                    clean = False
            if clean and (keys is None or found):
                keys = found if keys is None else keys | found
            elif not clean:
                keys = None
                break
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name and name.startswith("self.") and name.count(".") == 1:
                serde.to_dict_calls.add(name.split(".", 1)[1])
    serde.to_dict_keys = keys


def _scan_from_dict(func: ast.AST, serde: SerdeFacts) -> None:
    serde.has_from = True
    serde.from_dict_line = func.lineno
    for node in ast.walk(func):
        if isinstance(node, (ast.Set, ast.List, ast.Tuple)) and node.elts:
            literals = [
                e.value
                for e in node.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            if len(literals) == len(node.elts) and isinstance(node, ast.Set):
                serde.known_keys.update(literals)
        elif isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                serde.from_dict_keys.add(node.slice.value)
        elif isinstance(node, ast.Compare):
            if (
                isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops)
            ):
                serde.from_dict_keys.add(node.left.value)
        elif isinstance(node, ast.Call):
            name = call_name(node) or ""
            leaf = name.rsplit(".", 1)[-1]
            if leaf == "get" and node.args:
                key = node.args[0]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    serde.from_dict_keys.add(key.value)
                    default = node.args[1] if len(node.args) > 1 else None
                    serde.defaults[key.value] = (
                        _literal_repr(default) if default is not None else repr(None)
                    )
            elif leaf == "_typed_field" and len(node.args) >= 2:
                key = node.args[1]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    serde.from_dict_keys.add(key.value)
                    if len(node.args) >= 4:
                        serde.defaults[key.value] = _literal_repr(node.args[3])


def extract_module_facts(rel: str, tree: ast.Module, tags: Set[str]) -> ModuleFacts:
    """Distill one parsed module into its picklable fact bundle."""
    modname = module_name_for(rel)
    facts = ModuleFacts(rel=rel, modname=modname, tags=set(tags))

    # Imports -----------------------------------------------------------
    package = modname.rsplit(".", 1)[0] if "." in modname else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                facts.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = modname.split(".")
                # level 1 = current package, 2 = its parent, ...
                anchor = anchor[: len(anchor) - node.level]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                facts.from_imports[alias.asname or alias.name] = (base, alias.name)

    # Control-message opcodes (pickle-boundary protocol audit) -----------
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = call_name(node)
            leaf = (name or "").rsplit(".", 1)[-1]
            if (
                leaf in ("send", "_call")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                facts.sent_ops.setdefault(
                    node.args[0].value, (node.lineno, node.col_offset)
                )
        elif isinstance(node, ast.Compare):
            if any(isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)) for op in node.ops):
                for side in (node.left, *node.comparators):
                    if isinstance(side, ast.Constant) and isinstance(side.value, str):
                        facts.handled_ops.add(side.value)
                    elif isinstance(side, (ast.Set, ast.Tuple, ast.List)):
                        for elt in side.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                facts.handled_ops.add(elt.value)

    # Module-level guards ------------------------------------------------
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            ctor = call_name(stmt.value)
            if ctor and ctor.rsplit(".", 1)[-1] in GUARD_CTORS:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        facts.module_guards.add(f"{modname}.{target.id}")

    def module_token(name: str) -> Optional[str]:
        token = f"{modname}.{name}"
        return token if token in facts.module_guards else None

    def add_function(node, qualname: str, cls: Optional[ClassFacts]) -> None:
        summary = FunctionFacts(
            qualname=qualname,
            module=rel,
            cls=cls.qualname if cls else None,
            name=node.name,
            lineno=node.lineno,
            end_lineno=node.end_lineno or node.lineno,
        )
        facts.functions[qualname] = summary
        if cls is not None:

            def guard_token(attr: str, _cls=cls) -> Optional[str]:
                rep = _cls.guard_groups.get(attr)
                return f"{_cls.qualname}.{rep}" if rep else None

            cond = cls.cond_guards
        else:

            def guard_token(attr: str) -> Optional[str]:
                return None

            cond = set()
        _FunctionWalker(summary, guard_token, module_token, cond, facts.functions).walk(
            node.body, frozenset()
        )

    for node in tree.body:
        if isinstance(node, FunctionNode):
            add_function(node, f"{modname}.{node.name}", None)
        elif isinstance(node, ast.ClassDef):
            scan = GuardScan(node)
            cls = ClassFacts(
                name=node.name,
                module=rel,
                modname=modname,
                qualname=f"{modname}.{node.name}",
                lineno=node.lineno,
                end_lineno=node.end_lineno or node.lineno,
                public=not node.name.startswith("_"),
                bases=[b for b in (dotted_name(base) for base in node.bases) if b],
                guard_groups=scan.groups(),
                cond_guards=scan.cond_guards,
                is_dataclass="dataclass" in _decorator_names(node),
                fields=[],
            )
            if cls.is_dataclass:
                cls.fields = _dataclass_fields(node)
            serde = SerdeFacts()
            for stmt in node.body:
                if not isinstance(stmt, FunctionNode):
                    continue
                qualname = f"{cls.qualname}.{stmt.name}"
                cls.methods[stmt.name] = qualname
                add_function(stmt, qualname, cls)
                if stmt.name == "to_dict":
                    _scan_to_dict(stmt, serde)
                elif stmt.name == "from_dict":
                    _scan_from_dict(stmt, serde)
            if serde.has_to or serde.has_from:
                cls.serde = serde
            facts.classes[node.name] = cls
    return facts


# --------------------------------------------------------------------------- #
# Linking (phase 1.5, in the parent process)
# --------------------------------------------------------------------------- #
class ProjectFacts:
    """Merged, cross-module view over every :class:`ModuleFacts`."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {m.rel: m for m in modules}
        self.by_modname: Dict[str, ModuleFacts] = {
            m.modname: m for m in self.modules.values()
        }
        self.classes: Dict[str, ClassFacts] = {}
        self.functions: Dict[str, FunctionFacts] = {}
        for mod in self.modules.values():
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
            self.functions.update(mod.functions)
        self._resolved_bases: Dict[str, List[str]] = {}
        self.subclasses: Dict[str, Set[str]] = {}
        for cls in self.classes.values():
            bases = []
            mod = self.modules[cls.module]
            for raw in cls.bases:
                target = self._resolve_class_name(mod, raw)
                if target is not None:
                    bases.append(target)
                    self.subclasses.setdefault(target, set()).add(cls.qualname)
            self._resolved_bases[cls.qualname] = bases
        self._mro_cache: Dict[str, List[str]] = {}
        self._call_cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        self._trans_acquires: Optional[Dict[str, FrozenSet[str]]] = None
        self._trans_blocking: Optional[Dict[str, FrozenSet[Tuple[str, Optional[str]]]]] = None

    # -- class structure -------------------------------------------------
    def _resolve_class_name(self, mod: ModuleFacts, raw: str) -> Optional[str]:
        head, _, rest = raw.partition(".")
        if not rest:
            if head in mod.classes:
                return mod.classes[head].qualname
            if head in mod.from_imports:
                source, attr = mod.from_imports[head]
                target = self.by_modname.get(source)
                if target and attr in target.classes:
                    return target.classes[attr].qualname
            return None
        if head in mod.imports:
            target = self.by_modname.get(mod.imports[head])
            if target and rest in target.classes:
                return target.classes[rest].qualname
        return None

    def mro(self, qualname: str) -> List[str]:
        """Project-internal linearisation (DFS, left-to-right, deduped)."""
        cached = self._mro_cache.get(qualname)
        if cached is not None:
            return cached
        order: List[str] = []
        seen: Set[str] = set()
        stack = [qualname]
        steps = 0
        while stack and steps < 100:
            steps += 1
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            order.append(current)
            stack = self._resolved_bases.get(current, []) + stack
        self._mro_cache[qualname] = order
        return order

    def all_subclasses(self, qualname: str) -> Set[str]:
        out: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            for sub in self.subclasses.get(current, ()):
                if sub not in out:
                    out.add(sub)
                    stack.append(sub)
        return out

    def find_method(self, cls_qualname: str, method: str) -> Optional[str]:
        """Qualname of the FunctionFacts ``cls.method`` resolves to (MRO)."""
        for candidate in self.mro(cls_qualname):
            target = self.classes[candidate].methods.get(method)
            if target is not None:
                return target
        return None

    def class_guard_token(self, cls_qualname: str, attr: str) -> Optional[str]:
        """Canonical token for ``self.<attr>`` on a class, searching the MRO
        so subclass uses converge on the defining class's identity."""
        for candidate in self.mro(cls_qualname):
            rep = self.classes[candidate].guard_groups.get(attr)
            if rep is not None:
                return f"{candidate}.{rep}"
        return None

    # -- call graph -------------------------------------------------------
    def resolve_call(self, caller: FunctionFacts, raw: str) -> Tuple[str, ...]:
        """Project-internal targets a raw callee name may dispatch to."""
        key = (caller.qualname, raw)
        cached = self._call_cache.get(key)
        if cached is not None:
            return cached
        targets = tuple(sorted(self._resolve_call(caller, raw)))
        self._call_cache[key] = targets
        return targets

    def _resolve_call(self, caller: FunctionFacts, raw: str) -> Set[str]:
        mod = self.modules.get(caller.module)
        if mod is None:
            return set()
        parts = raw.split(".")
        out: Set[str] = set()
        if parts[0] in ("self", "cls") and len(parts) == 2 and caller.cls:
            method = parts[1]
            primary = self.find_method(caller.cls, method)
            if primary is not None:
                out.add(primary)
            # Class-hierarchy dispatch: a subclass override may be the one
            # that actually runs.
            for sub in self.all_subclasses(caller.cls):
                override = self.classes[sub].methods.get(method)
                if override is not None:
                    out.add(override)
            return out
        if len(parts) == 1:
            name = parts[0]
            qualname = f"{mod.modname}.{name}"
            if qualname in self.functions:
                out.add(qualname)
            elif name in mod.classes:
                init = self.find_method(mod.classes[name].qualname, "__init__")
                if init:
                    out.add(init)
            elif name in mod.from_imports:
                source, attr = mod.from_imports[name]
                target_mod = self.by_modname.get(source)
                if target_mod is not None:
                    imported = f"{source}.{attr}"
                    if imported in self.functions:
                        out.add(imported)
                    elif attr in target_mod.classes:
                        init = self.find_method(imported, "__init__")
                        if init:
                            out.add(init)
            return out
        if len(parts) == 2:
            head, leaf = parts
            # module alias: mod.func(...)
            if head in mod.imports:
                target_mod = self.by_modname.get(mod.imports[head])
                if target_mod is not None:
                    qualname = f"{target_mod.modname}.{leaf}"
                    if qualname in self.functions:
                        out.add(qualname)
                    elif leaf in target_mod.classes:
                        init = self.find_method(qualname, "__init__")
                        if init:
                            out.add(init)
                return out
            # Class.method(...) on a class visible in this module
            cls_qual = self._resolve_class_name(mod, head)
            if cls_qual is not None:
                target = self.find_method(cls_qual, leaf)
                if target is not None:
                    out.add(target)
            return out
        if len(parts) == 3 and parts[0] in mod.imports:
            # pkgalias.Class.method(...)
            target_mod = self.by_modname.get(mod.imports[parts[0]])
            if target_mod and parts[1] in target_mod.classes:
                target = self.find_method(
                    target_mod.classes[parts[1]].qualname, parts[2]
                )
                if target is not None:
                    out.add(target)
        return out

    # -- interprocedural fixpoints ---------------------------------------
    def transitive_acquires(self) -> Dict[str, FrozenSet[str]]:
        """Lock tokens each function may acquire, directly or via calls."""
        if self._trans_acquires is not None:
            return self._trans_acquires
        state: Dict[str, Set[str]] = {
            q: {a.token for a in f.acquires} for q, f in self.functions.items()
        }
        self._fixpoint(state, lambda acc, target: acc.update(state[target]))
        self._trans_acquires = {q: frozenset(s) for q, s in state.items()}
        return self._trans_acquires

    def transitive_blocking(
        self,
    ) -> Dict[str, FrozenSet[Tuple[str, Optional[str]]]]:
        """(label, exempt_token) pairs reachable from each function."""
        if self._trans_blocking is not None:
            return self._trans_blocking
        state: Dict[str, Set[Tuple[str, Optional[str]]]] = {
            q: {(b.label, b.exempt_token) for b in f.blocking}
            for q, f in self.functions.items()
        }
        self._fixpoint(state, lambda acc, target: acc.update(state[target]))
        self._trans_blocking = {q: frozenset(s) for q, s in state.items()}
        return self._trans_blocking

    def _fixpoint(self, state: Dict[str, Set], merge) -> None:
        for _ in range(FIXPOINT_CAP):
            changed = False
            for qualname, func in self.functions.items():
                acc = state[qualname]
                before = len(acc)
                for call in func.calls:
                    for target in self.resolve_call(func, call.name):
                        merge(acc, target)
                if len(acc) != before:
                    changed = True
            if not changed:
                return


def link(modules: Iterable[ModuleFacts]) -> ProjectFacts:
    """Merge per-module fact bundles into one cross-module view."""
    return ProjectFacts(modules)
