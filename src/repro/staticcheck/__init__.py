"""Invariant-aware static analysis for this repository.

The repo's value proposition is a set of *standing contracts* — bitwise
float64 parity across every serving shape, one shared-memory weight copy per
machine with unlink-on-all-paths, lock-guarded ``ServingQueue`` stats, and
spec payloads that must survive the pickle boundary into ``ShardedPool``
workers.  Nothing about a missed ``with self._lock`` or a silent float64
upcast fails loudly at runtime; it surfaces (maybe) as a flaky test months
later.  This package encodes those contracts as dependency-free,
stdlib-``ast`` checkers so they are enforced *statically* on every run of
the tier-1 suite:

* ``unguarded-attr`` / ``wait-no-loop`` / ``notify-no-lock`` — lock
  discipline (:mod:`.rules.locks`): attributes written under a class's lock
  must not be touched unguarded elsewhere; ``Condition.wait`` belongs in a
  ``while``-predicate loop; ``notify*`` requires the lock held.
* ``resource-leak`` — resource lifecycle (:mod:`.rules.lifecycle`): every
  ``SharedMemory(...)``, ``mkstemp(...)``, ``open(...)`` or socket
  acquisition must reach its release on all paths (``finally``, an
  except-cleanup handler, ownership transfer, or a context manager).
* ``dtype-upcast`` — dtype discipline (:mod:`.rules.dtypes`): in modules
  declared hot-path (``# staticcheck: hot-path``), constructs that silently
  mint float64 (``np.zeros``/``np.empty``/... without ``dtype=``) are
  flagged, protecting the ``compute_dtype`` parity contract.
* ``pickle-unsafe`` — pickle boundary (:mod:`.rules.pickles`): in modules
  declared a worker boundary (``# staticcheck: pickle-boundary``),
  certainly-unpicklable values (lambdas, generators, nested functions,
  lock-like attributes) must not be shipped through ``send``/``Process``.
* ``parity-gap`` — parity-gate audit (:mod:`.rules.parity`): every public
  forward-shaped serving entry point must be named by a float64-parity test,
  attributed to the concrete leaf class (defined *and* inherited methods).

The analysis is **whole-program**: phase 1 parses every file once and
builds shared project facts (:mod:`.facts`) — class index + MRO, call
graph (``self.m()`` / cross-module / subclass dispatch), per-function
lock-acquisition and blocking summaries — and phase 2 runs per-module
rules over each file plus interprocedural rules over the linked facts:

* ``lock-order`` (:mod:`.rules.lockorder`): the global lock-acquisition
  graph must be cycle-free between distinct locks (ABBA deadlocks).
* ``blocking-under-lock`` (:mod:`.rules.lockorder`): no blocking op —
  direct or transitively reachable through calls — while a ``threading``
  lock is held, except a condition waiting on its own aliased lock.
* ``spec-drift`` / ``opcode-unhandled`` (:mod:`.rules.specdrift`):
  ``to_dict``/``from_dict`` pairs must write/read/default fields
  consistently, and every control-message opcode sent across the worker
  boundary must have a handler in the boundary group.

Run it as ``python -m repro.staticcheck [paths] [--format text|json|sarif]
[--diff GIT_REF] [--jobs N]``; suppress a single finding with
``# staticcheck: ignore[rule-id]  -- reason`` on (or directly above) the
offending line; grandfather legacy findings in ``staticcheck_baseline.json``
(one reason per entry; stale entries fail the gate).  The tier-1 smoke test
gates **zero non-baseline findings over src/**.
"""

from .findings import Finding
from .engine import (
    Baseline,
    ModuleSource,
    Report,
    analyze,
    collect_sources,
    default_rules,
)

__all__ = [
    "Finding",
    "Baseline",
    "ModuleSource",
    "Report",
    "analyze",
    "collect_sources",
    "default_rules",
]
