"""Composite Transformer operators built from scalar approximators.

The Transformer's non-linear blocks decompose into scalar primitives plus
exact linear reductions (sums, means), which a MAC array computes natively:

* **GELU** — a single table look-up per element.
* **Softmax** — ``exp`` look-ups on max-subtracted inputs, an exact row sum,
  then a ``1/x`` look-up on the sum and a multiply (the paper trains the
  ``exp`` table on (-256, 0) and the ``divide`` table on (1, 1024)).
* **LayerNorm** — exact mean/variance, a ``1/sqrt`` look-up on the variance
  (with the Sec.-3.3.2 input scaling), then a multiply per element.

Each composite takes *any* scalar approximator with a ``__call__`` interface —
a float LookupTable, an FP16/INT32 quantised table, a Linear-LUT baseline, an
I-BERT integer kernel, or the exact reference — so the same classes drive the
software-accuracy experiments for every method in the paper.

Approximators additionally exposing the fused ``evaluate(x, out=...)`` kernel
(see :mod:`repro.core.lut`) are driven through it: the composites preserve the
input's floating dtype (float32 stays float32 end to end) and chain their
intermediate buffers through :func:`repro.core.lut.evaluate_many` instead of
allocating fresh temporaries at every step.
"""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from . import functions
from .lut import _NATIVE_DTYPES, evaluate_many
from .scaling import InputScaler

__all__ = [
    "ScalarApproximator",
    "ExactScalar",
    "LutGelu",
    "LutSoftmax",
    "LutLayerNorm",
    "ExactGelu",
    "ExactSoftmax",
    "ExactLayerNorm",
]

#: Anything mapping an ndarray of scalars to an ndarray of the same shape.
ScalarApproximator = Callable[[np.ndarray], np.ndarray]


def _as_float(x: np.ndarray) -> np.ndarray:
    """Single dtype check shared by the composites: floats pass through."""
    x = np.asarray(x)
    if x.dtype not in _NATIVE_DTYPES:
        x = x.astype(np.float64)
    return x


@dataclass
class ExactScalar:
    """Wrap an exact numpy function so it quacks like a LookupTable."""

    function: ScalarApproximator
    name: str = "exact"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.function(np.asarray(x, dtype=np.float64)))


# --------------------------------------------------------------------------- #
# GELU
# --------------------------------------------------------------------------- #
def _gelu_forward(op: "LutGelu", x: np.ndarray) -> np.ndarray:
    """Reference GELU composite body (``x`` already a float array).

    Shared between :class:`LutGelu` and the ``NumpyKernel`` compute kernel so
    the kernel seam has a single source of truth for the reference op order.
    """
    if op.clip_range is None:
        (result,) = evaluate_many([(op.gelu_approx, x, None)])
        return result
    low, high = op.clip_range
    inside = np.clip(x, low, high)
    (approx,) = evaluate_many([(op.gelu_approx, inside, inside)])
    # Saturated tails: GELU(x) ~ x for large x and ~0 for very negative x.
    np.copyto(approx, x, where=x > high, casting="same_kind")
    approx[x < low] = 0.0
    return approx


@dataclass
class LutGelu:
    """Element-wise GELU through a scalar approximator.

    ``clip_range`` bounds the table input to its training range; outside it
    GELU is effectively linear/zero and the outer LUT segments extrapolate,
    but clipping to the trained range is what the fixed-width hardware
    comparator does, so we model it explicitly.

    ``kernel`` optionally routes evaluation through a compute kernel (see
    :mod:`repro.core.kernels`); ``None`` keeps the plain numpy path.
    """

    gelu_approx: ScalarApproximator
    clip_range: tuple[float, float] | None = (-5.0, 5.0)
    kernel: object | None = field(default=None, compare=False)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x)
        if self.kernel is not None:
            return self.kernel.lut_gelu(self, x)
        return _gelu_forward(self, x)


@dataclass
class ExactGelu:
    """Exact GELU with the same call signature as :class:`LutGelu`."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return functions.gelu(x)


# --------------------------------------------------------------------------- #
# Softmax
# --------------------------------------------------------------------------- #
def _softmax_forward(
    op: "LutSoftmax",
    x: np.ndarray,
    axis: int,
    exp_eval: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Reference Softmax composite body (``x`` already a float array).

    ``exp_eval`` lets a compute kernel substitute its own element-wise
    evaluation of the ``exp`` table on the shifted logits (in place); the
    exact reductions and the small reciprocal look-up stay in numpy.
    """
    shifted = x - np.max(x, axis=axis, keepdims=True)
    np.clip(shifted, op.exp_clip, 0.0, out=shifted)
    if exp_eval is not None:
        exps = exp_eval(shifted)
        (inv,) = evaluate_many(
            [(op.reciprocal_approx, op._denominator(exps, axis), None)]
        )
    else:
        # exp -> row sum -> reciprocal as one fused chain: the exp look-up
        # lands back in the ``shifted`` buffer and the reciprocal look-up in
        # the row-sum buffer.
        exps, inv = evaluate_many(
            [
                (op.exp_approx, shifted, shifted),
                (op.reciprocal_approx, lambda done: op._denominator(done[0], axis), None),
            ]
        )
    np.maximum(inv, 0.0, out=inv)
    return np.multiply(exps, inv, out=exps)


@dataclass
class LutSoftmax:
    """Softmax whose transcendental steps go through scalar approximators.

    Parameters
    ----------
    exp_approx:
        Approximator of ``exp`` on the max-subtracted logits.  The paper's
        training range is (-256, 0): after subtracting the row max every
        input is non-positive.
    reciprocal_approx:
        Approximator of ``1/x`` applied to the row sum of exponentials, which
        lies in ``[1, row_length]`` — the paper's (1, 1024) range covers
        sequence lengths up to 1024.
    exp_clip:
        Lower clip applied before the exp table (the table saturates below its
        training range anyway; exp of anything below -256 is zero at FP32).
    """

    exp_approx: ScalarApproximator
    reciprocal_approx: ScalarApproximator
    exp_clip: float = -256.0
    axis: int = -1
    kernel: object | None = field(default=None, compare=False)

    def _denominator(self, exps: np.ndarray, axis: int) -> np.ndarray:
        # The exp table can produce tiny negative values near its right edge;
        # a probability mass must stay non-negative.
        np.maximum(exps, 0.0, out=exps)
        denom = np.sum(exps, axis=axis, keepdims=True)
        np.maximum(denom, 1e-12, out=denom)
        return denom

    def __call__(self, x: np.ndarray, axis: int | None = None) -> np.ndarray:
        axis = self.axis if axis is None else axis
        x = _as_float(x)
        if self.kernel is not None:
            return self.kernel.lut_softmax(self, x, axis)
        return _softmax_forward(self, x, axis)


@dataclass
class ExactSoftmax:
    """Exact Softmax with the same call signature as :class:`LutSoftmax`."""

    axis: int = -1

    def __call__(self, x: np.ndarray, axis: int | None = None) -> np.ndarray:
        return functions.softmax(x, axis=self.axis if axis is None else axis)


# --------------------------------------------------------------------------- #
# LayerNorm
# --------------------------------------------------------------------------- #
def _layernorm_forward(
    op: "LutLayerNorm",
    x: np.ndarray,
    gamma: np.ndarray | None,
    beta: np.ndarray | None,
    axis: int,
    normalize: Callable[..., np.ndarray] | None = None,
) -> np.ndarray:
    """Reference LayerNorm composite body (``x`` already a float array).

    ``normalize`` lets a compute kernel substitute the per-element
    centre/scale/affine tail (``(centered * inv_std) * gamma + beta``); the
    exact mean/variance reductions and the rsqrt look-up stay in numpy so
    every kernel sees bit-identical statistics.
    """
    mean = np.mean(x, axis=axis, keepdims=True)
    centered = x - mean
    var = np.mean(np.square(centered), axis=axis, keepdims=True)
    var += op.eps
    inv_std = op._rsqrt(var)
    if normalize is not None:
        return normalize(centered, inv_std, gamma, beta)
    normalised = np.multiply(centered, inv_std, out=centered)
    if gamma is not None:
        normalised *= gamma
    if beta is not None:
        normalised += beta
    return normalised


@dataclass
class LutLayerNorm:
    """LayerNorm whose ``1/sqrt`` goes through a scalar approximator.

    Mean and variance are exact reductions (the MAC array handles them); only
    the inverse square root of the variance is approximated.  ``scaler``
    enables the paper's Sec.-3.3.2 input scaling for variances below one.
    """

    rsqrt_approx: ScalarApproximator
    scaler: InputScaler | None = None
    eps: float = 1e-5
    axis: int = -1
    clip_max: float | None = 1024.0
    kernel: object | None = field(default=None, compare=False)

    def _rsqrt(self, variance: np.ndarray) -> np.ndarray:
        """Inverse square root of a variance buffer the caller owns."""
        variance = _as_float(variance)
        if self.clip_max is not None:
            np.minimum(variance, self.clip_max, out=variance)
        if self.scaler is None:
            (inv,) = evaluate_many([(self.rsqrt_approx, variance, variance)])
            return inv
        return self.scaler.apply(variance, self.rsqrt_approx)

    def __call__(
        self,
        x: np.ndarray,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
        axis: int | None = None,
    ) -> np.ndarray:
        axis = self.axis if axis is None else axis
        x = _as_float(x)
        if self.kernel is not None:
            return self.kernel.lut_layernorm(self, x, gamma, beta, axis)
        return _layernorm_forward(self, x, gamma, beta, axis)


@dataclass
class ExactLayerNorm:
    """Exact LayerNorm with the same call signature as :class:`LutLayerNorm`."""

    eps: float = 1e-5
    axis: int = -1

    def __call__(
        self,
        x: np.ndarray,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
        axis: int | None = None,
    ) -> np.ndarray:
        return functions.layer_norm(
            x, gamma=gamma, beta=beta, axis=self.axis if axis is None else axis, eps=self.eps
        )
