"""Composite Transformer operators built from scalar approximators.

The Transformer's non-linear blocks decompose into scalar primitives plus
exact linear reductions (sums, means), which a MAC array computes natively:

* **GELU** — a single table look-up per element.
* **Softmax** — ``exp`` look-ups on max-subtracted inputs, an exact row sum,
  then a ``1/x`` look-up on the sum and a multiply (the paper trains the
  ``exp`` table on (-256, 0) and the ``divide`` table on (1, 1024)).
* **LayerNorm** — exact mean/variance, a ``1/sqrt`` look-up on the variance
  (with the Sec.-3.3.2 input scaling), then a multiply per element.

Each composite takes *any* scalar approximator with a ``__call__`` interface —
a float LookupTable, an FP16/INT32 quantised table, a Linear-LUT baseline, an
I-BERT integer kernel, or the exact reference — so the same classes drive the
software-accuracy experiments for every method in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import functions
from .scaling import InputScaler

__all__ = [
    "ScalarApproximator",
    "ExactScalar",
    "LutGelu",
    "LutSoftmax",
    "LutLayerNorm",
    "ExactGelu",
    "ExactSoftmax",
    "ExactLayerNorm",
]

#: Anything mapping an ndarray of scalars to an ndarray of the same shape.
ScalarApproximator = Callable[[np.ndarray], np.ndarray]


@dataclass
class ExactScalar:
    """Wrap an exact numpy function so it quacks like a LookupTable."""

    function: ScalarApproximator
    name: str = "exact"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.function(np.asarray(x, dtype=np.float64)))


# --------------------------------------------------------------------------- #
# GELU
# --------------------------------------------------------------------------- #
@dataclass
class LutGelu:
    """Element-wise GELU through a scalar approximator.

    ``clip_range`` bounds the table input to its training range; outside it
    GELU is effectively linear/zero and the outer LUT segments extrapolate,
    but clipping to the trained range is what the fixed-width hardware
    comparator does, so we model it explicitly.
    """

    gelu_approx: ScalarApproximator
    clip_range: tuple[float, float] | None = (-5.0, 5.0)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.clip_range is None:
            return np.asarray(self.gelu_approx(x))
        low, high = self.clip_range
        inside = np.clip(x, low, high)
        approx = np.asarray(self.gelu_approx(inside))
        # Saturated tails: GELU(x) ~ x for large x and ~0 for very negative x.
        result = np.where(x > high, x, approx)
        result = np.where(x < low, 0.0, result)
        return result


@dataclass
class ExactGelu:
    """Exact GELU with the same call signature as :class:`LutGelu`."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return functions.gelu(x)


# --------------------------------------------------------------------------- #
# Softmax
# --------------------------------------------------------------------------- #
@dataclass
class LutSoftmax:
    """Softmax whose transcendental steps go through scalar approximators.

    Parameters
    ----------
    exp_approx:
        Approximator of ``exp`` on the max-subtracted logits.  The paper's
        training range is (-256, 0): after subtracting the row max every
        input is non-positive.
    reciprocal_approx:
        Approximator of ``1/x`` applied to the row sum of exponentials, which
        lies in ``[1, row_length]`` — the paper's (1, 1024) range covers
        sequence lengths up to 1024.
    exp_clip:
        Lower clip applied before the exp table (the table saturates below its
        training range anyway; exp of anything below -256 is zero at FP32).
    """

    exp_approx: ScalarApproximator
    reciprocal_approx: ScalarApproximator
    exp_clip: float = -256.0
    axis: int = -1

    def __call__(self, x: np.ndarray, axis: int | None = None) -> np.ndarray:
        axis = self.axis if axis is None else axis
        x = np.asarray(x, dtype=np.float64)
        shifted = x - np.max(x, axis=axis, keepdims=True)
        shifted = np.clip(shifted, self.exp_clip, 0.0)
        exps = np.asarray(self.exp_approx(shifted), dtype=np.float64)
        # The exp table can produce tiny negative values near its right edge;
        # a probability mass must stay non-negative.
        exps = np.maximum(exps, 0.0)
        denom = np.sum(exps, axis=axis, keepdims=True)
        denom = np.maximum(denom, 1e-12)
        inv = np.asarray(self.reciprocal_approx(denom), dtype=np.float64)
        inv = np.maximum(inv, 0.0)
        return exps * inv


@dataclass
class ExactSoftmax:
    """Exact Softmax with the same call signature as :class:`LutSoftmax`."""

    axis: int = -1

    def __call__(self, x: np.ndarray, axis: int | None = None) -> np.ndarray:
        return functions.softmax(x, axis=self.axis if axis is None else axis)


# --------------------------------------------------------------------------- #
# LayerNorm
# --------------------------------------------------------------------------- #
@dataclass
class LutLayerNorm:
    """LayerNorm whose ``1/sqrt`` goes through a scalar approximator.

    Mean and variance are exact reductions (the MAC array handles them); only
    the inverse square root of the variance is approximated.  ``scaler``
    enables the paper's Sec.-3.3.2 input scaling for variances below one.
    """

    rsqrt_approx: ScalarApproximator
    scaler: InputScaler | None = None
    eps: float = 1e-5
    axis: int = -1
    clip_max: float | None = 1024.0

    def _rsqrt(self, variance: np.ndarray) -> np.ndarray:
        variance = np.asarray(variance, dtype=np.float64)
        if self.clip_max is not None:
            variance = np.minimum(variance, self.clip_max)
        if self.scaler is None:
            return np.asarray(self.rsqrt_approx(variance), dtype=np.float64)
        return self.scaler.apply(variance, self.rsqrt_approx)

    def __call__(
        self,
        x: np.ndarray,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
        axis: int | None = None,
    ) -> np.ndarray:
        axis = self.axis if axis is None else axis
        x = np.asarray(x, dtype=np.float64)
        mean = np.mean(x, axis=axis, keepdims=True)
        var = np.mean((x - mean) ** 2, axis=axis, keepdims=True)
        inv_std = self._rsqrt(var + self.eps)
        normalised = (x - mean) * inv_std
        if gamma is not None:
            normalised = normalised * gamma
        if beta is not None:
            normalised = normalised + beta
        return normalised


@dataclass
class ExactLayerNorm:
    """Exact LayerNorm with the same call signature as :class:`LutLayerNorm`."""

    eps: float = 1e-5
    axis: int = -1

    def __call__(
        self,
        x: np.ndarray,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
        axis: int | None = None,
    ) -> np.ndarray:
        return functions.layer_norm(
            x, gamma=gamma, beta=beta, axis=self.axis if axis is None else axis, eps=self.eps
        )
