"""Training of NN-LUT approximation networks (paper Sec. 3.3.1 and 4.1).

The paper's recipe, reproduced here without an autodiff framework:

* training data: uniform samples of the target function over the Table-1
  input range (100K samples suffice; fitting is a one-time offline cost),
* loss: L1 (slightly better than L2 because outliers are penalised modestly),
* optimiser: Adam with learning rate 1e-3 and a multi-step schedule,
* initialisation: Table-1 sign constraints (``repro.core.initialization``).

The main entry points are :func:`fit_network` (returns the trained ReLU net)
and :func:`fit_lut` in ``repro.core.registry`` which also performs the NN→LUT
conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .functions import get_target_function, get_training_range
from .initialization import initialize_network
from .network import OneHiddenReluNet

__all__ = [
    "TrainingConfig",
    "TrainingResult",
    "AdamOptimizer",
    "sample_training_data",
    "l1_loss",
    "l2_loss",
    "fit_network",
]


@dataclass
class TrainingConfig:
    """Hyper-parameters for NN-LUT curve fitting.

    Defaults follow Sec. 4.1: lr=1e-3 with a multi-step schedule, Adam, L1
    loss, 100K samples.  ``epochs``/``batch_size`` are chosen so fitting a
    16-entry LUT takes a couple of seconds on CPU while matching the paper's
    accuracy; they can be reduced for fast tests.
    """

    hidden_size: int = 15
    num_samples: int = 100_000
    batch_size: int = 4096
    epochs: int = 60
    learning_rate: float = 1e-3
    lr_milestones: Sequence[float] = (0.5, 0.75, 0.9)
    lr_gamma: float = 0.3
    loss: str = "l1"
    sampling: str = "uniform"
    seed: int = 0
    output_bias: bool = True
    num_restarts: int = 1
    normalize_inputs: bool = True
    least_squares_init: bool = True
    least_squares_refit: bool = True
    anchor_strategy: str = "curvature"
    target_weighting: str = "none"

    _SAMPLING_MODES = ("uniform", "log", "neg_log")
    _ANCHOR_STRATEGIES = ("curvature", "quantile", "uniform")
    _WEIGHTINGS = ("none", "relative")

    def __post_init__(self) -> None:
        if self.hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        if self.num_samples < 2:
            raise ValueError("num_samples must be >= 2")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.loss not in ("l1", "l2"):
            raise ValueError(f"loss must be 'l1' or 'l2', got {self.loss!r}")
        if self.sampling not in self._SAMPLING_MODES:
            raise ValueError(
                f"sampling must be one of {self._SAMPLING_MODES}, got {self.sampling!r}"
            )
        if self.anchor_strategy not in self._ANCHOR_STRATEGIES:
            raise ValueError(
                f"anchor_strategy must be one of {self._ANCHOR_STRATEGIES}, "
                f"got {self.anchor_strategy!r}"
            )
        if self.target_weighting not in self._WEIGHTINGS:
            raise ValueError(
                f"target_weighting must be one of {self._WEIGHTINGS}, "
                f"got {self.target_weighting!r}"
            )
        if self.num_restarts < 1:
            raise ValueError("num_restarts must be >= 1")


@dataclass
class TrainingResult:
    """Outcome of :func:`fit_network`."""

    network: OneHiddenReluNet
    final_loss: float
    loss_history: List[float] = field(default_factory=list)
    input_range: Tuple[float, float] = (0.0, 1.0)
    function_name: str = ""


class AdamOptimizer:
    """Minimal Adam optimiser over a dict of numpy parameter arrays."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step = 0
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def step(
        self,
        params: Dict[str, np.ndarray],
        grads: Dict[str, np.ndarray],
        lr_scale: float = 1.0,
    ) -> Dict[str, np.ndarray]:
        """Return updated parameters (in a fresh dict), Adam update rule."""
        self._step += 1
        lr = self.learning_rate * lr_scale
        updated: Dict[str, np.ndarray] = {}
        for name, value in params.items():
            grad = np.asarray(grads[name], dtype=np.float64)
            if name not in self._m:
                self._m[name] = np.zeros_like(value, dtype=np.float64)
                self._v[name] = np.zeros_like(value, dtype=np.float64)
            self._m[name] = self.beta1 * self._m[name] + (1 - self.beta1) * grad
            self._v[name] = self.beta2 * self._v[name] + (1 - self.beta2) * grad**2
            m_hat = self._m[name] / (1 - self.beta1**self._step)
            v_hat = self._v[name] / (1 - self.beta2**self._step)
            updated[name] = value - lr * m_hat / (np.sqrt(v_hat) + self.eps)
        return updated


def sample_training_data(
    function: Callable[[np.ndarray], np.ndarray],
    input_range: Tuple[float, float],
    num_samples: int,
    rng: np.random.Generator,
    sampling: str = "uniform",
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``(x, f(x))`` pairs over ``input_range``.

    ``sampling`` selects the input distribution:

    * ``"uniform"`` — uniform over the range (the paper's default).
    * ``"log"`` — log-uniform over a strictly positive range; useful for very
      wide ranges such as 1/SQRT's (0.1, 1024) where the curvature sits at
      small inputs.
    * ``"neg_log"`` — for ranges ending at 0 (e.g. exp's (-256, 0)):
      ``x = -|v|`` with ``|v|`` log-uniform, so samples concentrate near zero
      where the exponential is non-negligible.

    Regardless of the mode, a small uniform share (10%) is mixed in so the
    whole range stays covered.
    """
    low, high = float(input_range[0]), float(input_range[1])
    if not high > low:
        raise ValueError(f"input_range must satisfy high > low, got {input_range}")
    if sampling == "log":
        if low <= 0:
            raise ValueError("'log' sampling requires a strictly positive range")
        focused = np.exp(rng.uniform(np.log(low), np.log(high), size=num_samples))
    elif sampling == "neg_log":
        if high > 0:
            raise ValueError("'neg_log' sampling requires a non-positive range")
        magnitude_low = max(abs(high), 1e-3)
        focused = -np.exp(rng.uniform(np.log(magnitude_low), np.log(abs(low)), size=num_samples))
    else:
        focused = rng.uniform(low, high, size=num_samples)
    if sampling != "uniform":
        num_uniform = max(1, num_samples // 10)
        focused[:num_uniform] = rng.uniform(low, high, size=num_uniform)
    x = np.clip(focused, low, high)
    y = np.asarray(function(x), dtype=np.float64)
    return x, y


def l1_loss(prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean absolute error and its gradient w.r.t. ``prediction``."""
    diff = prediction - target
    loss = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return loss, grad


def l2_loss(prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``prediction``."""
    diff = prediction - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


_LOSSES = {"l1": l1_loss, "l2": l2_loss}


def _lr_scale(progress: float, milestones: Sequence[float], gamma: float) -> float:
    """Multi-step learning-rate decay: multiply by ``gamma`` per passed milestone."""
    scale = 1.0
    for milestone in milestones:
        if progress >= milestone:
            scale *= gamma
    return scale


def curvature_anchors(
    function: Callable[[np.ndarray], np.ndarray],
    input_range: Tuple[float, float],
    num_anchors: int,
    sample_weights: Tuple[np.ndarray, np.ndarray] | None = None,
    grid_points: int = 100_000,
    relative: bool = False,
) -> np.ndarray:
    """Curvature-driven initial breakpoint placement.

    For piecewise-linear approximation the pointwise error on a segment scales
    with ``|f''| * width^2``, so the error-balancing knot density is
    proportional to ``|f''|^(1/3)`` (optionally reweighted by where the inputs
    actually fall).  The returned anchors are the quantiles of that density —
    a strong starting point that the network training then refines.

    Parameters
    ----------
    function:
        Target scalar function.
    input_range:
        ``(low, high)`` range to place anchors in.
    num_anchors:
        Number of interior breakpoints to return.
    sample_weights:
        Optional ``(x_samples, weights)`` describing the empirical input
        distribution; the density is multiplied by a histogram estimate of it.
    grid_points:
        Resolution of the numerical second-derivative grid.
    relative:
        Balance *relative* instead of absolute error, i.e. use the density
        ``|f''/f|^(1/3)`` — the right choice when the fit itself is
        relative-error weighted.
    """
    low, high = float(input_range[0]), float(input_range[1])
    if not high > low:
        raise ValueError(f"input_range must satisfy high > low, got {input_range}")
    if num_anchors < 1:
        raise ValueError("num_anchors must be >= 1")
    grid = np.linspace(low, high, grid_points)
    values = np.asarray(function(grid), dtype=np.float64)
    step = grid[1] - grid[0]
    second = np.gradient(np.gradient(values, step), step)
    curvature = np.abs(second)
    if relative:
        curvature = curvature / np.maximum(np.abs(values), 1e-6)
    density = curvature ** (1.0 / 3.0)
    if sample_weights is not None:
        xs, ws = sample_weights
        hist, edges = np.histogram(xs, bins=min(512, grid_points // 64),
                                   range=(low, high), weights=ws, density=True)
        centres = (edges[:-1] + edges[1:]) / 2.0
        density = density * np.maximum(np.interp(grid, centres, hist), 1e-12)
    # A small uniform floor keeps a few anchors in flat regions so the LUT
    # still covers the whole range (and avoids a degenerate all-zero density).
    density = density + np.max(density) * 1e-3
    cumulative = np.cumsum(density)
    cumulative = cumulative / cumulative[-1]
    quantiles = np.linspace(0.0, 1.0, num_anchors + 2)[1:-1]
    anchors = np.interp(quantiles, cumulative, grid)
    # Enforce strictly increasing anchors (guards against flat cumulative runs).
    anchors = np.maximum.accumulate(anchors)
    spacing = (high - low) * 1e-9
    for i in range(1, anchors.size):
        if anchors[i] <= anchors[i - 1]:
            anchors[i] = anchors[i - 1] + spacing
    return anchors


def _least_squares_output_layer(
    network: OneHiddenReluNet,
    x: np.ndarray,
    y: np.ndarray,
    ridge: float = 1e-8,
    weights: np.ndarray | None = None,
) -> None:
    """Solve the output layer ``(m, c)`` in closed form for fixed breakpoints.

    With the hidden layer frozen, the network output is linear in the second
    layer weights and bias, so a (ridge-regularised, optionally weighted)
    least-squares solve gives the optimal L2 fit instantly.  Used to
    initialise the output layer before Adam refines the breakpoints, and
    optionally to refit it afterwards.
    """
    hidden = network.hidden_activations(x)
    if network.trainable_output_bias:
        design = np.concatenate([hidden, np.ones((hidden.shape[0], 1))], axis=1)
    else:
        design = hidden
    target = y
    if weights is not None:
        root = np.sqrt(np.asarray(weights, dtype=np.float64))[:, None]
        design = design * root
        target = y * root.ravel()
    gram = design.T @ design + ridge * np.eye(design.shape[1])
    solution = np.linalg.solve(gram, design.T @ target)
    if network.trainable_output_bias:
        network.params.second_weight = solution[:-1]
        network.params.output_bias = float(solution[-1])
    else:
        network.params.second_weight = solution


def _denormalize_network(
    network: OneHiddenReluNet, center: float, half_width: float, target_scale: float
) -> None:
    """Fold the input/target normalisation back into the network parameters.

    The fit is carried out on ``x_n = (x - center) / half_width`` against
    ``y_n = y / target_scale``; this rewrites the parameters so the network
    operates directly on the original units (the property the NN->LUT
    conversion and the LUT hardware rely on).
    """
    n = network.params.first_weight
    b = network.params.first_bias
    network.params.first_weight = n / half_width
    network.params.first_bias = b - n * center / half_width
    network.params.second_weight = network.params.second_weight * target_scale
    network.params.output_bias = network.params.output_bias * target_scale


def _run_single_fit(
    function: Callable[[np.ndarray], np.ndarray],
    function_name: str,
    input_range: Tuple[float, float],
    config: TrainingConfig,
    seed: int,
) -> TrainingResult:
    rng = np.random.default_rng(seed)
    x, y = sample_training_data(
        function,
        input_range,
        config.num_samples,
        rng,
        sampling=config.sampling,
    )
    low, high = float(input_range[0]), float(input_range[1])

    # Condition the regression: map inputs to roughly [-1, 1] and targets to
    # roughly [-1, 1] so a single Adam learning rate works for every primitive
    # (exp spans 0..1, 1/sqrt spans 0.03..3.2, reciprocal 1e-3..1, GELU -0.2..5).
    if config.normalize_inputs:
        center = (high + low) / 2.0
        half_width = (high - low) / 2.0
    else:
        center, half_width = 0.0, 1.0
    target_scale = float(np.max(np.abs(y)))
    target_scale = target_scale if target_scale > 0 else 1.0

    x_norm = (x - center) / half_width
    y_norm = y / target_scale
    norm_range = ((low - center) / half_width, (high - center) / half_width)

    # Per-sample loss weights.  "relative" weighting turns the L1/L2 loss into
    # (approximately) a relative-error loss, which is the right objective for
    # primitives whose downstream use is multiplicative (1/x normalising a
    # Softmax row, 1/sqrt scaling a LayerNorm row) and whose outputs span
    # orders of magnitude across the training range.
    if config.target_weighting == "relative":
        weights = 1.0 / (np.abs(y_norm) + 1e-2)
        weights = weights / np.mean(weights)
    else:
        weights = np.ones_like(y_norm)

    # Initial breakpoints: either curvature-balanced over the (normalised)
    # range, at the quantiles of the training-input distribution, or uniform.
    # Curvature placement puts table entries where the approximation pressure
    # actually is (dense near 0 for exp, dense near 1 for 1/x); the Adam fit
    # then refines them.
    if config.anchor_strategy == "curvature":
        normalised_function = lambda z: np.asarray(  # noqa: E731 - local adapter
            function(z * half_width + center), dtype=np.float64
        ) / target_scale
        anchors = curvature_anchors(
            normalised_function,
            norm_range,
            config.hidden_size,
            relative=(config.target_weighting == "relative"),
        )
    elif config.anchor_strategy == "quantile":
        quantiles = np.linspace(0.0, 1.0, config.hidden_size + 2)[1:-1]
        anchors = np.quantile(x_norm, quantiles)
    else:
        anchors = None

    network = initialize_network(
        function_name,
        hidden_size=config.hidden_size,
        input_range=norm_range,
        rng=rng,
        output_bias=config.output_bias,
        anchors=anchors,
    )
    if config.least_squares_init:
        subsample = min(x_norm.size, 20_000)
        _least_squares_output_layer(
            network, x_norm[:subsample], y_norm[:subsample], weights=weights[:subsample]
        )

    loss_fn = _LOSSES[config.loss]
    optimizer = AdamOptimizer(learning_rate=config.learning_rate)
    num_batches = max(1, x_norm.size // config.batch_size)
    history: List[float] = []

    for epoch in range(config.epochs):
        order = rng.permutation(x_norm.size)
        epoch_loss = 0.0
        progress = epoch / max(1, config.epochs - 1)
        scale = _lr_scale(progress, config.lr_milestones, config.lr_gamma)
        for batch_index in range(num_batches):
            idx = order[batch_index * config.batch_size : (batch_index + 1) * config.batch_size]
            if idx.size == 0:
                continue
            xb, yb, wb = x_norm[idx], y_norm[idx], weights[idx]
            pred = network.forward(xb)
            loss, grad_pred = loss_fn(pred, yb)
            grad_pred = grad_pred * wb
            grads = network.gradients(xb, grad_pred)
            params = network.params.as_dict()
            updated = optimizer.step(params, grads, lr_scale=scale)
            network.params.first_weight = updated["first_weight"]
            network.params.first_bias = updated["first_bias"]
            network.params.second_weight = updated["second_weight"]
            if network.trainable_output_bias:
                network.params.output_bias = float(updated["output_bias"][0])
            epoch_loss += loss
        history.append(epoch_loss / num_batches)

    def _weighted_l1(candidate_net: OneHiddenReluNet) -> float:
        return float(np.mean(weights * np.abs(candidate_net.forward(x_norm) - y_norm)))

    if config.least_squares_refit:
        # The Adam pass mostly serves to place the breakpoints; with those
        # frozen, re-solving the (convex) output layer removes any residual
        # optimisation error.  Keep the refit only when it helps the
        # (weighted) L1 loss.
        candidate = network.copy()
        subsample = min(x_norm.size, 50_000)
        _least_squares_output_layer(
            candidate, x_norm[:subsample], y_norm[:subsample], weights=weights[:subsample]
        )
        if _weighted_l1(candidate) < _weighted_l1(network):
            network = candidate

    _denormalize_network(network, center, half_width, target_scale)

    # Report the final loss in the *unnormalised* target units so callers can
    # compare against the paper's L1-error plots directly.
    final_pred = network.forward(x)
    final_loss = float(np.mean(np.abs(final_pred - y))) if config.loss == "l1" else float(
        np.mean((final_pred - y) ** 2)
    )
    return TrainingResult(
        network=network,
        final_loss=final_loss,
        loss_history=history,
        input_range=input_range,
        function_name=function_name,
    )


def fit_network(
    function_name: str,
    config: TrainingConfig | None = None,
    function: Callable[[np.ndarray], np.ndarray] | None = None,
    input_range: Tuple[float, float] | None = None,
) -> TrainingResult:
    """Fit a one-hidden-layer ReLU net to a scalar primitive.

    Parameters
    ----------
    function_name:
        Name of the target primitive.  When ``function``/``input_range`` are
        omitted they are looked up from the Table-1 registry in
        ``repro.core.functions``.
    config:
        Training hyper-parameters; defaults follow the paper.
    function, input_range:
        Optional overrides, e.g. for calibration on measured activations or
        for fitting user-defined functions (Hswish, Tanh, …).

    The best of ``config.num_restarts`` random restarts (by final loss) is
    returned; restarts guard against an unlucky initialisation on the hardest
    target (1/SQRT over three orders of magnitude).
    """
    config = config or TrainingConfig()
    if function is None:
        function = get_target_function(function_name)
    if input_range is None:
        input_range = get_training_range(function_name)

    best: TrainingResult | None = None
    for restart in range(config.num_restarts):
        result = _run_single_fit(
            function, function_name, input_range, config, seed=config.seed + restart
        )
        if best is None or result.final_loss < best.final_loss:
            best = result
    assert best is not None  # num_restarts >= 1
    return best
