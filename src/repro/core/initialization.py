"""Parameter-initialisation recipes for NN-LUT training (paper Table 1).

The paper reports that the hidden-layer weight (``n_i``) and bias (``b_i``)
signs must be chosen per target function for the network to find good LUT
parameters:

==============  ==================  =====================
Function        Weight init (n_i)   Bias init (b_i)
==============  ==================  =====================
GELU            random              random
Exp             positive random     positive random
Divide (1/x)    negative random     positive random
1/SQRT          negative random     positive random
==============  ==================  =====================

In addition to the sign constraints we spread the implied breakpoints
``-b_i / n_i`` across the training range, which makes the 16-entry fits
reliable without hand tuning (the paper describes the init only at the level
of the table above; uniform coverage of the input range is the natural way to
realise it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .network import NetworkParameters, OneHiddenReluNet

__all__ = [
    "InitSpec",
    "INIT_SPECS",
    "get_init_spec",
    "initialize_network",
]


@dataclass(frozen=True)
class InitSpec:
    """Sign constraints on the hidden-layer parameters of the approximator.

    ``weight_sign`` / ``bias_sign`` take values ``"random"``, ``"positive"``
    or ``"negative"`` following paper Table 1.
    """

    weight_sign: str = "random"
    bias_sign: str = "random"

    _ALLOWED = ("random", "positive", "negative")

    def __post_init__(self) -> None:
        for field_name, value in (("weight_sign", self.weight_sign), ("bias_sign", self.bias_sign)):
            if value not in self._ALLOWED:
                raise ValueError(
                    f"{field_name} must be one of {self._ALLOWED}, got {value!r}"
                )


#: Table 1 of the paper, keyed by scalar primitive name.
INIT_SPECS: Dict[str, InitSpec] = {
    "gelu": InitSpec(weight_sign="random", bias_sign="random"),
    "erf": InitSpec(weight_sign="random", bias_sign="random"),
    "exp": InitSpec(weight_sign="positive", bias_sign="positive"),
    "reciprocal": InitSpec(weight_sign="negative", bias_sign="positive"),
    "rsqrt": InitSpec(weight_sign="negative", bias_sign="positive"),
}


def get_init_spec(function_name: str) -> InitSpec:
    """Return the Table-1 initialisation spec for ``function_name``.

    Unknown functions fall back to fully random initialisation, which is the
    generic recipe for monotonic-but-unknown targets.
    """
    return INIT_SPECS.get(function_name, InitSpec())


def _signed(values: np.ndarray, sign: str) -> np.ndarray:
    if sign == "positive":
        return np.abs(values)
    if sign == "negative":
        return -np.abs(values)
    return values


def initialize_network(
    function_name: str,
    hidden_size: int,
    input_range: Tuple[float, float],
    rng: np.random.Generator | None = None,
    output_bias: bool = True,
    anchors: np.ndarray | None = None,
) -> OneHiddenReluNet:
    """Create an initialised :class:`OneHiddenReluNet` for a target function.

    Parameters
    ----------
    function_name:
        Scalar primitive name (``"gelu"``, ``"exp"``, ``"reciprocal"``,
        ``"rsqrt"`` …); selects the Table-1 sign constraints.
    hidden_size:
        Number of hidden neurons; an ``N``-entry LUT uses ``N - 1`` neurons.
    input_range:
        ``(low, high)`` training range; breakpoints are spread over it.
    rng:
        Optional numpy random generator for reproducibility.
    output_bias:
        Whether the network keeps a trainable output bias term.
    anchors:
        Optional explicit initial breakpoint locations (length ``hidden_size``),
        e.g. quantiles of the training-input distribution.  When omitted the
        breakpoints are spread uniformly over ``input_range``.  When provided,
        the Table-1 bias-sign constraint is not re-applied: the constraint's
        purpose is to place the initial breakpoints inside the target range,
        which explicit anchors already guarantee (and, unlike the weight sign,
        the bias sign is not invariant under the affine input normalisation
        used during fitting).
    """
    if hidden_size < 1:
        raise ValueError(f"hidden_size must be >= 1, got {hidden_size}")
    low, high = float(input_range[0]), float(input_range[1])
    if not high > low:
        raise ValueError(f"input_range must satisfy high > low, got {input_range}")
    rng = rng if rng is not None else np.random.default_rng()
    spec = get_init_spec(function_name)

    # Spread the implied breakpoints -b/n across the training range with a
    # small jitter, then derive (n, b) pairs that honour the sign constraints.
    explicit_anchors = anchors is not None
    if anchors is None:
        anchors = np.linspace(low, high, hidden_size + 2)[1:-1]
        jitter = (high - low) / (4.0 * (hidden_size + 1))
        anchors = anchors + rng.uniform(-jitter, jitter, size=hidden_size)
    else:
        anchors = np.asarray(anchors, dtype=np.float64).ravel()
        if anchors.size != hidden_size:
            raise ValueError(
                f"anchors must have length hidden_size={hidden_size}, got {anchors.size}"
            )

    weight_magnitude = rng.uniform(0.5, 1.5, size=hidden_size)
    weights = _signed(weight_magnitude, spec.weight_sign)
    if spec.weight_sign == "random":
        signs = rng.choice([-1.0, 1.0], size=hidden_size)
        weights = weight_magnitude * signs

    biases = -weights * anchors
    # Honour the bias sign constraint when it conflicts with the anchor-derived
    # bias: flip the anchor to the admissible side of zero.  Skipped for
    # explicit anchors (see the docstring).
    if not explicit_anchors:
        if spec.bias_sign == "positive":
            biases = np.abs(biases)
        elif spec.bias_sign == "negative":
            biases = -np.abs(biases)

    second = rng.normal(0.0, 0.5, size=hidden_size)
    params = NetworkParameters(
        first_weight=weights,
        first_bias=biases,
        second_weight=second,
        output_bias=0.0,
    )
    return OneHiddenReluNet(params=params, trainable_output_bias=output_bias)
