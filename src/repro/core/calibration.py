"""Dataset-free calibration of NN-LUT parameters (paper Sec. 3.3.3).

When the offline-trained LUT ("direct approximation") loses accuracy on a
specific downstream model — because the activation distribution seen by an
operator site differs from the generic Table-1 training range — the paper
re-fits each NN-LUT against its full-precision reference function using a
small set of *unlabelled* activations collected from the model, with all
Transformer parameters frozen.  The re-fitted network is then re-converted to
a LUT (Eq. 7) for inference.

This module implements exactly that loop:

* :func:`collect_activation_samples` — run a model forward over unlabelled
  inputs while recording what actually flows into each non-linear operator
  site (the Transformer substrate exposes recording hooks).
* :func:`calibrate_network` — continue Adam training of an existing network on
  the recorded samples against the exact reference function.
* :func:`calibrate_lut` — end-to-end helper returning the refreshed LUT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence

import numpy as np

from .conversion import network_to_lut
from .lut import LookupTable
from .network import OneHiddenReluNet
from .training import (
    AdamOptimizer,
    TrainingConfig,
    _denormalize_network,
    _least_squares_output_layer,
    l1_loss,
    l2_loss,
)

__all__ = [
    "CalibrationConfig",
    "collect_activation_samples",
    "calibrate_network",
    "calibrate_lut",
]


@dataclass
class CalibrationConfig:
    """Hyper-parameters for the calibration pass.

    The paper reports five epochs over one-tenth of the (unlabelled) training
    set, costing less than 5% of a fine-tuning run; the defaults mirror that
    light-weight setting.
    """

    epochs: int = 5
    batch_size: int = 4096
    learning_rate: float = 5e-4
    loss: str = "l1"
    max_samples: int = 200_000
    seed: int = 0
    clip_range: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.loss not in ("l1", "l2"):
            raise ValueError(f"loss must be 'l1' or 'l2', got {self.loss!r}")
        if self.max_samples < 1:
            raise ValueError("max_samples must be >= 1")


def collect_activation_samples(
    run_model: Callable[[], Iterable[np.ndarray]],
    max_samples: int = 200_000,
    seed: int = 0,
) -> np.ndarray:
    """Gather a flat sample of operator-site inputs.

    Parameters
    ----------
    run_model:
        A zero-argument callable that performs forward passes and yields the
        arrays that reached the operator site of interest (the Transformer
        substrate's recording hooks produce exactly this).
    max_samples:
        Reservoir size; inputs beyond it are subsampled uniformly so the
        calibration cost stays bounded regardless of model size.
    """
    rng = np.random.default_rng(seed)
    chunks: List[np.ndarray] = []
    total = 0
    for array in run_model():
        flat = np.asarray(array, dtype=np.float64).ravel()
        chunks.append(flat)
        total += flat.size
    if total == 0:
        raise ValueError("run_model produced no activation samples")
    samples = np.concatenate(chunks)
    if samples.size > max_samples:
        idx = rng.choice(samples.size, size=max_samples, replace=False)
        samples = samples[idx]
    return samples


def calibrate_network(
    network: OneHiddenReluNet,
    reference: Callable[[np.ndarray], np.ndarray],
    samples: np.ndarray,
    config: CalibrationConfig | None = None,
) -> OneHiddenReluNet:
    """Continue training ``network`` on measured ``samples`` against ``reference``.

    Returns a calibrated copy; the input network is left untouched so the
    uncalibrated ("direct approximation") variant stays available for
    comparison, as in Table 2(b) of the paper.
    """
    config = config or CalibrationConfig()
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    rng = np.random.default_rng(config.seed)
    if samples.size > config.max_samples:
        idx = rng.choice(samples.size, size=config.max_samples, replace=False)
        samples = samples[idx]
    if config.clip_range is not None:
        samples = np.clip(samples, config.clip_range[0], config.clip_range[1])

    targets = np.asarray(reference(samples), dtype=np.float64)
    target_scale = float(np.max(np.abs(targets)))
    target_scale = target_scale if target_scale > 0 else 1.0

    # Re-normalise the problem exactly as the original fit did: the network's
    # parameters in raw input units span orders of magnitude, and a uniform
    # Adam step in that space destroys the fit instead of refining it.
    low, high = float(np.min(samples)), float(np.max(samples))
    half_width = max((high - low) / 2.0, 1e-9)
    center = (high + low) / 2.0
    x_norm = (samples - center) / half_width
    y_norm = targets / target_scale

    calibrated = network.copy()
    calibrated.params.first_weight = network.params.first_weight * half_width
    calibrated.params.first_bias = (
        network.params.first_bias + network.params.first_weight * center
    )
    calibrated.params.second_weight = network.params.second_weight / target_scale
    calibrated.params.output_bias = network.params.output_bias / target_scale

    loss_fn = l1_loss if config.loss == "l1" else l2_loss
    optimizer = AdamOptimizer(learning_rate=config.learning_rate)
    num_batches = max(1, x_norm.size // config.batch_size)

    def _normalised_l1(candidate: OneHiddenReluNet) -> float:
        return float(np.mean(np.abs(candidate.forward(x_norm) - y_norm)))

    initial_loss = _normalised_l1(calibrated)
    for _epoch in range(config.epochs):
        order = rng.permutation(x_norm.size)
        for batch_index in range(num_batches):
            idx = order[batch_index * config.batch_size : (batch_index + 1) * config.batch_size]
            if idx.size == 0:
                continue
            xb, yb = x_norm[idx], y_norm[idx]
            pred = calibrated.forward(xb)
            _loss, grad_pred = loss_fn(pred, yb)
            grads = calibrated.gradients(xb, grad_pred)
            params = calibrated.params.as_dict()
            updated = optimizer.step(params, grads)
            calibrated.params.first_weight = updated["first_weight"]
            calibrated.params.first_bias = updated["first_bias"]
            calibrated.params.second_weight = updated["second_weight"]
            if calibrated.trainable_output_bias:
                calibrated.params.output_bias = float(updated["output_bias"][0])

    # Closed-form refit of the output layer on the measured distribution, and
    # a guard that calibration never ends up worse than where it started.
    refit = calibrated.copy()
    _least_squares_output_layer(refit, x_norm, y_norm)
    if _normalised_l1(refit) < _normalised_l1(calibrated):
        calibrated = refit
    if _normalised_l1(calibrated) > initial_loss:
        calibrated = network.copy()
        calibrated.params.first_weight = network.params.first_weight * half_width
        calibrated.params.first_bias = (
            network.params.first_bias + network.params.first_weight * center
        )
        calibrated.params.second_weight = network.params.second_weight / target_scale
        calibrated.params.output_bias = network.params.output_bias / target_scale

    _denormalize_network(calibrated, center, half_width, target_scale)
    return calibrated


def calibrate_lut(
    network: OneHiddenReluNet,
    reference: Callable[[np.ndarray], np.ndarray],
    samples: np.ndarray,
    config: CalibrationConfig | None = None,
    name: str = "",
) -> LookupTable:
    """Calibrate ``network`` on ``samples`` and convert the result to a LUT."""
    calibrated = calibrate_network(network, reference, samples, config)
    lut = network_to_lut(calibrated, name=name)
    return lut.with_metadata(calibrated=True, num_calibration_samples=int(np.asarray(samples).size))
