"""First-order look-up-table approximation (paper Sec. 3.1, Eq. 4).

A :class:`LookupTable` holds ``N`` entries ``(s_i, t_i)`` and ``N - 1`` sorted
breakpoints ``d_i``.  Evaluation is a piecewise-linear function:

    LUT(x) = s_1 x + t_1              if x <  d_1
           = s_i x + t_i              if d_{i-1} <= x < d_i
           = s_N x + t_N              if x >= d_{N-1}

which in hardware costs one comparator-driven table read, one multiply and
one add per element (two pipeline cycles in the paper's unit, Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["LookupTable"]


@dataclass
class LookupTable:
    """Piecewise first-order approximation table.

    Attributes
    ----------
    breakpoints:
        Sorted segment boundaries ``d_i`` (length ``N - 1``).
    slopes:
        Per-segment slopes ``s_i`` (length ``N``).
    intercepts:
        Per-segment intercepts ``t_i`` (length ``N``).
    name:
        Optional human-readable tag (e.g. ``"gelu"``); carried through
        precision conversion and serialisation for bookkeeping.
    metadata:
        Free-form provenance (training range, precision, calibration flags).
    """

    breakpoints: np.ndarray
    slopes: np.ndarray
    intercepts: np.ndarray
    name: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.breakpoints = np.asarray(self.breakpoints, dtype=np.float64).ravel()
        self.slopes = np.asarray(self.slopes, dtype=np.float64).ravel()
        self.intercepts = np.asarray(self.intercepts, dtype=np.float64).ravel()
        if self.slopes.size != self.intercepts.size:
            raise ValueError(
                f"slopes ({self.slopes.size}) and intercepts ({self.intercepts.size}) "
                "must have the same length"
            )
        if self.slopes.size < 1:
            raise ValueError("a LookupTable needs at least one segment")
        if self.breakpoints.size != self.slopes.size - 1:
            raise ValueError(
                f"expected {self.slopes.size - 1} breakpoints for {self.slopes.size} "
                f"segments, got {self.breakpoints.size}"
            )
        if self.breakpoints.size > 1 and np.any(np.diff(self.breakpoints) < 0):
            raise ValueError("breakpoints must be sorted in ascending order")

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        """Number of table entries ``N`` (segments)."""
        return int(self.slopes.size)

    def segment_index(self, x: np.ndarray) -> np.ndarray:
        """Return the table index selected for each element of ``x``."""
        x = np.asarray(x, dtype=np.float64)
        return np.searchsorted(self.breakpoints, x, side="right")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate Eq. (4); output has the shape and dtype float64 of ``x``."""
        x = np.asarray(x, dtype=np.float64)
        idx = self.segment_index(x)
        return self.slopes[idx] * x + self.intercepts[idx]

    # ------------------------------------------------------------------ #
    # Introspection / serialisation
    # ------------------------------------------------------------------ #
    def segment_edges(self) -> np.ndarray:
        """Segment boundaries including ``-inf`` / ``+inf`` sentinels."""
        return np.concatenate(([-np.inf], self.breakpoints, [np.inf]))

    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain Python containers (JSON-friendly)."""
        return {
            "name": self.name,
            "breakpoints": self.breakpoints.tolist(),
            "slopes": self.slopes.tolist(),
            "intercepts": self.intercepts.tolist(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LookupTable":
        """Inverse of :meth:`to_dict`."""
        return cls(
            breakpoints=np.asarray(data["breakpoints"], dtype=np.float64),
            slopes=np.asarray(data["slopes"], dtype=np.float64),
            intercepts=np.asarray(data["intercepts"], dtype=np.float64),
            name=str(data.get("name", "")),
            metadata=dict(data.get("metadata", {})),
        )

    def copy(self) -> "LookupTable":
        return LookupTable(
            breakpoints=self.breakpoints.copy(),
            slopes=self.slopes.copy(),
            intercepts=self.intercepts.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def with_metadata(self, **updates: object) -> "LookupTable":
        """Return a copy with ``metadata`` updated by ``updates``."""
        out = self.copy()
        out.metadata.update(updates)
        return out

    def max_error(self, function, input_range, num_points: int = 10_000) -> float:
        """Max absolute error against ``function`` on a dense grid."""
        grid = np.linspace(float(input_range[0]), float(input_range[1]), num_points)
        return float(np.max(np.abs(self(grid) - np.asarray(function(grid)))))

    def mean_l1_error(self, function, input_range, num_points: int = 10_000) -> float:
        """Mean absolute error against ``function`` on a dense grid."""
        grid = np.linspace(float(input_range[0]), float(input_range[1]), num_points)
        return float(np.mean(np.abs(self(grid) - np.asarray(function(grid)))))
