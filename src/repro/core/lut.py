"""First-order look-up-table approximation (paper Sec. 3.1, Eq. 4).

A :class:`LookupTable` holds ``N`` entries ``(s_i, t_i)`` and ``N - 1`` sorted
breakpoints ``d_i``.  Evaluation is a piecewise-linear function:

    LUT(x) = s_1 x + t_1              if x <  d_1
           = s_i x + t_i              if d_{i-1} <= x < d_i
           = s_N x + t_N              if x >= d_{N-1}

which in hardware costs one comparator-driven table read, one multiply and
one add per element (two pipeline cycles in the paper's unit, Table 4).

Two evaluation entry points are exposed:

* ``__call__`` — the reference semantics: the input is converted to float64
  once and a float64 result is returned (what the accuracy experiments use).
* ``evaluate(x, out=None)`` — the fused inference kernel: a single dtype
  check, one ``searchsorted``, and the multiply-add written into a
  preallocated output buffer.  float32 inputs stay float32 end to end (the
  table parameters are cast per dtype once and cached), which is what the
  vectorized inference engine runs on.

:class:`UniformLookupTable` specialises the segment search for equally-spaced
breakpoints (the Linear-mode baseline): the index is computed in O(1) as
``floor((x - lo) / step) + 1`` instead of a binary search, with an exact
fix-up so it matches ``searchsorted(..., side="right")`` bit for bit.
"""

from __future__ import annotations

# staticcheck: hot-path -- float64 minted silently here breaks the compute_dtype contract

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "LookupTable",
    "UniformLookupTable",
    "evaluate_many",
    "lut_evaluation_stats",
    "reset_lut_evaluation_stats",
]

#: dtypes the fused kernel evaluates natively (anything else is promoted to
#: float64, matching the reference semantics).
_NATIVE_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))

#: Counters for the fused kernels' input handling.  Strided/transposed inputs
#: are legal but force one explicit contiguous copy before the gather loop
#: (the per-element table reads would otherwise walk memory column-wise);
#: the counters make that copy observable instead of silent, so a hot path
#: feeding views can be caught in profiling/tests.
_eval_stats: Dict[str, int] = {
    "evaluations": 0,
    "noncontiguous_inputs": 0,
    "contiguous_copies": 0,
}


def lut_evaluation_stats() -> Dict[str, int]:
    """Snapshot of the fused-kernel input counters (see ``_eval_stats``)."""
    return dict(_eval_stats)


def reset_lut_evaluation_stats() -> None:
    """Zero the fused-kernel input counters (test/profiling hook)."""
    for key in _eval_stats:
        _eval_stats[key] = 0


def _counted_contiguous(x: np.ndarray) -> np.ndarray:
    """``x`` C-contiguous — an explicit, counted copy when it is not.

    The single choke point every kernel entry path (numpy gather loop and
    compiled C kernels alike) routes non-contiguous inputs through.
    """
    if x.flags.c_contiguous:
        return x
    _eval_stats["noncontiguous_inputs"] += 1
    _eval_stats["contiguous_copies"] += 1
    return np.ascontiguousarray(x)


def _validate_out(x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    """Shared ``out=`` contract of the fused kernels: match ``x`` or be None."""
    if out is None:
        return np.empty_like(x)
    if out.shape != x.shape or out.dtype != x.dtype:
        raise ValueError(
            f"out must match the input's shape and dtype "
            f"({x.shape}, {x.dtype}); got ({out.shape}, {out.dtype})"
        )
    return out


@dataclass
class LookupTable:
    """Piecewise first-order approximation table.

    Attributes
    ----------
    breakpoints:
        Sorted segment boundaries ``d_i`` (length ``N - 1``).
    slopes:
        Per-segment slopes ``s_i`` (length ``N``).
    intercepts:
        Per-segment intercepts ``t_i`` (length ``N``).
    name:
        Optional human-readable tag (e.g. ``"gelu"``); carried through
        precision conversion and serialisation for bookkeeping.
    metadata:
        Free-form provenance (training range, precision, calibration flags).
    """

    breakpoints: np.ndarray
    slopes: np.ndarray
    intercepts: np.ndarray
    name: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.breakpoints = np.asarray(self.breakpoints, dtype=np.float64).ravel()
        self.slopes = np.asarray(self.slopes, dtype=np.float64).ravel()
        self.intercepts = np.asarray(self.intercepts, dtype=np.float64).ravel()
        if self.slopes.size != self.intercepts.size:
            raise ValueError(
                f"slopes ({self.slopes.size}) and intercepts ({self.intercepts.size}) "
                "must have the same length"
            )
        if self.slopes.size < 1:
            raise ValueError("a LookupTable needs at least one segment")
        if self.breakpoints.size != self.slopes.size - 1:
            raise ValueError(
                f"expected {self.slopes.size - 1} breakpoints for {self.slopes.size} "
                f"segments, got {self.breakpoints.size}"
            )
        if self.breakpoints.size > 1 and np.any(np.diff(self.breakpoints) < 0):
            raise ValueError("breakpoints must be sorted in ascending order")
        # Per-dtype parameter casts for the fused kernel, built lazily.  Keyed
        # by dtype; each entry remembers the source arrays it was cast from so
        # rebinding ``slopes``/``intercepts`` (as calibration flows do)
        # invalidates it automatically.  In-place mutation of the parameter
        # arrays is NOT detected — call :meth:`invalidate` afterwards.
        self._param_cache: Dict[np.dtype, Tuple] = {}
        # Lazily-built bucket table for the O(1) segment search (see _index);
        # False means "not buildable for this table, use searchsorted".
        self._buckets: Tuple | bool | None = None

    def invalidate(self) -> None:
        """Drop the derived evaluation caches (per-dtype params, buckets).

        Needed only after mutating ``breakpoints``/``slopes``/``intercepts``
        *in place*; rebinding the attributes invalidates automatically.
        """
        self._param_cache = {}
        self._buckets = None

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        """Number of table entries ``N`` (segments)."""
        return int(self.slopes.size)

    def _params(self, dtype: np.dtype) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Table parameters cast to ``dtype``, cached across calls."""
        if dtype == np.float64:
            return self.breakpoints, self.slopes, self.intercepts
        entry = self._param_cache.get(dtype)
        if entry is not None:
            src_b, src_s, src_t, bp, sl, ic = entry
            if src_b is self.breakpoints and src_s is self.slopes and src_t is self.intercepts:
                return bp, sl, ic
        bp = self.breakpoints.astype(dtype)
        sl = self.slopes.astype(dtype)
        ic = self.intercepts.astype(dtype)
        self._param_cache[dtype] = (self.breakpoints, self.slopes, self.intercepts, bp, sl, ic)
        return bp, sl, ic

    def _build_buckets(self) -> Tuple | bool:
        """Precompute the bucket tables for the O(1) segment search.

        The breakpoint span is divided into ``K`` equal buckets with
        ``bucket_width <= min_gap / 4``.  For each bucket the window spanning
        it plus one bucket of slack on either side then contains at most one
        breakpoint, so every element landing in bucket ``b`` (clipping and
        floating-point rounding included) resolves with a single compare:

            index = base[b] + (x >= threshold[b])

        where ``base[b]`` counts the breakpoints below the window and
        ``threshold[b]`` is the window's lone breakpoint (``+inf`` if none).
        The construction is verified bucket by bucket at build time; tables
        whose geometry doesn't admit it (fewer than 4 segments, degenerate
        span, near-duplicate breakpoints) return ``False`` and keep using
        ``searchsorted``.
        """
        bp = self.breakpoints
        if bp.size < 4:
            return False
        lo, hi = float(bp[0]), float(bp[-1])
        span = hi - lo
        min_gap = float(np.min(np.diff(bp)))
        if not (span > 0 and min_gap > 0):
            return False
        # Near-duplicate breakpoints can push span/min_gap past the float
        # range (ratio = inf), which int(ceil(log2(...))) cannot digest.
        ratio = 4.0 * span / min_gap
        if not np.isfinite(ratio) or ratio > 2.0**31:
            return False
        buckets = 1 << int(np.ceil(np.log2(ratio)))
        if buckets > 8192:
            return False
        width = span / buckets
        window_starts = lo + (np.arange(buckets) - 1.0) * width
        window_ends = lo + (np.arange(buckets) + 2.0) * width
        base = np.searchsorted(bp, window_starts, side="left").astype(np.int32)
        upper = np.searchsorted(bp, window_ends, side="right")
        if np.any(upper - base > 1):
            return False
        thresholds = np.where(upper > base, bp[np.minimum(base, bp.size - 1)], np.inf)
        return (self.breakpoints, lo, 1.0 / width, buckets, base, thresholds, {})

    def _index(self, x: np.ndarray, breakpoints: np.ndarray) -> np.ndarray:
        """Segment index for ``x`` given dtype-matched ``breakpoints``.

        Equivalent to ``np.searchsorted(breakpoints, x, side="right")`` but
        O(1) per element for tables that admit a bucket decomposition: one
        multiply, one clip, two small-table gathers and one compare replace
        the per-element binary search, which otherwise dominates the fused
        kernel's runtime on large tensors.  Thresholds are compared in the
        input's dtype, so float32 inputs see exactly the float32 cut-offs
        ``searchsorted`` would use.
        """
        if self._buckets is None or (
            self._buckets is not False and self._buckets[0] is not self.breakpoints
        ):
            self._buckets = self._build_buckets()
        if self._buckets is False:
            return np.searchsorted(breakpoints, x, side="right")
        _, lo, inv_width, buckets, base, thresholds, threshold_cache = self._buckets
        if x.dtype == np.float64:
            thr = thresholds
        else:
            thr = threshold_cache.get(x.dtype)
            if thr is None:
                thr = thresholds.astype(x.dtype)
                threshold_cache[x.dtype] = thr
        scaled = np.asarray((x - lo) * inv_width)
        np.clip(scaled, 0, buckets - 1, out=scaled)
        with np.errstate(invalid="ignore"):
            bucket = scaled.astype(np.int32)
        # a NaN input casts to INT_MIN; pin it to bucket 0 so the gathers stay
        # in bounds (searchsorted sorts NaN last — garbage either way).
        np.clip(bucket, 0, buckets - 1, out=bucket)
        idx = np.asarray(np.take(base, bucket))
        np.add(idx, np.greater_equal(x, np.take(thr, bucket)), out=idx)
        return idx

    def segment_index(self, x: np.ndarray) -> np.ndarray:
        """Return the table index selected for each element of ``x``."""
        x = np.asarray(x)
        if x.dtype not in _NATIVE_DTYPES:
            x = x.astype(np.float64)
        return self._index(x, self._params(x.dtype)[0])

    def evaluate(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Fused kernel: one dtype check, one segment search, one multiply-add.

        The result has the (floating) dtype of ``x``; non-float inputs are
        promoted to float64 once.  ``out`` may alias ``x`` — the kernel is
        element-wise — which is how the Softmax/LayerNorm chains reuse their
        input buffers.  Strided/transposed inputs are accepted; they cost one
        explicit contiguous copy, visible in :func:`lut_evaluation_stats`.
        """
        x = np.asarray(x)
        if x.dtype not in _NATIVE_DTYPES:
            x = x.astype(np.float64)
        _eval_stats["evaluations"] += 1
        if out is None:
            # Without an output alias the copy is pure win: every gather and
            # the multiply-add then stream memory row-wise.
            x = _counted_contiguous(x)
        elif not x.flags.c_contiguous:
            if np.may_share_memory(x, out):
                # ``out`` aliases (part of) the strided input, so reads must
                # come from the caller's buffer as-is; count the
                # non-contiguous traversal, don't copy behind the alias.
                _eval_stats["noncontiguous_inputs"] += 1
            else:
                x = _counted_contiguous(x)
        breakpoints, slopes, intercepts = self._params(x.dtype)
        idx = self._index(x, breakpoints)
        out = _validate_out(x, out)
        # out = s[idx] * x + t[idx] with a single gather scratch, reused for
        # both table reads; safe when ``out`` aliases ``x``.
        gathered = np.asarray(np.take(slopes, idx))
        np.multiply(gathered, x, out=out)
        np.take(intercepts, idx, out=gathered)
        out += gathered
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate Eq. (4); output has the shape of ``x`` and dtype float64."""
        x = np.asarray(x, dtype=np.float64)
        return self.evaluate(x)

    # ------------------------------------------------------------------ #
    # Introspection / serialisation
    # ------------------------------------------------------------------ #
    def segment_edges(self) -> np.ndarray:
        """Segment boundaries including ``-inf`` / ``+inf`` sentinels."""
        return np.concatenate(([-np.inf], self.breakpoints, [np.inf]))

    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain Python containers (JSON-friendly)."""
        return {
            "name": self.name,
            "breakpoints": self.breakpoints.tolist(),
            "slopes": self.slopes.tolist(),
            "intercepts": self.intercepts.tolist(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LookupTable":
        """Inverse of :meth:`to_dict`."""
        return cls(
            breakpoints=np.asarray(data["breakpoints"], dtype=np.float64),
            slopes=np.asarray(data["slopes"], dtype=np.float64),
            intercepts=np.asarray(data["intercepts"], dtype=np.float64),
            name=str(data.get("name", "")),
            metadata=dict(data.get("metadata", {})),
        )

    def copy(self) -> "LookupTable":
        return type(self)(
            breakpoints=self.breakpoints.copy(),
            slopes=self.slopes.copy(),
            intercepts=self.intercepts.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def with_metadata(self, **updates: object) -> "LookupTable":
        """Return a copy with ``metadata`` updated by ``updates``."""
        out = self.copy()
        out.metadata.update(updates)
        return out

    def _errors_on_grid(self, function, input_range, num_points: int) -> np.ndarray:
        """|LUT - function| on a dense grid (shared by the error helpers)."""
        grid = np.linspace(
            float(input_range[0]), float(input_range[1]), num_points, dtype=np.float64
        )
        return np.abs(self.evaluate(grid) - np.asarray(function(grid)))

    def max_error(self, function, input_range, num_points: int = 10_000) -> float:
        """Max absolute error against ``function`` on a dense grid."""
        return float(np.max(self._errors_on_grid(function, input_range, num_points)))

    def mean_l1_error(self, function, input_range, num_points: int = 10_000) -> float:
        """Mean absolute error against ``function`` on a dense grid."""
        return float(np.mean(self._errors_on_grid(function, input_range, num_points)))


@dataclass
class UniformLookupTable(LookupTable):
    """LookupTable with equally-spaced breakpoints and O(1) segment indexing.

    The Linear-mode baseline fixes its breakpoints on an equally-spaced grid,
    which is exactly the hardware constraint that makes its index computation
    a shift-and-compare instead of a comparator tree.  An equally-spaced grid
    always admits the bucketed O(1) segment search of the base class
    (``floor((x - lo) / bucket_width)`` plus one compare — never a binary
    search), so this subclass only has to *validate* the grid; evaluation is
    inherited.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.breakpoints.size < 1:
            raise ValueError("UniformLookupTable needs at least one breakpoint")
        steps = np.diff(self.breakpoints)
        if self.breakpoints.size > 1:
            step = float(steps[0])
            if step <= 0 or not np.allclose(steps, step, rtol=1e-9, atol=0.0):
                raise ValueError(
                    "UniformLookupTable requires equally-spaced breakpoints; "
                    "use LookupTable for arbitrary grids"
                )

    @classmethod
    def from_table(cls, lut: LookupTable) -> "UniformLookupTable":
        """Re-type an existing equally-spaced table for O(1) indexing."""
        return cls(
            breakpoints=lut.breakpoints,
            slopes=lut.slopes,
            intercepts=lut.intercepts,
            name=lut.name,
            metadata=dict(lut.metadata),
        )


def evaluate_many(
    steps: Sequence[
        Tuple[
            Callable[[np.ndarray], np.ndarray],
            np.ndarray | Callable[[List[np.ndarray]], np.ndarray],
            np.ndarray | None,
        ]
    ],
) -> List[np.ndarray]:
    """Evaluate a chain of scalar primitives with explicit buffer reuse.

    Each step is ``(approximator, input, out)``.  ``input`` may be an array or
    a callable receiving the list of previous results (how the Softmax chain
    feeds the row-sum of the ``exp`` step into the ``reciprocal`` step).
    ``out`` may alias the step's input buffer; approximators exposing the
    fused ``evaluate(x, out=...)`` kernel write into it directly, while plain
    callables (exact references, I-BERT kernels) fall back to ``copyto``.

    Returns the list of step outputs in order.
    """
    results: List[np.ndarray] = []
    for approx, x, out in steps:
        if callable(x) and not isinstance(x, np.ndarray):
            x = x(results)
        evaluate = getattr(approx, "evaluate", None)
        if evaluate is not None:
            results.append(evaluate(x, out=out))
            continue
        value = np.asarray(approx(x))
        if out is not None and out.shape == value.shape and out.dtype == value.dtype:
            np.copyto(out, value)
            value = out
        results.append(value)
    return results
