"""Deterministic cache of fitted NN-LUT tables.

Fitting a 16-entry table takes a couple of seconds, and the software
experiments (Tables 2, 3) need the same four primitives over and over.  The
registry memoises ``(function, entries, config-signature)`` so every
experiment, test and benchmark sees identical, reproducible tables without
refitting.  Pre-fitted tables can also be registered directly (e.g. calibrated
variants or hand-built fixtures for tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from .conversion import network_to_lut
from .functions import get_training_range
from .lut import LookupTable
from .network import OneHiddenReluNet
from .training import TrainingConfig, TrainingResult, fit_network

__all__ = ["LutRegistry", "FittedPrimitive", "default_registry", "fit_lut"]


#: Fast-but-accurate default used across experiments; fitting all four paper
#: primitives with these settings takes a few seconds total.
DEFAULT_TRAINING_CONFIG = TrainingConfig(
    hidden_size=15,
    num_samples=20_000,
    batch_size=2048,
    epochs=40,
    learning_rate=1e-3,
    lr_milestones=(0.5, 0.75, 0.9),
    lr_gamma=0.3,
    loss="l1",
    seed=0,
    num_restarts=2,
)

#: Per-function tweaks on top of the default: wide ranges benefit from
#: log-space sampling so the curvature near the interesting end of the range
#: (0 for exp, 1 for 1/x and 1/sqrt) is represented in the training set.
FUNCTION_CONFIG_OVERRIDES: Dict[str, Dict[str, object]] = {
    "exp": {"sampling": "neg_log"},
    "rsqrt": {"sampling": "log", "target_weighting": "relative"},
    "reciprocal": {"sampling": "log", "target_weighting": "relative"},
}


@dataclass
class FittedPrimitive:
    """A fitted approximator: the network, its LUT form and fit metadata."""

    name: str
    network: OneHiddenReluNet
    lut: LookupTable
    training_result: TrainingResult
    input_range: Tuple[float, float]


def _config_for(function_name: str, base: TrainingConfig) -> TrainingConfig:
    overrides = FUNCTION_CONFIG_OVERRIDES.get(function_name, {})
    return replace(base, **overrides) if overrides else base


def fit_lut(
    function_name: str,
    num_entries: int = 16,
    config: TrainingConfig | None = None,
    input_range: Tuple[float, float] | None = None,
) -> FittedPrimitive:
    """Fit a network for ``function_name`` and convert it to an N-entry LUT.

    ``num_entries`` is the LUT size ``N``; the network uses ``N - 1`` hidden
    neurons as in the paper.
    """
    if num_entries < 2:
        raise ValueError("num_entries must be >= 2")
    base = config or DEFAULT_TRAINING_CONFIG
    base = replace(base, hidden_size=num_entries - 1)
    base = _config_for(function_name, base)
    if input_range is None:
        input_range = get_training_range(function_name)
    result = fit_network(function_name, config=base, input_range=input_range)
    lut = network_to_lut(result.network, name=function_name)
    lut = lut.with_metadata(
        input_range=tuple(input_range),
        final_l1_loss=result.final_loss,
        num_entries_requested=num_entries,
    )
    return FittedPrimitive(
        name=function_name,
        network=result.network,
        lut=lut,
        training_result=result,
        input_range=tuple(input_range),
    )


@dataclass
class LutRegistry:
    """Memoising store of fitted primitives keyed by (name, entries, seed)."""

    training_config: TrainingConfig = field(default_factory=lambda: DEFAULT_TRAINING_CONFIG)
    _cache: Dict[Tuple[str, int, int], FittedPrimitive] = field(default_factory=dict)

    def get(self, function_name: str, num_entries: int = 16) -> FittedPrimitive:
        """Return the fitted primitive, fitting and caching it on first use."""
        key = (function_name, int(num_entries), int(self.training_config.seed))
        if key not in self._cache:
            self._cache[key] = fit_lut(
                function_name, num_entries=num_entries, config=self.training_config
            )
        return self._cache[key]

    def lut(self, function_name: str, num_entries: int = 16) -> LookupTable:
        """Shorthand for ``get(...).lut``."""
        return self.get(function_name, num_entries).lut

    def register(self, key_name: str, primitive: FittedPrimitive, num_entries: int = 16) -> None:
        """Insert a pre-fitted primitive (e.g. a calibrated variant)."""
        self._cache[(key_name, int(num_entries), int(self.training_config.seed))] = primitive

    def clear(self) -> None:
        self._cache.clear()

    def __contains__(self, function_name: str) -> bool:
        return any(key[0] == function_name for key in self._cache)

    def __len__(self) -> int:
        return len(self._cache)


_DEFAULT_REGISTRY: LutRegistry | None = None


def default_registry() -> LutRegistry:
    """Process-wide shared registry used by experiments and benchmarks."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = LutRegistry()
    return _DEFAULT_REGISTRY
