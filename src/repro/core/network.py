"""One-hidden-layer ReLU network used as the NN-LUT universal approximator.

Section 3.2 of the paper: a network of ``N - 1`` hidden ReLU neurons

    NN(x) = sum_i  m_i * relu(n_i * x + b_i)  + c

is piecewise linear in ``x`` with kinks exactly at ``x = -b_i / n_i``, so it
can be transformed into an ``N``-entry first-order look-up table (Eq. 7).

The paper's Eq. (5) omits the output bias ``c``; we keep it as an optional
parameter (enabled by default) because it strictly increases approximation
capacity and drops out of the LUT transform as a constant added to every
intercept.  Setting ``output_bias=False`` reproduces the paper's exact form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["NetworkParameters", "OneHiddenReluNet"]


@dataclass
class NetworkParameters:
    """Raw parameters of a one-hidden-layer ReLU network.

    Attributes
    ----------
    first_weight:
        Hidden-layer weights ``n_i`` (shape ``(H,)``).
    first_bias:
        Hidden-layer biases ``b_i`` (shape ``(H,)``).
    second_weight:
        Output-layer weights ``m_i`` (shape ``(H,)``).
    output_bias:
        Scalar output bias ``c`` (always stored; kept at 0 when disabled).
    """

    first_weight: np.ndarray
    first_bias: np.ndarray
    second_weight: np.ndarray
    output_bias: float = 0.0

    def __post_init__(self) -> None:
        self.first_weight = np.asarray(self.first_weight, dtype=np.float64).ravel()
        self.first_bias = np.asarray(self.first_bias, dtype=np.float64).ravel()
        self.second_weight = np.asarray(self.second_weight, dtype=np.float64).ravel()
        sizes = {
            self.first_weight.size,
            self.first_bias.size,
            self.second_weight.size,
        }
        if len(sizes) != 1:
            raise ValueError(
                "first_weight, first_bias and second_weight must have the same "
                f"length, got {self.first_weight.size}, {self.first_bias.size}, "
                f"{self.second_weight.size}"
            )
        self.output_bias = float(self.output_bias)

    @property
    def hidden_size(self) -> int:
        """Number of hidden neurons (``N - 1`` for an ``N``-entry LUT)."""
        return int(self.first_weight.size)

    def copy(self) -> "NetworkParameters":
        return NetworkParameters(
            first_weight=self.first_weight.copy(),
            first_bias=self.first_bias.copy(),
            second_weight=self.second_weight.copy(),
            output_bias=self.output_bias,
        )

    def as_dict(self) -> Dict[str, np.ndarray]:
        """Flat dict view used by the optimiser and serialisation."""
        return {
            "first_weight": self.first_weight,
            "first_bias": self.first_bias,
            "second_weight": self.second_weight,
            "output_bias": np.array([self.output_bias], dtype=np.float64),
        }


@dataclass
class OneHiddenReluNet:
    """One-hidden-layer ReLU network ``y = sum_i m_i relu(n_i x + b_i) + c``.

    The network operates on scalar inputs broadcast over arbitrary numpy array
    shapes.  It provides analytic gradients for L1/L2 losses so that training
    (``repro.core.training``) needs no autodiff framework.
    """

    params: NetworkParameters
    trainable_output_bias: bool = True

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        first_weight: np.ndarray,
        first_bias: np.ndarray,
        second_weight: np.ndarray,
        output_bias: float = 0.0,
        trainable_output_bias: bool = True,
    ) -> "OneHiddenReluNet":
        params = NetworkParameters(
            first_weight=first_weight,
            first_bias=first_bias,
            second_weight=second_weight,
            output_bias=output_bias,
        )
        return cls(params=params, trainable_output_bias=trainable_output_bias)

    @property
    def hidden_size(self) -> int:
        return self.params.hidden_size

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def hidden_preactivations(self, x: np.ndarray) -> np.ndarray:
        """Return ``n_i * x + b_i`` with shape ``x.shape + (H,)``."""
        x = np.asarray(x, dtype=np.float64)
        return x[..., None] * self.params.first_weight + self.params.first_bias

    def hidden_activations(self, x: np.ndarray) -> np.ndarray:
        """Return ``relu(n_i * x + b_i)`` with shape ``x.shape + (H,)``."""
        return np.maximum(self.hidden_preactivations(x), 0.0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the network; output shape matches ``x``."""
        hidden = self.hidden_activations(x)
        return hidden @ self.params.second_weight + self.params.output_bias

    __call__ = forward

    def gradients(self, x: np.ndarray, grad_output: np.ndarray) -> Dict[str, np.ndarray]:
        """Backpropagate ``grad_output`` (dL/dy, same shape as ``x``).

        Returns gradients for every entry of :meth:`NetworkParameters.as_dict`.
        """
        x = np.asarray(x, dtype=np.float64)
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != x.shape:
            raise ValueError(
                f"grad_output shape {grad_output.shape} must match input shape {x.shape}"
            )
        pre = self.hidden_preactivations(x)
        active = pre > 0.0
        hidden = np.where(active, pre, 0.0)

        flat_x = x.reshape(-1)
        flat_go = grad_output.reshape(-1)
        flat_hidden = hidden.reshape(-1, self.hidden_size)
        flat_active = active.reshape(-1, self.hidden_size)

        grad_second = flat_go @ flat_hidden
        # dL/dhidden_i = go * m_i, masked by the ReLU derivative.
        upstream = flat_go[:, None] * self.params.second_weight * flat_active
        grad_first_w = upstream.T @ flat_x
        grad_first_b = upstream.sum(axis=0)
        grad_out_bias = flat_go.sum() if self.trainable_output_bias else 0.0
        return {
            "first_weight": grad_first_w,
            "first_bias": grad_first_b,
            "second_weight": grad_second,
            "output_bias": np.array([grad_out_bias], dtype=np.float64),
        }

    # ------------------------------------------------------------------ #
    # Breakpoint geometry (used by the LUT conversion)
    # ------------------------------------------------------------------ #
    def breakpoints(self) -> np.ndarray:
        """Kink locations ``-b_i / n_i`` for neurons with non-zero slope.

        Neurons whose input weight ``n_i`` is (numerically) zero contribute a
        constant to the output and do not create a kink; they are skipped.
        """
        n = self.params.first_weight
        b = self.params.first_bias
        nonzero = np.abs(n) > 1e-12
        return np.sort(-b[nonzero] / n[nonzero])

    def copy(self) -> "OneHiddenReluNet":
        return OneHiddenReluNet(
            params=self.params.copy(),
            trainable_output_bias=self.trainable_output_bias,
        )
