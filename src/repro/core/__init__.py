"""Core NN-LUT framework: the paper's primary contribution.

Workflow (mirrors Figure 1 of the paper):

1. :func:`repro.core.training.fit_network` trains a one-hidden-layer ReLU
   network on a scalar primitive (GELU, exp, 1/x, 1/sqrt) with the Table-1
   recipe.
2. :func:`repro.core.conversion.network_to_lut` transforms the trained network
   into an exactly-equivalent first-order look-up table (Eq. 7).
3. :mod:`repro.core.approximators` assembles the tables into drop-in
   replacements for GELU, Softmax and LayerNorm, with the input-scaling and
   calibration refinements of Sec. 3.3.
"""

from .approximators import (
    ExactGelu,
    ExactLayerNorm,
    ExactScalar,
    ExactSoftmax,
    LutGelu,
    LutLayerNorm,
    LutSoftmax,
)
from .calibration import CalibrationConfig, calibrate_lut, calibrate_network
from .conversion import lut_matches_network, network_to_lut, network_to_lut_eq7
from .functions import (
    TARGET_FUNCTIONS,
    TRAINING_RANGES,
    erf,
    exp,
    gelu,
    get_target_function,
    get_training_range,
    layer_norm,
    reciprocal,
    rsqrt,
    softmax,
)
from .initialization import INIT_SPECS, InitSpec, get_init_spec, initialize_network
from .lut import LookupTable
from .network import NetworkParameters, OneHiddenReluNet
from .quantization import (
    Fp16LookupTable,
    Int32LookupTable,
    quantize_lut_fp16,
    quantize_lut_int32,
    symmetric_scale,
)
from .registry import FittedPrimitive, LutRegistry, default_registry, fit_lut
from .scaling import InputScaler, ScaledRsqrt
from .training import AdamOptimizer, TrainingConfig, TrainingResult, fit_network

__all__ = [
    # functions
    "erf",
    "gelu",
    "exp",
    "reciprocal",
    "rsqrt",
    "softmax",
    "layer_norm",
    "TARGET_FUNCTIONS",
    "TRAINING_RANGES",
    "get_target_function",
    "get_training_range",
    # network + training
    "NetworkParameters",
    "OneHiddenReluNet",
    "InitSpec",
    "INIT_SPECS",
    "get_init_spec",
    "initialize_network",
    "TrainingConfig",
    "TrainingResult",
    "AdamOptimizer",
    "fit_network",
    # LUT
    "LookupTable",
    "network_to_lut",
    "network_to_lut_eq7",
    "lut_matches_network",
    "Fp16LookupTable",
    "Int32LookupTable",
    "quantize_lut_fp16",
    "quantize_lut_int32",
    "symmetric_scale",
    # composites & refinements
    "InputScaler",
    "ScaledRsqrt",
    "ExactScalar",
    "LutGelu",
    "LutSoftmax",
    "LutLayerNorm",
    "ExactGelu",
    "ExactSoftmax",
    "ExactLayerNorm",
    "CalibrationConfig",
    "calibrate_network",
    "calibrate_lut",
    # registry
    "FittedPrimitive",
    "LutRegistry",
    "default_registry",
    "fit_lut",
]
