/* Native compute kernels for the inference engine.
 *
 * Compiled on demand by repro.core.kernels (cc -O3 -march=native
 * -ffp-contract=off -shared -fPIC) and loaded through ctypes; no Python.h
 * involved, so any C compiler the host happens to have is enough.
 *
 * Numerical contract: every floating-point routine performs the *same scalar
 * operations in the same order* as the NumpyKernel reference (multiply then
 * add, no FMA contraction — hence -ffp-contract=off — and round-half-to-even
 * via nearbyint, matching np.round), so float32/float64 results are bitwise
 * equal to numpy's, not merely close.  The int8 GEMM accumulates int8 x int8
 * products in int32 exactly; callers guard the contraction length so neither
 * the accumulator nor the 128 * colsum offset correction can overflow.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
#include <immintrin.h>
#define REPRO_GEMM_VNNI 1
#elif defined(__AVX2__)
#include <immintrin.h>
#endif

#define EXPORT __attribute__((visibility("default")))

/* ------------------------------------------------------------------ */
/* int8 GEMM: a (m,k) row-major int8  x  bt (n,k) row-major int8       */
/* (the weight is packed transposed so both operands stream along k).  */
/* c (m,n) int32 = exact integer accumulation.                         */
/* ------------------------------------------------------------------ */

#ifdef REPRO_GEMM_VNNI
static inline int32_t hsum_epi32(__m256i v) {
    __m128i lo = _mm256_castsi256_si128(v);
    __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_hadd_epi32(s, s);
    s = _mm_hadd_epi32(s, s);
    return _mm_cvtsi128_si32(s);
}
#endif

EXPORT int repro_gemm_impl(void) {
#ifdef REPRO_GEMM_VNNI
    return 2; /* vpdpbusd */
#else
    return 1; /* scalar/autovectorised */
#endif
}

EXPORT void repro_gemm_s8(const int8_t *a, const int8_t *bt,
                          const int32_t *colsum, int32_t *c, int64_t m,
                          int64_t k, int64_t n) {
#ifdef REPRO_GEMM_VNNI
    /* vpdpbusd multiplies unsigned by signed bytes; biasing A by +128
     * (a bit-flip of the sign bit, i.e. XOR 0x80) makes it unsigned and
     * adds 128 * sum_k bt[j][k] to every dot product, which the
     * precomputed column sums subtract back out.  All intermediate sums
     * fit int32 for the contraction lengths the Python caller admits.
     *
     * The main loop is tiled 4 rows x 4 columns: each B vector loaded from
     * L2 feeds four A rows, quartering the dominant memory traffic. */
    const __m256i flip = _mm256_set1_epi8((char)0x80);
    int64_t i = 0;
    for (; i + 4 <= m; i += 4) {
        const int8_t *ar[4];
        for (int ii = 0; ii < 4; ++ii)
            ar[ii] = a + (i + ii) * k;
        int64_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const int8_t *br[4];
            for (int jj = 0; jj < 4; ++jj)
                br[jj] = bt + (j + jj) * k;
            __m512i acc[4][4];
            for (int ii = 0; ii < 4; ++ii)
                for (int jj = 0; jj < 4; ++jj)
                    acc[ii][jj] = _mm512_setzero_si512();
            const __m512i flip512 = _mm512_set1_epi8((char)0x80);
            int64_t kk = 0;
            for (; kk + 64 <= k; kk += 64) {
                __m512i va[4], vb;
                for (int ii = 0; ii < 4; ++ii)
                    va[ii] = _mm512_xor_si512(
                        _mm512_loadu_si512((const void *)(ar[ii] + kk)),
                        flip512);
                for (int jj = 0; jj < 4; ++jj) {
                    vb = _mm512_loadu_si512((const void *)(br[jj] + kk));
                    acc[0][jj] = _mm512_dpbusd_epi32(acc[0][jj], va[0], vb);
                    acc[1][jj] = _mm512_dpbusd_epi32(acc[1][jj], va[1], vb);
                    acc[2][jj] = _mm512_dpbusd_epi32(acc[2][jj], va[2], vb);
                    acc[3][jj] = _mm512_dpbusd_epi32(acc[3][jj], va[3], vb);
                }
            }
            for (int ii = 0; ii < 4; ++ii) {
                for (int jj = 0; jj < 4; ++jj) {
                    int32_t s = _mm512_reduce_add_epi32(acc[ii][jj]);
                    for (int64_t kt = kk; kt < k; ++kt) {
                        int32_t au =
                            (int32_t)(uint8_t)(ar[ii][kt] ^ (int8_t)0x80);
                        s += au * br[jj][kt];
                    }
                    c[(i + ii) * n + j + jj] = s - 128 * colsum[j + jj];
                }
            }
        }
        for (; j < n; ++j) { /* column tail: plain signed dot per row */
            const int8_t *bj = bt + j * k;
            for (int ii = 0; ii < 4; ++ii) {
                int32_t acc0 = 0;
                for (int64_t kk = 0; kk < k; ++kk)
                    acc0 += (int32_t)ar[ii][kk] * bj[kk];
                c[(i + ii) * n + j] = acc0;
            }
        }
    }
    for (; i < m; ++i) { /* row tail: single-row quad-column loop */
        const int8_t *ar = a + i * k;
        int32_t *cr = c + i * n;
        int64_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const int8_t *b0 = bt + (j + 0) * k;
            const int8_t *b1 = bt + (j + 1) * k;
            const int8_t *b2 = bt + (j + 2) * k;
            const int8_t *b3 = bt + (j + 3) * k;
            __m256i acc0 = _mm256_setzero_si256();
            __m256i acc1 = _mm256_setzero_si256();
            __m256i acc2 = _mm256_setzero_si256();
            __m256i acc3 = _mm256_setzero_si256();
            int64_t kk = 0;
            for (; kk + 32 <= k; kk += 32) {
                __m256i va = _mm256_xor_si256(
                    _mm256_loadu_si256((const __m256i *)(ar + kk)), flip);
                acc0 = _mm256_dpbusd_epi32(
                    acc0, va, _mm256_loadu_si256((const __m256i *)(b0 + kk)));
                acc1 = _mm256_dpbusd_epi32(
                    acc1, va, _mm256_loadu_si256((const __m256i *)(b1 + kk)));
                acc2 = _mm256_dpbusd_epi32(
                    acc2, va, _mm256_loadu_si256((const __m256i *)(b2 + kk)));
                acc3 = _mm256_dpbusd_epi32(
                    acc3, va, _mm256_loadu_si256((const __m256i *)(b3 + kk)));
            }
            int32_t s0 = hsum_epi32(acc0);
            int32_t s1 = hsum_epi32(acc1);
            int32_t s2 = hsum_epi32(acc2);
            int32_t s3 = hsum_epi32(acc3);
            for (; kk < k; ++kk) {
                int32_t au = (int32_t)(uint8_t)(ar[kk] ^ (int8_t)0x80);
                s0 += au * b0[kk];
                s1 += au * b1[kk];
                s2 += au * b2[kk];
                s3 += au * b3[kk];
            }
            cr[j + 0] = s0 - 128 * colsum[j + 0];
            cr[j + 1] = s1 - 128 * colsum[j + 1];
            cr[j + 2] = s2 - 128 * colsum[j + 2];
            cr[j + 3] = s3 - 128 * colsum[j + 3];
        }
        for (; j < n; ++j) { /* remaining columns: plain signed dot */
            const int8_t *bj = bt + j * k;
            int32_t acc = 0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += (int32_t)ar[kk] * bj[kk];
            cr[j] = acc;
        }
    }
#else
    (void)colsum;
    for (int64_t i = 0; i < m; ++i) {
        const int8_t *ar = a + i * k;
        int32_t *cr = c + i * n;
        for (int64_t j = 0; j < n; ++j) {
            const int8_t *bj = bt + j * k;
            int32_t acc = 0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += (int32_t)ar[kk] * bj[kk];
            cr[j] = acc;
        }
    }
#endif
}

/* ------------------------------------------------------------------ */
/* Everything below is macro-instantiated for float32 and float64.     */
/* ------------------------------------------------------------------ */

/* Segment index, equivalent to searchsorted(bp, x, side="right").
 *
 * When the caller supplies the LookupTable's bucket decomposition
 * (base/thr/lo/inv_width — the exact arrays the numpy fast path uses, so
 * both kernels resolve identical indices), the index is one multiply, one
 * clamp and one compare.  Tables without buckets fall back to a branchless
 * count of breakpoints <= x, which equals the binary search for sorted
 * breakpoints.  NaN inputs clamp to bucket 0 / index 0 — garbage either
 * way, matching the numpy path's NaN pinning. */
#define DEFINE_SEARCH(SUF, T)                                                  \
    static inline int64_t lut_index_##SUF(T v, const T *bp, int64_t nbp,       \
                                          const int32_t *base, const T *thr,  \
                                          T lo, T invw, int64_t nbuckets) {    \
        if (nbuckets) {                                                        \
            T s = (v - lo) * invw;                                             \
            T bmax = (T)(nbuckets - 1);                                        \
            if (s > bmax)                                                      \
                s = bmax;                                                      \
            if (s < (T)0)                                                      \
                s = (T)0;                                                      \
            int64_t b = (int64_t)s; /* NaN -> clamped below */                 \
            if (b < 0)                                                         \
                b = 0;                                                         \
            if (b > nbuckets - 1)                                              \
                b = nbuckets - 1;                                              \
            return (int64_t)base[b] + (v >= thr[b]);                           \
        }                                                                      \
        int64_t idx = 0;                                                       \
        for (int64_t t = 0; t < nbp; ++t)                                      \
            idx += (v >= bp[t]);                                               \
        return idx;                                                            \
    }

DEFINE_SEARCH(f32, float)
DEFINE_SEARCH(f64, double)

/* max |x| and round(x / scale) -> int8 (the two passes of activation
 * quantisation).  Both return 1 when a non-finite element is seen and
 * write nothing in that case.  The float32 variants carry an AVX2 main
 * loop — the scalar early-return finiteness check otherwise blocks
 * autovectorisation — using only bitwise-exact operations (IEEE divide,
 * vroundps in the default half-to-even mode, min/max clip), so the packed
 * bytes are identical to the scalar path's. */
#define DEFINE_QUANT_SCALAR(SUF, T, NEARBYINT, ISFIN)                          \
    static int maxabs_scalar_##SUF(const T *x, int64_t size, double *out) {    \
        T m = (T)0;                                                            \
        for (int64_t i = 0; i < size; ++i) {                                   \
            T v = x[i];                                                        \
            if (!ISFIN(v))                                                     \
                return 1;                                                      \
            T av = v < (T)0 ? -v : v;                                          \
            if (av > m)                                                        \
                m = av;                                                        \
        }                                                                      \
        *out = (double)m;                                                      \
        return 0;                                                              \
    }                                                                          \
    static int qpack_scalar_##SUF(const T *x, int64_t size, double scale,      \
                                  int8_t *q) {                                 \
        T s = (T)scale;                                                        \
        for (int64_t i = 0; i < size; ++i) {                                   \
            T v = x[i];                                                        \
            if (!ISFIN(v))                                                     \
                return 1;                                                      \
            T r = NEARBYINT(v / s);                                            \
            if (r > (T)127)                                                    \
                r = (T)127;                                                    \
            if (r < (T)-127)                                                   \
                r = (T)-127;                                                   \
            q[i] = (int8_t)r;                                                  \
        }                                                                      \
        return 0;                                                              \
    }

DEFINE_QUANT_SCALAR(f32, float, nearbyintf, isfinite)
DEFINE_QUANT_SCALAR(f64, double, nearbyint, isfinite)

EXPORT int repro_maxabs_f64(const double *x, int64_t size, double *out) {
    return maxabs_scalar_f64(x, size, out);
}

EXPORT int repro_qpack_f64(const double *x, int64_t size, double scale,
                           int8_t *q) {
    return qpack_scalar_f64(x, size, scale, q);
}

EXPORT int repro_maxabs_f32(const float *x, int64_t size, double *out) {
    int64_t i = 0;
    float m = 0.0f;
#ifdef __AVX2__
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    const __m256 inf = _mm256_set1_ps(INFINITY);
    __m256 vm = _mm256_setzero_ps();
    __m256 bad = _mm256_setzero_ps();
    for (; i + 8 <= size; i += 8) {
        __m256 av = _mm256_and_ps(_mm256_loadu_ps(x + i), absmask);
        /* NLT_UQ: true when !(av < inf), i.e. av == inf or av is NaN. */
        bad = _mm256_or_ps(bad, _mm256_cmp_ps(av, inf, _CMP_NLT_UQ));
        vm = _mm256_max_ps(vm, av);
    }
    if (_mm256_movemask_ps(bad))
        return 1;
    float lanes[8];
    _mm256_storeu_ps(lanes, vm);
    for (int l = 0; l < 8; ++l)
        if (lanes[l] > m)
            m = lanes[l];
#endif
    double tail = 0.0;
    if (maxabs_scalar_f32(x + i, size - i, &tail))
        return 1;
    *out = (double)(m > (float)tail ? m : (float)tail);
    return 0;
}

EXPORT int repro_qpack_f32(const float *x, int64_t size, double scale,
                           int8_t *q) {
    int64_t i = 0;
#ifdef __AVX2__
    const float s = (float)scale;
    const __m256 vs = _mm256_set1_ps(s);
    const __m256 lim = _mm256_set1_ps(127.0f);
    const __m256 nlim = _mm256_set1_ps(-127.0f);
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    const __m256 inf = _mm256_set1_ps(INFINITY);
    /* packs_epi32/epi16 interleave the two 128-bit lanes; this dword
     * permutation restores source order in the packed byte vector. */
    const __m256i unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    for (; i + 32 <= size; i += 32) {
        __m256 v0 = _mm256_loadu_ps(x + i);
        __m256 v1 = _mm256_loadu_ps(x + i + 8);
        __m256 v2 = _mm256_loadu_ps(x + i + 16);
        __m256 v3 = _mm256_loadu_ps(x + i + 24);
        __m256 bad = _mm256_cmp_ps(_mm256_and_ps(v0, absmask), inf,
                                   _CMP_NLT_UQ);
        bad = _mm256_or_ps(bad, _mm256_cmp_ps(_mm256_and_ps(v1, absmask),
                                              inf, _CMP_NLT_UQ));
        bad = _mm256_or_ps(bad, _mm256_cmp_ps(_mm256_and_ps(v2, absmask),
                                              inf, _CMP_NLT_UQ));
        bad = _mm256_or_ps(bad, _mm256_cmp_ps(_mm256_and_ps(v3, absmask),
                                              inf, _CMP_NLT_UQ));
        if (_mm256_movemask_ps(bad))
            return 1;
        const int rc = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
        __m256 r0 = _mm256_round_ps(_mm256_div_ps(v0, vs), rc);
        __m256 r1 = _mm256_round_ps(_mm256_div_ps(v1, vs), rc);
        __m256 r2 = _mm256_round_ps(_mm256_div_ps(v2, vs), rc);
        __m256 r3 = _mm256_round_ps(_mm256_div_ps(v3, vs), rc);
        r0 = _mm256_max_ps(_mm256_min_ps(r0, lim), nlim);
        r1 = _mm256_max_ps(_mm256_min_ps(r1, lim), nlim);
        r2 = _mm256_max_ps(_mm256_min_ps(r2, lim), nlim);
        r3 = _mm256_max_ps(_mm256_min_ps(r3, lim), nlim);
        __m256i p01 = _mm256_packs_epi32(_mm256_cvtps_epi32(r0),
                                         _mm256_cvtps_epi32(r1));
        __m256i p23 = _mm256_packs_epi32(_mm256_cvtps_epi32(r2),
                                         _mm256_cvtps_epi32(r3));
        __m256i p = _mm256_packs_epi16(p01, p23);
        p = _mm256_permutevar8x32_epi32(p, unshuffle);
        _mm256_storeu_si256((__m256i *)(q + i), p);
    }
#endif
    return qpack_scalar_f32(x + i, size - i, scale, q + i);
}

#define DEFINE_OPS(SUF, T, NEARBYINT, ISFIN)                                   \
    /* out = (T)((double)acc * scale) [+ bias], matching the numpy     */      \
    /* float64-dequant-then-cast-then-bias-add order bit for bit.      */      \
    EXPORT void repro_dequant_bias_##SUF(const int32_t *acc, double scale,     \
                                         const T *bias, T *out, int64_t rows,  \
                                         int64_t cols) {                       \
        for (int64_t r = 0; r < rows; ++r) {                                   \
            const int32_t *ar = acc + r * cols;                                \
            T *or_ = out + r * cols;                                           \
            if (bias) {                                                        \
                for (int64_t c = 0; c < cols; ++c)                             \
                    or_[c] = (T)((double)ar[c] * scale) + bias[c];             \
            } else {                                                           \
                for (int64_t c = 0; c < cols; ++c)                             \
                    or_[c] = (T)((double)ar[c] * scale);                       \
            }                                                                  \
        }                                                                      \
    }                                                                          \
                                                                               \
    /* Piecewise-linear table: out = s[idx] * x + t[idx].              */      \
    EXPORT void repro_lut_eval_##SUF(const T *x, T *out, int64_t size,         \
                                     const T *bp, const T *sl, const T *ic,    \
                                     int64_t nbp, const int32_t *base,         \
                                     const T *thr, double lo_d, double invw_d, \
                                     int64_t nbuckets) {                       \
        T blo = (T)lo_d, binvw = (T)invw_d;                                    \
        for (int64_t i = 0; i < size; ++i) {                                   \
            T v = x[i];                                                        \
            int64_t idx =                                                      \
                lut_index_##SUF(v, bp, nbp, base, thr, blo, binvw, nbuckets);  \
            out[i] = sl[idx] * v + ic[idx];                                    \
        }                                                                      \
    }                                                                          \
                                                                               \
    /* Fused FFN epilogue: t = x + bias; LUT on clip(t); saturated     */      \
    /* tails (t > hi -> t, t < lo -> 0) exactly as LutGelu does.       */      \
    EXPORT void repro_lut_gelu_##SUF(const T *x, const T *bias, T *out,        \
                                     int64_t rows, int64_t cols, const T *bp,  \
                                     const T *sl, const T *ic, int64_t nbp,    \
                                     const int32_t *base, const T *thr,        \
                                     double lo_d, double invw_d,               \
                                     int64_t nbuckets, double clip_lo_d,       \
                                     double clip_hi_d, int has_clip) {         \
        T blo = (T)lo_d, binvw = (T)invw_d;                                    \
        T lo = (T)clip_lo_d, hi = (T)clip_hi_d;                                \
        for (int64_t r = 0; r < rows; ++r) {                                   \
            const T *xr = x + r * cols;                                        \
            T *or_ = out + r * cols;                                           \
            for (int64_t c = 0; c < cols; ++c) {                               \
                T t = bias ? xr[c] + bias[c] : xr[c];                          \
                T y;                                                           \
                if (has_clip) {                                                \
                    T inside = t < lo ? lo : (t > hi ? hi : t);                \
                    int64_t idx = lut_index_##SUF(inside, bp, nbp, base, thr,  \
                                                  blo, binvw, nbuckets);       \
                    y = sl[idx] * inside + ic[idx];                            \
                    if (t > hi)                                                \
                        y = t;                                                 \
                    if (t < lo)                                                \
                        y = (T)0;                                              \
                } else {                                                       \
                    int64_t idx = lut_index_##SUF(t, bp, nbp, base, thr, blo,  \
                                                  binvw, nbuckets);            \
                    y = sl[idx] * t + ic[idx];                                 \
                }                                                              \
                or_[c] = y;                                                    \
            }                                                                  \
        }                                                                      \
    }                                                                          \
                                                                               \
    /* out = residual + (x + bias); out may alias x.                   */      \
    EXPORT void repro_bias_residual_##SUF(const T *x, const T *bias,           \
                                          const T *res, T *out, int64_t rows,  \
                                          int64_t cols) {                      \
        for (int64_t r = 0; r < rows; ++r) {                                   \
            const T *xr = x + r * cols;                                        \
            const T *rr = res + r * cols;                                      \
            T *or_ = out + r * cols;                                           \
            for (int64_t c = 0; c < cols; ++c)                                 \
                or_[c] = rr[c] + (xr[c] + bias[c]);                            \
        }                                                                      \
    }                                                                          \
                                                                               \
    /* out = max(x + bias, 0) with NaN propagation (np.maximum).       */      \
    EXPORT void repro_bias_relu_##SUF(const T *x, const T *bias, T *out,       \
                                      int64_t rows, int64_t cols) {            \
        for (int64_t r = 0; r < rows; ++r) {                                   \
            const T *xr = x + r * cols;                                        \
            T *or_ = out + r * cols;                                           \
            for (int64_t c = 0; c < cols; ++c) {                               \
                T t = bias ? xr[c] + bias[c] : xr[c];                          \
                or_[c] = (t > (T)0 || t != t) ? t : (T)0;                      \
            }                                                                  \
        }                                                                      \
    }                                                                          \
                                                                               \
    /* LayerNorm tail: out = ((centered * inv_std[row]) * gamma) +     */      \
    /* beta, one pass over the tensor; out may alias centered.         */      \
    EXPORT void repro_scale_affine_##SUF(const T *centered, const T *inv_std,  \
                                         const T *gamma, const T *beta,        \
                                         T *out, int64_t rows, int64_t cols) { \
        for (int64_t r = 0; r < rows; ++r) {                                   \
            const T *xr = centered + r * cols;                                 \
            T *or_ = out + r * cols;                                           \
            T inv = inv_std[r];                                                \
            for (int64_t c = 0; c < cols; ++c)                                 \
                or_[c] = ((xr[c] * inv) * gamma[c]) + beta[c];                 \
        }                                                                      \
    }                                                                          \
                                                                               \
    /* NoNorm affine: out = (x * gamma) + beta; out may alias x.       */      \
    EXPORT void repro_affine_##SUF(const T *x, const T *gamma, const T *beta,  \
                                   T *out, int64_t rows, int64_t cols) {       \
        for (int64_t r = 0; r < rows; ++r) {                                   \
            const T *xr = x + r * cols;                                        \
            T *or_ = out + r * cols;                                           \
            for (int64_t c = 0; c < cols; ++c)                                 \
                or_[c] = (xr[c] * gamma[c]) + beta[c];                         \
        }                                                                      \
    }

DEFINE_OPS(f32, float, nearbyintf, isfinite)
DEFINE_OPS(f64, double, nearbyint, isfinite)
