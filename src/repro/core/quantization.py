"""Reduced-precision LUT variants (paper Sec. 4.1, footnote 3).

The paper evaluates three precision settings for the table contents and the
datapath:

* **FP32** — the tables as produced by the NN→LUT conversion.
* **FP16** — breakpoints/slopes/intercepts cast to IEEE half precision and the
  multiply-add evaluated in half precision.
* **INT32** — the I-BERT style direct quantisation: each of ``d``, ``s``, ``t``
  gets a scale factor derived from its maximum magnitude, values are rounded
  to integers, and the per-element evaluation ``s*x + t`` is carried out in
  integer arithmetic with the scale factors tracked on the side.

All three variants expose the same ``__call__(x)`` / ``evaluate(x, out=)``
interface as :class:`~repro.core.lut.LookupTable`, so they are drop-in
interchangeable in the approximators and the Transformer backends.  Both
entry points preserve the input's floating dtype (non-float input promotes
to float64), so the fp32 engine never silently upcasts through a table call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .lut import LookupTable
from .lut import _NATIVE_DTYPES, _validate_out

__all__ = [
    "quantize_lut_fp16",
    "Fp16LookupTable",
    "Int32LookupTable",
    "quantize_lut_int32",
    "symmetric_scale",
]


def symmetric_scale(values: np.ndarray, num_bits: int = 32) -> float:
    """Symmetric quantisation scale mapping ``max|values|`` to the int range.

    Mirrors I-BERT's scaling-factor computation: ``scale = max|v| / (2^(b-1)-1)``.
    A zero tensor gets scale 1.0 so that dequantisation is a no-op.
    """
    if num_bits < 2:
        raise ValueError("num_bits must be >= 2")
    max_abs = float(np.max(np.abs(values))) if np.asarray(values).size else 0.0
    if not np.isfinite(max_abs):
        raise ValueError(
            "cannot derive a quantisation scale from non-finite values "
            "(input contains NaN or infinity)"
        )
    if max_abs == 0.0:
        return 1.0
    return max_abs / float(2 ** (num_bits - 1) - 1)


def quantize_lut_fp16(lut: LookupTable) -> "Fp16LookupTable":
    """Cast a LUT's parameters to FP16 and evaluate in FP16."""
    return Fp16LookupTable(lut)


@dataclass
class Fp16LookupTable:
    """LUT whose parameters and multiply-add are IEEE half precision."""

    source: LookupTable

    def __post_init__(self) -> None:
        self.breakpoints = self.source.breakpoints.astype(np.float16)
        self.slopes = self.source.slopes.astype(np.float16)
        self.intercepts = self.source.intercepts.astype(np.float16)
        self.name = self.source.name
        self.metadata = dict(self.source.metadata, precision="fp16")

    @property
    def num_entries(self) -> int:
        return int(self.slopes.size)

    def evaluate(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Fused FP16 kernel; the result carries the (floating) dtype of ``x``.

        The comparison and multiply-add run in half precision exactly as in
        ``__call__`` — only the surrounding casts and temporaries are fused.
        """
        x = np.asarray(x)
        if x.dtype not in _NATIVE_DTYPES:
            x = x.astype(np.float64)
        x16 = x.astype(np.float16)
        idx = np.searchsorted(self.breakpoints, x16, side="right")
        result16 = np.take(self.slopes, idx)
        result16 *= x16
        result16 += np.take(self.intercepts, idx)
        out = _validate_out(x, out)
        np.copyto(out, result16)
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        # Same dtype contract as ``evaluate``: the result carries the input's
        # floating dtype (non-float input promotes to float64 once).  A
        # forced float64 cast here would silently upcast the fp32 engine
        # wherever a backend reaches the table through ``__call__``.
        return self.evaluate(x)


@dataclass
class Int32LookupTable:
    """LUT with INT32-quantised parameters and integer multiply-add.

    Following the I-BERT recipe referenced by the paper, the input is assumed
    to be pre-scaled: callers pass floating-point ``x`` and the table
    internally quantises it with its own input scale (derived from the
    training range), performs the comparison and multiply-add on integers, and
    dequantises the result.  ``input_scale`` may also be provided explicitly
    to emulate a fixed upstream scale factor.
    """

    source: LookupTable
    input_range: Tuple[float, float]
    num_bits: int = 32
    input_scale: float | None = None

    def __post_init__(self) -> None:
        low, high = float(self.input_range[0]), float(self.input_range[1])
        if not high > low:
            raise ValueError(f"input_range must satisfy high > low, got {self.input_range}")
        span = np.array([low, high])
        self._input_scale = (
            float(self.input_scale)
            if self.input_scale is not None
            else symmetric_scale(span, self.num_bits)
        )
        self._breakpoint_scale = self._input_scale
        self._slope_scale = symmetric_scale(self.source.slopes, self.num_bits)
        # Intercepts share the output scale slope_scale * input_scale so the
        # integer accumulation s_q * x_q + t_q is homogeneous.
        self._output_scale = self._slope_scale * self._input_scale

        self.q_breakpoints = np.round(self.source.breakpoints / self._breakpoint_scale).astype(
            np.int64
        )
        self.q_slopes = np.round(self.source.slopes / self._slope_scale).astype(np.int64)
        self.q_intercepts = np.round(self.source.intercepts / self._output_scale).astype(np.int64)
        self.name = self.source.name
        self.metadata = dict(self.source.metadata, precision=f"int{self.num_bits}")

    @property
    def num_entries(self) -> int:
        return int(self.q_slopes.size)

    @property
    def scales(self) -> Tuple[float, float, float]:
        """(input_scale, slope_scale, output_scale) for inspection."""
        return (self._input_scale, self._slope_scale, self._output_scale)

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        return np.round(np.asarray(x, dtype=np.float64) / self._input_scale).astype(np.int64)

    def evaluate(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Fused INT32 kernel; the result carries the (floating) dtype of ``x``.

        Input quantisation, comparison and multiply-add are the same integer
        operations as ``__call__``; only the float casts and temporaries
        around them are fused.
        """
        x = np.asarray(x)
        if x.dtype not in _NATIVE_DTYPES:
            x = x.astype(np.float64)
        xq = np.round(x / self._input_scale).astype(np.int64)
        idx = np.searchsorted(self.q_breakpoints, xq, side="right")
        acc = np.take(self.q_slopes, idx)
        acc *= xq
        acc += np.take(self.q_intercepts, idx)
        out = _validate_out(x, out)
        np.multiply(acc, self._output_scale, out=out)
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        # See Fp16LookupTable.__call__: delegate preserving the floating
        # dtype instead of force-casting through float64.
        return self.evaluate(x)


def quantize_lut_int32(
    lut: LookupTable,
    input_range: Tuple[float, float],
    num_bits: int = 32,
    input_scale: float | None = None,
) -> Int32LookupTable:
    """Convenience constructor for :class:`Int32LookupTable`."""
    return Int32LookupTable(
        source=lut, input_range=input_range, num_bits=num_bits, input_scale=input_scale
    )
