"""Exact transformation of a trained ReLU network into a look-up table.

This is the core contribution of the paper (Sec. 3.2, Eq. 5-7): a
one-hidden-layer ReLU network is piecewise linear with kinks at
``d_i = -b_i / n_i``, so on every interval between consecutive kinks it equals
``s_i x + t_i`` for constants that depend only on which neurons are active in
that interval.  The transformation is exact — NN(x) == LUT(x) for every x —
which the test-suite verifies property-based.

Two implementations are provided:

* :func:`network_to_lut` — robust extraction: sort the kinks, evaluate the
  active-neuron mask at each interval midpoint and accumulate
  ``s_i = sum_j m_j n_j`` and ``t_i = sum_j m_j b_j + c`` over active neurons.
  This is algebraically identical to the paper's Eq. (7) but does not rely on
  the sign bookkeeping of Eq. (6), so it also handles degenerate neurons
  (``n_i == 0``) and duplicate breakpoints gracefully.
* :func:`network_to_lut_eq7` — a literal transcription of Eq. (6)/(7) used to
  cross-check the robust version in the tests.
"""

from __future__ import annotations

import numpy as np

from .lut import LookupTable
from .network import OneHiddenReluNet

__all__ = ["network_to_lut", "network_to_lut_eq7", "lut_matches_network"]


def _interval_probes(breakpoints: np.ndarray) -> np.ndarray:
    """Return one representative x inside each of the ``len(bp)+1`` intervals."""
    if breakpoints.size == 0:
        return np.array([0.0])
    # Width used for the two unbounded outer intervals and for spacing probes
    # away from the breakpoints themselves.
    if breakpoints.size > 1:
        span = float(breakpoints[-1] - breakpoints[0])
        pad = max(span, 1.0)
    else:
        pad = max(abs(float(breakpoints[0])), 1.0)
    inner = (breakpoints[:-1] + breakpoints[1:]) / 2.0 if breakpoints.size > 1 else np.array([])
    return np.concatenate(
        ([breakpoints[0] - pad], inner, [breakpoints[-1] + pad])
    )


def network_to_lut(
    network: OneHiddenReluNet,
    name: str = "",
    merge_tolerance: float = 0.0,
) -> LookupTable:
    """Convert a trained ReLU network into its exactly-equivalent LUT.

    Parameters
    ----------
    network:
        Trained :class:`OneHiddenReluNet`.
    name:
        Optional tag stored on the resulting :class:`LookupTable`.
    merge_tolerance:
        Breakpoints closer together than this are merged into one (keeps the
        table at its nominal entry count when two neurons learn nearly
        coincident kinks).  ``0.0`` keeps every distinct kink.

    Returns
    -------
    LookupTable
        Table with one segment per kink interval.  For a network of ``H``
        hidden neurons with distinct non-degenerate kinks this has ``H + 1``
        entries — the paper's ``N``-entry table from ``N - 1`` neurons.
    """
    n = network.params.first_weight
    b = network.params.first_bias
    m = network.params.second_weight
    c = network.params.output_bias

    nonzero = np.abs(n) > 1e-12
    kinks = -b[nonzero] / n[nonzero]
    kinks = np.sort(kinks)
    if merge_tolerance > 0.0 and kinks.size > 1:
        keep = np.concatenate(([True], np.diff(kinks) > merge_tolerance))
        kinks = kinks[keep]
    else:
        kinks = np.unique(kinks)

    probes = _interval_probes(kinks)
    # Active mask per probe: neuron j contributes on this interval iff
    # n_j * x + b_j > 0 there (constant within the interval).  Degenerate
    # neurons (n_j == 0) are handled separately below, so they are excluded
    # from the masked sums.
    n_active, b_active, m_active = n[nonzero], b[nonzero], m[nonzero]
    active = (probes[:, None] * n_active + b_active) > 0.0

    slopes = active @ (m_active * n_active)
    intercepts = active @ (m_active * b_active) + c
    # Degenerate neurons contribute a constant m_j * relu(b_j) on every segment.
    degenerate = ~nonzero
    if np.any(degenerate):
        intercepts = intercepts + np.sum(m[degenerate] * np.maximum(b[degenerate], 0.0))

    return LookupTable(
        breakpoints=kinks,
        slopes=slopes,
        intercepts=intercepts,
        name=name,
        metadata={"source": "network_to_lut", "hidden_size": network.hidden_size},
    )


def network_to_lut_eq7(network: OneHiddenReluNet, name: str = "") -> LookupTable:
    """Literal transcription of the paper's Eq. (6)/(7).

    Requires every hidden neuron to have a non-zero input weight (the paper's
    implicit assumption).  Intended for cross-checking :func:`network_to_lut`;
    production code should prefer the robust version.
    """
    n = network.params.first_weight
    b = network.params.first_bias
    m = network.params.second_weight
    c = network.params.output_bias
    if np.any(np.abs(n) <= 1e-12):
        raise ValueError("Eq. 7 form requires all hidden weights n_i to be non-zero")

    order = np.argsort(-b / n)
    n, b, m = n[order], b[order], m[order]
    breakpoints = -b / n
    num_segments = n.size + 1

    slopes = np.empty(num_segments)
    intercepts = np.empty(num_segments)
    for segment in range(num_segments):
        # Segment `segment` lies between breakpoints[segment-1] and
        # breakpoints[segment]; neuron j (kink index j) is "to the left" when
        # j < segment.  Eq. (6): left neurons are active iff n_j >= 0, right
        # neurons are active iff n_j < 0.
        left = np.arange(n.size) < segment
        active = np.where(left, n >= 0.0, n < 0.0)
        slopes[segment] = np.sum(m[active] * n[active])
        intercepts[segment] = np.sum(m[active] * b[active]) + c

    return LookupTable(
        breakpoints=breakpoints,
        slopes=slopes,
        intercepts=intercepts,
        name=name,
        metadata={"source": "network_to_lut_eq7", "hidden_size": network.hidden_size},
    )


def lut_matches_network(
    network: OneHiddenReluNet,
    lut: LookupTable,
    input_range: tuple[float, float],
    num_points: int = 4096,
    tolerance: float = 1e-8,
) -> bool:
    """Check NN(x) == LUT(x) on a dense grid spanning ``input_range``.

    The grid is padded by 10% on each side so the unbounded outer segments are
    exercised too.
    """
    low, high = float(input_range[0]), float(input_range[1])
    pad = 0.1 * (high - low)
    grid = np.linspace(low - pad, high + pad, num_points)
    max_diff = float(np.max(np.abs(network.forward(grid) - lut(grid))))
    scale = max(1.0, float(np.max(np.abs(network.forward(grid)))))
    return max_diff <= tolerance * scale
