"""Reference implementations of the non-linear operations targeted by NN-LUT.

The paper (Sec. 2.1) identifies three Transformer non-linearities — GELU,
Softmax and LayerNorm — and decomposes them into four scalar primitives that
the approximation networks are actually trained on (Table 1):

==============  =======================  ==========================
Non-linear op   Scalar primitive         Training input range
==============  =======================  ==========================
GELU            ``gelu(x)``              (-5, 5)
Softmax         ``exp(x)``               (-256, 0)
Softmax         ``1/x`` (divide)         (1, 1024)
LayerNorm       ``1/sqrt(x)``            (0.1, 1024)
==============  =======================  ==========================

Everything here is the exact (FP64/FP32) reference used both as the training
target for the approximators and as the "baseline" non-linear backend of the
Transformer substrate.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np
from scipy import special as _special

__all__ = [
    "erf",
    "gelu",
    "exp",
    "reciprocal",
    "rsqrt",
    "softmax",
    "layer_norm",
    "TARGET_FUNCTIONS",
    "TRAINING_RANGES",
    "get_target_function",
    "get_training_range",
]


def erf(x: np.ndarray) -> np.ndarray:
    """Gauss error function, ``erf(x) = 2/sqrt(pi) * int_0^x exp(-t^2) dt``."""
    return _special.erf(np.asarray(x, dtype=np.float64))


def gelu(x: np.ndarray) -> np.ndarray:
    """Exact GELU activation, Eq. (1) of the paper.

    ``GELU(x) = x/2 * (1 + erf(x / sqrt(2)))``
    """
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + _special.erf(x / np.sqrt(2.0)))


def exp(x: np.ndarray) -> np.ndarray:
    """Exponential primitive used inside Softmax."""
    return np.exp(np.asarray(x, dtype=np.float64))


def reciprocal(x: np.ndarray) -> np.ndarray:
    """Division primitive ``1/x`` used to normalise Softmax."""
    return 1.0 / np.asarray(x, dtype=np.float64)


def rsqrt(x: np.ndarray) -> np.ndarray:
    """Inverse square root ``1/sqrt(x)`` used inside LayerNorm."""
    return 1.0 / np.sqrt(np.asarray(x, dtype=np.float64))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable Softmax along ``axis``, Eq. (2) of the paper."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    axis: int = -1,
    eps: float = 1e-5,
) -> np.ndarray:
    """LayerNorm along ``axis``, Eq. (3) of the paper, with optional affine."""
    x = np.asarray(x, dtype=np.float64)
    mean = np.mean(x, axis=axis, keepdims=True)
    var = np.mean((x - mean) ** 2, axis=axis, keepdims=True)
    normalised = (x - mean) / np.sqrt(var + eps)
    if gamma is not None:
        normalised = normalised * gamma
    if beta is not None:
        normalised = normalised + beta
    return normalised


#: Scalar primitives that NN-LUT networks are trained on (paper Table 1).
TARGET_FUNCTIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "gelu": gelu,
    "exp": exp,
    "reciprocal": reciprocal,
    "rsqrt": rsqrt,
    "erf": erf,
}

#: Input data ranges for the training datasets (paper Table 1).
TRAINING_RANGES: Dict[str, Tuple[float, float]] = {
    "gelu": (-5.0, 5.0),
    "exp": (-256.0, 0.0),
    "reciprocal": (1.0, 1024.0),
    "rsqrt": (0.1, 1024.0),
    "erf": (-4.0, 4.0),
}


def get_target_function(name: str) -> Callable[[np.ndarray], np.ndarray]:
    """Look up a scalar primitive by name, raising a clear error if unknown."""
    try:
        return TARGET_FUNCTIONS[name]
    except KeyError as exc:
        known = ", ".join(sorted(TARGET_FUNCTIONS))
        raise KeyError(f"Unknown target function {name!r}; known: {known}") from exc


def get_training_range(name: str) -> Tuple[float, float]:
    """Return the Table-1 training input range for a scalar primitive."""
    try:
        return TRAINING_RANGES[name]
    except KeyError as exc:
        known = ", ".join(sorted(TRAINING_RANGES))
        raise KeyError(f"Unknown target function {name!r}; known: {known}") from exc
