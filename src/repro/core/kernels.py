"""Pluggable compute kernels for the inference engine's hot paths.

This is the GEMM/epilogue sibling of the serving layer's ``WorkerTransport``
seam: a small protocol (:class:`ComputeKernel`) behind which the engine's
per-op inner loops live, with two interchangeable implementations:

* :class:`NumpyKernel` — the reference.  Every method is the *verbatim* op
  sequence the engine ran before the seam existed (extracted from
  ``transformer/layers.py`` and ``core/approximators.py``), so selecting it
  reproduces the pre-seam numerics bit for bit.
* :class:`NativeKernel` — a compiled fast path.  A small C file
  (``kernels_native.c``) is compiled on first use with whatever C compiler
  the host has (``cc -O3 -march=native -ffp-contract=off``), cached by
  source hash, and loaded through ctypes.  It provides a true
  INT8 x INT8 -> INT32 GEMM (replacing the float64-carrier matmul trick) and
  fused epilogues — bias + GELU-LUT with saturation tails, bias + residual,
  and the LayerNorm centre/scale/affine tail — each a single pass over the
  tensor instead of numpy's one-pass-per-op sequence.

Parity contract
---------------
``NativeKernel`` is not merely "close": its C routines perform the same
scalar operations in the same order as numpy (no FMA contraction,
round-half-to-even, identical ``searchsorted(..., side="right")`` segment
selection), and LayerNorm's mean/variance reductions stay in numpy, so
float32/float64 results are bitwise equal to ``NumpyKernel``.  The int8
path quantises with the same scale and rounding and accumulates the same
exact integers, so it is bitwise equal as well.  Tier-1 tests gate this.

Selection and fallback
----------------------
``resolve_kernel("native")`` returns the native kernel when a C compiler is
available and falls back to ``NumpyKernel`` with a single ``RuntimeWarning``
otherwise (or when ``REPRO_NATIVE_KERNEL=0`` disables it); results are
identical either way.  ``get_kernel`` is the strict variant that raises
instead of falling back.  The knob is threaded through
``TransformerConfig``/``SessionConfig``/``BackendSpec`` as a plain string,
so sharded-serving workers reconstruct the same kernel from serialized
config alone.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .approximators import (
    LutGelu,
    LutLayerNorm,
    LutSoftmax,
    _as_float,
    _gelu_forward,
    _layernorm_forward,
    _softmax_forward,
)
from .lut import LookupTable, UniformLookupTable, _counted_contiguous
from ..quant.fixed_point import compute_scale

__all__ = [
    "ComputeKernel",
    "NumpyKernel",
    "NativeKernel",
    "KERNEL_NAMES",
    "get_kernel",
    "resolve_kernel",
    "native_available",
    "native_unavailable_reason",
    "reset_kernel_fallback_warning",
    "kernel_info",
]

#: kernel names accepted by the ``kernel=`` knobs across the stack.
KERNEL_NAMES: Tuple[str, ...] = ("numpy", "native")

_INT8_LIMIT = 127
#: contraction lengths beyond this could overflow the biased int32
#: accumulation in the native GEMM (255 * 127 * k < 2**31); the packer falls
#: back to the float64-carrier operand above it.
_GEMM_K_MAX = (2**31 - 1) // (255 * 127)

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_NONFINITE_MSG = "cannot quantize non-finite values (input contains NaN or infinity)"


def _fusible_table(table: object) -> bool:
    """True for plain float piecewise-linear tables the C kernels understand.

    Precision-simulating subclasses (FP16/INT32 tables) re-quantise inside
    ``evaluate`` and are excluded on purpose — ``type`` check, not
    ``isinstance``.
    """
    return type(table) in (LookupTable, UniformLookupTable)


def _c_ready(x: np.ndarray) -> bool:
    return x.dtype in _FLOAT_DTYPES and x.flags.c_contiguous


# --------------------------------------------------------------------------- #
# Protocol + reference implementation
# --------------------------------------------------------------------------- #
class ComputeKernel:
    """Per-op compute backend for the engine's hot paths.

    Conventions shared by all methods:

    * ``operand`` arguments are whatever the kernel's own ``pack_weight_*``
      returned — packed formats are kernel-private.
    * Methods documented as fused epilogues may clobber their ``x`` argument
      (the caller owns a freshly-allocated matmul output) and return it.
    * ``out_dtype`` is the engine compute dtype (float32/float64).
    """

    name: str = "abstract"
    #: whether the encoder layer may route its epilogues through the fused
    #: entry points (bias+LUT, bias+residual, LayerNorm tail).
    supports_fusion: bool = False

    # -- GEMM / linear ---------------------------------------------------- #
    def matmul_fp32(self, x, operand, out_dtype, bias=None):
        raise NotImplementedError

    def pack_weight_int8(self, w_q_data):
        raise NotImplementedError

    def linear_int8(self, x, operand, weight_scale, out_dtype, bias=None):
        raise NotImplementedError

    # -- packed quantisation ---------------------------------------------- #
    def quantize_scale(self, x):
        raise NotImplementedError

    def quantize_pack(self, x, scale):
        raise NotImplementedError

    # -- LUT composites / epilogues --------------------------------------- #
    def lut_eval(self, table, x, out=None):
        raise NotImplementedError

    def lut_gelu(self, op, x):
        raise NotImplementedError

    def lut_gelu_bias(self, op, x, bias):
        raise NotImplementedError

    def lut_softmax(self, op, x, axis):
        raise NotImplementedError

    def lut_layernorm(self, op, x, gamma, beta, axis=-1):
        raise NotImplementedError

    def bias_residual(self, x, bias, residual):
        raise NotImplementedError

    def bias_relu(self, x, bias):
        raise NotImplementedError

    def affine(self, x, gamma, beta):
        raise NotImplementedError


class NumpyKernel(ComputeKernel):
    """Reference kernel: the engine's original numpy op sequences, verbatim."""

    name = "numpy"
    supports_fusion = False

    def __reduce__(self):
        return (resolve_kernel, (self.name,))

    # -- GEMM / linear ---------------------------------------------------- #
    def matmul_fp32(self, x, operand, out_dtype, bias=None):
        x = np.asarray(x)
        if x.dtype != out_dtype:
            x = x.astype(out_dtype)
        result = np.matmul(x, operand)
        if bias is not None:
            result += bias
        return result

    def pack_weight_int8(self, w_q_data):
        # float64 carrier of the exact quantised integers (BLAS-fast).
        return np.asarray(w_q_data).astype(np.float64)

    def linear_int8(self, x, operand, weight_scale, out_dtype, bias=None):
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        act_scale = compute_scale(x, num_bits=8)
        act = np.round(x / act_scale)
        np.clip(act, -_INT8_LIMIT, _INT8_LIMIT, out=act)
        if act.dtype != np.float64:
            act = act.astype(np.float64)
        accumulator = np.matmul(act, operand)
        accumulator *= act_scale * weight_scale
        result = accumulator.astype(out_dtype, copy=False)
        if bias is not None:
            result += bias
        return result

    # -- packed quantisation ---------------------------------------------- #
    def quantize_scale(self, x):
        return compute_scale(np.asarray(x), num_bits=8)

    def quantize_pack(self, x, scale):
        scale = float(scale)
        if not (np.isfinite(scale) and scale > 0.0):
            raise ValueError(f"scale must be finite and positive, got {scale}")
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        rounded = np.round(x / scale)
        if rounded.size and not (
            np.isfinite(np.min(rounded)) and np.isfinite(np.max(rounded))
        ):
            raise ValueError(_NONFINITE_MSG)
        np.clip(rounded, -_INT8_LIMIT, _INT8_LIMIT, out=rounded)
        return rounded.astype(np.int8)

    # -- LUT composites / epilogues --------------------------------------- #
    def lut_eval(self, table, x, out=None):
        return table.evaluate(x, out=out)

    def lut_gelu(self, op, x):
        return _gelu_forward(op, _as_float(np.asarray(x)))

    def lut_gelu_bias(self, op, x, bias):
        x += bias
        return _gelu_forward(op, x)

    def lut_softmax(self, op, x, axis):
        return _softmax_forward(op, _as_float(np.asarray(x)), axis)

    def lut_layernorm(self, op, x, gamma, beta, axis=-1):
        return _layernorm_forward(op, _as_float(np.asarray(x)), gamma, beta, axis)

    def bias_residual(self, x, bias, residual):
        x += bias
        return np.add(residual, x, out=x)

    def bias_relu(self, x, bias):
        x += bias
        return np.maximum(x, 0.0, out=x)

    def affine(self, x, gamma, beta):
        result = x * gamma
        result += beta
        return result


# --------------------------------------------------------------------------- #
# Native library: build on demand, cache by source hash, load via ctypes
# --------------------------------------------------------------------------- #
_SOURCE_PATH = Path(__file__).with_name("kernels_native.c")

_I8 = ctypes.c_void_p  # all arrays cross the boundary as raw pointers
_SIGNATURES: Dict[str, Tuple[Sequence, Optional[type]]] = {
    "repro_gemm_impl": ([], ctypes.c_int),
    "repro_gemm_s8": (
        [_I8, _I8, _I8, _I8, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64],
        None,
    ),
}
for _suf in ("f32", "f64"):
    _SIGNATURES.update(
        {
            f"repro_maxabs_{_suf}": ([_I8, ctypes.c_int64, _I8], ctypes.c_int),
            f"repro_qpack_{_suf}": (
                [_I8, ctypes.c_int64, ctypes.c_double, _I8],
                ctypes.c_int,
            ),
            f"repro_dequant_bias_{_suf}": (
                [_I8, ctypes.c_double, _I8, _I8, ctypes.c_int64, ctypes.c_int64],
                None,
            ),
            f"repro_lut_eval_{_suf}": (
                [_I8, _I8, ctypes.c_int64, _I8, _I8, _I8, ctypes.c_int64,
                 _I8, _I8, ctypes.c_double, ctypes.c_double, ctypes.c_int64],
                None,
            ),
            f"repro_lut_gelu_{_suf}": (
                [_I8, _I8, _I8, ctypes.c_int64, ctypes.c_int64, _I8, _I8, _I8,
                 ctypes.c_int64, _I8, _I8, ctypes.c_double, ctypes.c_double,
                 ctypes.c_int64, ctypes.c_double, ctypes.c_double,
                 ctypes.c_int],
                None,
            ),
            f"repro_bias_residual_{_suf}": (
                [_I8, _I8, _I8, _I8, ctypes.c_int64, ctypes.c_int64],
                None,
            ),
            f"repro_bias_relu_{_suf}": (
                [_I8, _I8, _I8, ctypes.c_int64, ctypes.c_int64],
                None,
            ),
            f"repro_scale_affine_{_suf}": (
                [_I8, _I8, _I8, _I8, _I8, ctypes.c_int64, ctypes.c_int64],
                None,
            ),
            f"repro_affine_{_suf}": (
                [_I8, _I8, _I8, _I8, ctypes.c_int64, ctypes.c_int64],
                None,
            ),
        }
    )

_BASE_FLAGS = ("-std=c11", "-O3", "-ffp-contract=off", "-shared", "-fPIC")


def _extra_cflags() -> tuple:
    """Escape-hatch flags (``REPRO_KERNEL_CFLAGS``), e.g. sanitizers.

    They participate in the compile command *and* in the cache tag, so a
    sanitizer build never collides with the regular cached .so.
    """
    raw = os.environ.get("REPRO_KERNEL_CFLAGS", "")
    return tuple(raw.split()) if raw.strip() else ()



#: tried in order; the first set that compiles wins (``-march=native``
#: unlocks the VNNI int8 GEMM where the CPU has it).
_FLAG_ATTEMPTS = (("-march=native",), ())

_native_lock = threading.Lock()
_native_state: Dict[str, object] = {"tried": False, "lib": None, "error": None}
_fallback_warned = False


def _find_compiler() -> str | None:
    override = os.environ.get("REPRO_CC")
    if override:
        return shutil.which(override) or None
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE_DIR")
    if override:
        return Path(override)
    try:
        return Path.home() / ".cache" / "repro-kernels"
    except (RuntimeError, KeyError):  # no resolvable home directory
        return Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}"


def _compile_library(compiler: str, source: str) -> Path:
    """Compile (or reuse) the shared library for ``source``; atomic on disk."""
    last_error: Exception | None = None
    for extra in _FLAG_ATTEMPTS:
        flags = _BASE_FLAGS + extra + _extra_cflags()
        tag = hashlib.sha256(
            "\x00".join((compiler, " ".join(flags), source)).encode()
        ).hexdigest()[:16]
        cache = _cache_dir()
        target = cache / f"kernels_{tag}.so"
        if target.exists():
            return target
        try:
            cache.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
            os.close(fd)
            try:
                cmd = [compiler, *flags, "-o", tmp, str(_SOURCE_PATH)]
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
                if proc.returncode != 0:
                    raise RuntimeError(
                        f"{' '.join(cmd)} failed:\n{proc.stderr.strip()[:2000]}"
                    )
                os.replace(tmp, target)  # concurrent builders converge here
            except BaseException:
                # subprocess.run itself may raise (missing compiler binary,
                # TimeoutExpired) — the temp .so must not outlive the attempt.
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return target
        except Exception as exc:  # try the next (more conservative) flag set
            last_error = exc
    raise RuntimeError(f"native kernel compilation failed: {last_error}")


def _load_native_lib():
    """Build/load the native library once; returns None (with reason) on failure."""
    with _native_lock:
        if _native_state["tried"]:
            return _native_state["lib"]
        _native_state["tried"] = True
        try:
            compiler = _find_compiler()
            if compiler is None:
                raise RuntimeError("no C compiler found (cc/gcc/clang)")
            if not _SOURCE_PATH.exists():
                raise RuntimeError(f"kernel source missing: {_SOURCE_PATH}")
            so_path = _compile_library(compiler, _SOURCE_PATH.read_text())
            lib = ctypes.CDLL(str(so_path))
            for fname, (argtypes, restype) in _SIGNATURES.items():
                fn = getattr(lib, fname)
                fn.argtypes = list(argtypes)
                fn.restype = restype
            _native_state["lib"] = lib
        except Exception as exc:
            _native_state["lib"] = None
            _native_state["error"] = str(exc)
        return _native_state["lib"]


def _native_disabled_by_env() -> bool:
    return os.environ.get("REPRO_NATIVE_KERNEL", "").strip().lower() in (
        "0",
        "off",
        "false",
        "no",
    )


def native_available() -> bool:
    """Whether the compiled NativeKernel can be used on this host."""
    if _native_disabled_by_env():
        return False
    return _load_native_lib() is not None


def native_unavailable_reason() -> str | None:
    """Why the native kernel is unavailable (None when it is available)."""
    if _native_disabled_by_env():
        return "disabled via REPRO_NATIVE_KERNEL"
    if _load_native_lib() is not None:
        return None
    return str(_native_state["error"] or "unknown failure")


# --------------------------------------------------------------------------- #
# NativeKernel
# --------------------------------------------------------------------------- #
class _PackedInt8Weight:
    """Weight operand for the native int8 GEMM.

    Holds the transposed int8 weight (``(out, in)`` row-major, so both GEMM
    operands stream along the contraction axis) plus the int32 column sums
    consumed by the unsigned-offset correction.  A float64 carrier for the
    numpy fallback path is derived lazily if ever needed.
    """

    __slots__ = ("bt", "colsum", "k", "n", "_carrier")

    def __init__(self, w_q_data: np.ndarray) -> None:
        data = np.asarray(w_q_data)
        self.k, self.n = (int(data.shape[0]), int(data.shape[1]))
        self.bt = np.ascontiguousarray(data.T.astype(np.int8))
        self.colsum = np.ascontiguousarray(
            data.sum(axis=0, dtype=np.int64).astype(np.int32)
        )
        self._carrier: np.ndarray | None = None

    def carrier(self) -> np.ndarray:
        if self._carrier is None:
            self._carrier = np.ascontiguousarray(self.bt.T).astype(np.float64)
        return self._carrier


def _ptr(arr: np.ndarray | None) -> int | None:
    return None if arr is None else arr.ctypes.data


class NativeKernel(ComputeKernel):
    """Compiled C fast path: true int8 GEMM + single-pass fused epilogues.

    ``num_threads > 1`` parallelises the int8 GEMM and the large fused
    epilogues over row blocks with an in-process thread pool (the C calls
    release the GIL); results are bitwise independent of the thread count
    because the work is row-partitioned.
    """

    name = "native"
    supports_fusion = True

    _MIN_ROWS_PER_THREAD = 32

    def __init__(self, num_threads: int | None = None) -> None:
        if num_threads is None:
            num_threads = int(os.environ.get("REPRO_KERNEL_THREADS", "1") or 1)
        self.num_threads = max(1, int(num_threads))
        lib = _load_native_lib()
        if lib is None or _native_disabled_by_env():
            raise RuntimeError(
                f"native kernel unavailable: {native_unavailable_reason()}"
            )
        self._lib = lib
        self._numpy = NumpyKernel()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def __reduce__(self):
        return (resolve_kernel, (self.name,))

    @property
    def gemm_impl(self) -> int:
        """2 when the VNNI dot-product GEMM was compiled in, 1 otherwise."""
        return int(self._lib.repro_gemm_impl())

    # -- row-block threading ---------------------------------------------- #
    def _run_rows(self, rows: int, fn) -> None:
        """Invoke ``fn(start, stop)`` over row blocks, threaded when asked."""
        threads = min(self.num_threads, max(1, rows // self._MIN_ROWS_PER_THREAD))
        if threads <= 1:
            fn(0, rows)
            return
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_threads,
                    thread_name_prefix="repro-kernel",
                )
            pool = self._pool
        bounds = np.linspace(0, rows, threads + 1).astype(int)
        futures = [
            pool.submit(fn, int(bounds[i]), int(bounds[i + 1]))
            for i in range(threads)
        ]
        for future in futures:
            future.result()

    def _suffix(self, dtype: np.dtype) -> str:
        return "f32" if dtype == np.float32 else "f64"

    # -- GEMM / linear ---------------------------------------------------- #
    def matmul_fp32(self, x, operand, out_dtype, bias=None):
        # BLAS already owns this one; the native value is in int8 + epilogues.
        return self._numpy.matmul_fp32(x, operand, out_dtype, bias=bias)

    def pack_weight_int8(self, w_q_data):
        data = np.asarray(w_q_data)
        if data.shape[0] > _GEMM_K_MAX:
            # int32 accumulation could overflow: keep the float64 carrier.
            return self._numpy.pack_weight_int8(data)
        return _PackedInt8Weight(data)

    def gemm_int8(self, a_q: np.ndarray, packed: _PackedInt8Weight) -> np.ndarray:
        """Exact INT8 x INT8 -> INT32 GEMM over a packed weight operand."""
        m = int(a_q.shape[0])
        acc = np.empty((m, packed.n), dtype=np.int32)
        if m == 0 or packed.n == 0:
            return acc
        k, n = packed.k, packed.n
        a_ptr, bt_ptr = a_q.ctypes.data, packed.bt.ctypes.data
        cs_ptr, acc_ptr = packed.colsum.ctypes.data, acc.ctypes.data

        def run(start: int, stop: int) -> None:
            self._lib.repro_gemm_s8(
                a_ptr + start * k, bt_ptr, cs_ptr, acc_ptr + start * n * 4,
                stop - start, k, n,
            )

        self._run_rows(m, run)
        return acc

    def linear_int8(self, x, operand, weight_scale, out_dtype, bias=None):
        if isinstance(operand, np.ndarray):  # carrier fallback (huge k)
            return self._numpy.linear_int8(
                x, operand, weight_scale, out_dtype, bias=bias
            )
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        k, n = operand.k, operand.n
        out_shape = (*x.shape[:-1], n)
        if x.size == 0:
            result = np.zeros(out_shape, dtype=out_dtype)
            if bias is not None:
                result += bias
            return result
        flat = np.ascontiguousarray(x.reshape(-1, k))
        m = flat.shape[0]
        suf = self._suffix(flat.dtype)
        act_scale = self._max_abs_scale(flat, suf)
        q = np.empty((m, k), dtype=np.int8)
        status = getattr(self._lib, f"repro_qpack_{suf}")(
            flat.ctypes.data, flat.size, act_scale, q.ctypes.data
        )
        if status:
            raise ValueError(_NONFINITE_MSG)
        acc = self.gemm_int8(q, operand)
        out = np.empty((m, n), dtype=out_dtype)
        if bias is not None:
            bias = np.ascontiguousarray(bias)
        getattr(self._lib, f"repro_dequant_bias_{self._suffix(np.dtype(out_dtype))}")(
            acc.ctypes.data, act_scale * weight_scale, _ptr(bias),
            out.ctypes.data, m, n,
        )
        return out.reshape(out_shape)

    # -- packed quantisation ---------------------------------------------- #
    def _max_abs_scale(self, flat: np.ndarray, suf: str) -> float:
        out = ctypes.c_double(0.0)
        status = getattr(self._lib, f"repro_maxabs_{suf}")(
            flat.ctypes.data, flat.size, ctypes.addressof(out)
        )
        if status:
            raise ValueError(_NONFINITE_MSG)
        max_abs = out.value if flat.size else 0.0
        if max_abs == 0.0:
            return 1.0
        return max_abs / float(_INT8_LIMIT)

    def quantize_scale(self, x):
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        if not x.flags.c_contiguous:
            return self._numpy.quantize_scale(x)
        return self._max_abs_scale(x, self._suffix(x.dtype))

    def quantize_pack(self, x, scale):
        scale = float(scale)
        if not (np.isfinite(scale) and scale > 0.0):
            raise ValueError(f"scale must be finite and positive, got {scale}")
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        if not x.flags.c_contiguous:
            return self._numpy.quantize_pack(x, scale)
        q = np.empty(x.shape, dtype=np.int8)
        status = getattr(self._lib, f"repro_qpack_{self._suffix(x.dtype)}")(
            x.ctypes.data, x.size, scale, q.ctypes.data
        )
        if status:
            raise ValueError(_NONFINITE_MSG)
        return q

    # -- LUT composites / epilogues --------------------------------------- #
    def _table_params(self, table, dtype):
        bp, sl, ic = table._params(dtype)
        return bp, sl, ic

    def _bucket_params(self, table, dtype):
        """Bucket tables for the O(1) segment search, dtype-matched.

        Mirrors ``LookupTable._index``'s lazy build (including staleness on
        breakpoint rebinding) so the C kernels see exactly the tables the
        numpy path would use.  Returns ``None`` when the table's geometry
        doesn't admit buckets — the C side then falls back to its branchless
        linear scan over the breakpoints.
        """
        if table._buckets is None or (
            table._buckets is not False and table._buckets[0] is not table.breakpoints
        ):
            table._buckets = table._build_buckets()
        if table._buckets is False:
            return None
        _, lo, inv_width, nbuckets, base, thresholds, threshold_cache = table._buckets
        if dtype == np.float64:
            thr = thresholds
        else:
            thr = threshold_cache.get(dtype)
            if thr is None:
                thr = thresholds.astype(dtype)
                threshold_cache[dtype] = thr
        return base, thr, float(lo), float(inv_width), int(nbuckets)

    def lut_eval(self, table, x, out=None):
        x = np.asarray(x)
        if not (_fusible_table(table) and x.dtype in _FLOAT_DTYPES):
            return table.evaluate(x, out=out)
        if not x.flags.c_contiguous:
            if out is not None and np.may_share_memory(x, out):
                # In-place evaluation of a strided view: the caller's buffer
                # is the contract, so stay on the numpy gather path.
                return table.evaluate(x, out=out)
            x = _counted_contiguous(x)
        if out is None:
            out = np.empty_like(x)
        elif out.shape != x.shape or out.dtype != x.dtype or not out.flags.c_contiguous:
            return table.evaluate(x, out=out)
        bp, sl, ic = self._table_params(table, x.dtype)
        buckets = self._bucket_params(table, x.dtype)
        if buckets is None:
            base_ptr = thr_ptr = None
            lo = invw = 0.0
            nbuckets = 0
        else:
            base, thr, lo, invw, nbuckets = buckets
            base_ptr, thr_ptr = base.ctypes.data, thr.ctypes.data
        getattr(self._lib, f"repro_lut_eval_{self._suffix(x.dtype)}")(
            x.ctypes.data, out.ctypes.data, x.size,
            bp.ctypes.data, sl.ctypes.data, ic.ctypes.data, bp.size,
            base_ptr, thr_ptr, lo, invw, nbuckets,
        )
        return out

    def _lut_gelu_native(self, op, x, bias):
        """Single C pass: (x [+ bias]) -> clip -> LUT -> saturation tails."""
        cols = x.shape[-1] if x.ndim else 1
        rows = x.size // cols if cols else 0
        bp, sl, ic = self._table_params(op.gelu_approx, x.dtype)
        buckets = self._bucket_params(op.gelu_approx, x.dtype)
        if buckets is None:
            base_ptr = thr_ptr = None
            blo = binvw = 0.0
            nbuckets = 0
        else:
            base, thr, blo, binvw, nbuckets = buckets
            base_ptr, thr_ptr = base.ctypes.data, thr.ctypes.data
        if op.clip_range is None:
            lo, hi, has_clip = 0.0, 0.0, 0
        else:
            lo, hi = (float(op.clip_range[0]), float(op.clip_range[1]))
            has_clip = 1
        fn = getattr(self._lib, f"repro_lut_gelu_{self._suffix(x.dtype)}")
        x_ptr, bias_ptr = x.ctypes.data, _ptr(bias)
        itemsize = x.itemsize

        def run(start: int, stop: int) -> None:
            offset = start * cols * itemsize
            fn(x_ptr + offset, bias_ptr, x_ptr + offset, stop - start, cols,
               bp.ctypes.data, sl.ctypes.data, ic.ctypes.data, bp.size,
               base_ptr, thr_ptr, blo, binvw, nbuckets,
               lo, hi, has_clip)

        self._run_rows(rows, run)
        return x

    def lut_gelu(self, op, x):
        x = _as_float(np.asarray(x))
        if not (_fusible_table(op.gelu_approx) and _c_ready(x)):
            return _gelu_forward(op, x)
        # The C pass writes in place; the reference path leaves the caller's
        # input intact, so work on a fresh copy.
        return self._lut_gelu_native(op, x.copy(), None)

    def lut_gelu_bias(self, op, x, bias):
        if not (
            _fusible_table(op.gelu_approx)
            and _c_ready(x)
            and bias is not None
            and bias.dtype == x.dtype
            and bias.flags.c_contiguous
            and x.ndim >= 1
            and bias.shape == (x.shape[-1],)
        ):
            return self._numpy.lut_gelu_bias(op, x, bias)
        return self._lut_gelu_native(op, x, bias)

    def lut_softmax(self, op, x, axis):
        x = _as_float(np.asarray(x))
        if not _fusible_table(op.exp_approx):
            return _softmax_forward(op, x, axis)

        def exp_eval(shifted: np.ndarray) -> np.ndarray:
            return self.lut_eval(op.exp_approx, shifted, out=shifted)

        return _softmax_forward(op, x, axis, exp_eval=exp_eval)

    def lut_layernorm(self, op, x, gamma, beta, axis=-1):
        x = _as_float(np.asarray(x))
        if not (
            axis in (-1, x.ndim - 1)
            and gamma is not None
            and beta is not None
            and np.asarray(gamma).dtype == x.dtype
            and np.asarray(beta).dtype == x.dtype
        ):
            return _layernorm_forward(op, x, gamma, beta, axis)

        def normalize(centered, inv_std, gamma_, beta_):
            cols = centered.shape[-1]
            rows = centered.size // cols if cols else 0
            if not (
                _c_ready(centered)
                and cols
                and rows
                and gamma_.flags.c_contiguous
                and beta_.flags.c_contiguous
            ):
                normalised = np.multiply(centered, inv_std, out=centered)
                normalised *= gamma_
                normalised += beta_
                return normalised
            inv = np.ascontiguousarray(inv_std.reshape(-1))
            getattr(self._lib, f"repro_scale_affine_{self._suffix(centered.dtype)}")(
                centered.ctypes.data, inv.ctypes.data, gamma_.ctypes.data,
                beta_.ctypes.data, centered.ctypes.data, rows, cols,
            )
            return centered

        return _layernorm_forward(op, x, gamma, beta, axis, normalize=normalize)

    def bias_residual(self, x, bias, residual):
        if not (
            _c_ready(x)
            and x.ndim >= 1
            and residual.shape == x.shape
            and residual.dtype == x.dtype
            and residual.flags.c_contiguous
            and bias.shape == (x.shape[-1],)
            and bias.dtype == x.dtype
            and bias.flags.c_contiguous
        ):
            return self._numpy.bias_residual(x, bias, residual)
        cols = x.shape[-1]
        rows = x.size // cols if cols else 0
        getattr(self._lib, f"repro_bias_residual_{self._suffix(x.dtype)}")(
            x.ctypes.data, bias.ctypes.data, residual.ctypes.data,
            x.ctypes.data, rows, cols,
        )
        return x

    def bias_relu(self, x, bias):
        if not (
            _c_ready(x)
            and x.ndim >= 1
            and bias.shape == (x.shape[-1],)
            and bias.dtype == x.dtype
            and bias.flags.c_contiguous
        ):
            return self._numpy.bias_relu(x, bias)
        cols = x.shape[-1]
        rows = x.size // cols if cols else 0
        getattr(self._lib, f"repro_bias_relu_{self._suffix(x.dtype)}")(
            x.ctypes.data, bias.ctypes.data, x.ctypes.data, rows, cols
        )
        return x

    def affine(self, x, gamma, beta):
        if not (
            _c_ready(x)
            and x.ndim >= 1
            and gamma.shape == (x.shape[-1],)
            and gamma.dtype == x.dtype
            and beta.shape == gamma.shape
            and beta.dtype == x.dtype
            and gamma.flags.c_contiguous
            and beta.flags.c_contiguous
        ):
            return self._numpy.affine(x, gamma, beta)
        out = np.empty_like(x)
        cols = x.shape[-1]
        rows = x.size // cols if cols else 0
        getattr(self._lib, f"repro_affine_{self._suffix(x.dtype)}")(
            x.ctypes.data, gamma.ctypes.data, beta.ctypes.data,
            out.ctypes.data, rows, cols,
        )
        return out


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
NUMPY_KERNEL = NumpyKernel()
_native_kernel_singleton: NativeKernel | None = None


def _native_singleton() -> NativeKernel:
    global _native_kernel_singleton
    if _native_kernel_singleton is None:
        _native_kernel_singleton = NativeKernel()
    return _native_kernel_singleton


def validate_kernel_name(name: str) -> str:
    if name not in KERNEL_NAMES:
        raise ValueError(f"kernel must be one of {KERNEL_NAMES}, got {name!r}")
    return name


def get_kernel(name: str = "numpy") -> ComputeKernel:
    """Strict kernel lookup: raises when ``name`` cannot be provided."""
    validate_kernel_name(name)
    if name == "numpy":
        return NUMPY_KERNEL
    if not native_available():
        raise RuntimeError(
            f"native kernel unavailable: {native_unavailable_reason()}"
        )
    return _native_singleton()


def resolve_kernel(name: str = "numpy") -> ComputeKernel:
    """Kernel lookup with graceful fallback.

    ``"native"`` on a host without a working C toolchain (or with
    ``REPRO_NATIVE_KERNEL=0``) returns :class:`NumpyKernel` — identical
    results, slower — and emits a single ``RuntimeWarning`` per process.
    """
    global _fallback_warned
    validate_kernel_name(name)
    if name == "numpy":
        return NUMPY_KERNEL
    if native_available():
        return _native_singleton()
    if not _fallback_warned:
        _fallback_warned = True
        warnings.warn(
            "native compute kernel unavailable "
            f"({native_unavailable_reason()}); falling back to the numpy "
            "kernel (identical results, no compiled fast path)",
            RuntimeWarning,
            stacklevel=2,
        )
    return NUMPY_KERNEL


def reset_kernel_fallback_warning() -> None:
    """Re-arm the once-per-process fallback warning (test hook)."""
    global _fallback_warned
    _fallback_warned = False


def kernel_info() -> Dict[str, object]:
    """Diagnostics for benchmarks/reports: availability + GEMM flavour."""
    info: Dict[str, object] = {
        "names": list(KERNEL_NAMES),
        "native_available": native_available(),
        "native_unavailable_reason": native_unavailable_reason(),
        "gemm_impl": None,
    }
    if info["native_available"]:
        info["gemm_impl"] = _native_singleton().gemm_impl
    return info
