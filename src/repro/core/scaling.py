"""Input scaling for wide-range approximation (paper Sec. 3.3.2).

The ``1/sqrt`` primitive inside LayerNorm has a very steep output for inputs
below one (small activation variance), which a small ReLU network cannot fit
together with the shallow tail up to 1024.  The paper's fix:

1. train the LUT only on the well-behaved range ``[1, K]`` (``K >> 1``),
2. at inference, when the input falls below one, multiply it by a large
   power-of-two constant ``S`` (a bit-shift in hardware) so it lands in
   ``[1, K]``, look up the table, and multiply the result by ``sqrt(S)``
   (a constant multiply), since ``1/sqrt(x) = sqrt(S) * 1/sqrt(S * x)``.

:class:`InputScaler` implements the dispatch; it is used by
``repro.core.approximators.LutLayerNorm`` and can wrap any rsqrt-like table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["InputScaler", "ScaledRsqrt"]


@dataclass(frozen=True)
class InputScaler:
    """Power-of-two input scaling for ``1/sqrt`` style functions.

    Parameters
    ----------
    scale_bits:
        ``S = 2 ** scale_bits``; the paper suggests ``S = 2^10``.
    threshold:
        Inputs below this threshold are scaled up before the table look-up.
    """

    scale_bits: int = 10
    threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.scale_bits < 0:
            raise ValueError("scale_bits must be non-negative")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    @property
    def scale(self) -> float:
        """The multiplicative input scale ``S`` (a power of two)."""
        return float(2**self.scale_bits)

    @property
    def output_scale(self) -> float:
        """Output correction factor ``sqrt(S)``."""
        return float(np.sqrt(self.scale))

    def apply(
        self, x: np.ndarray, rsqrt_approx: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Evaluate ``1/sqrt(x)`` through ``rsqrt_approx`` with scaling.

        Elements ``x < threshold`` are evaluated as
        ``sqrt(S) * rsqrt_approx(S * x)``; the rest go straight through.

        The input's floating dtype is preserved, and approximators exposing
        the fused ``evaluate(x, out=...)`` kernel reuse the scaled-input
        buffer for their output.
        """
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        small = x < self.threshold
        scaled_input = np.where(small, x * self.scale, x)
        evaluate = getattr(rsqrt_approx, "evaluate", None)
        if evaluate is not None:
            # the scaled-input buffer is ours: fuse the output correction into
            # it in place.
            raw = evaluate(scaled_input, out=scaled_input)
            np.multiply(raw, self.output_scale, out=raw, where=small)
            return raw
        # plain callables may return a buffer they own — don't mutate it.
        raw = np.asarray(rsqrt_approx(scaled_input))
        return np.where(small, raw * self.output_scale, raw)


@dataclass
class ScaledRsqrt:
    """Callable wrapper bundling an rsqrt approximator with an InputScaler."""

    rsqrt_approx: Callable[[np.ndarray], np.ndarray]
    scaler: InputScaler | None = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.scaler is None:
            return np.asarray(self.rsqrt_approx(np.asarray(x, dtype=np.float64)))
        return self.scaler.apply(x, self.rsqrt_approx)
