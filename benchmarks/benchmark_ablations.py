"""Ablations the paper calls out: LUT entry count, precision, input scaling."""

import numpy as np
import pytest

from repro.core import functions
from repro.core.approximators import LutLayerNorm
from repro.core.quantization import quantize_lut_fp16, quantize_lut_int32
from repro.core.registry import fit_lut
from repro.core.scaling import InputScaler


@pytest.mark.benchmark(group="ablations")
def test_entry_count_ablation(benchmark, bench_registry):
    """16 entries are enough (paper Sec. 4.1): accuracy saturates beyond that."""

    def sweep():
        errors = {}
        grid = np.linspace(-5, 5, 2000)
        for entries in (4, 8, 16, 32):
            primitive = bench_registry.get("gelu", num_entries=entries)
            errors[entries] = float(np.mean(np.abs(primitive.lut(grid) - functions.gelu(grid))))
        return errors

    errors = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nGELU mean L1 error vs LUT entries:", {k: round(v, 5) for k, v in errors.items()})
    assert errors[16] < errors[4]
    assert errors[16] < 0.01
    # Beyond 16 entries the improvement is marginal (well under one more decade).
    assert errors[16] < 10 * errors[32]


@pytest.mark.benchmark(group="ablations")
def test_precision_ablation(benchmark, bench_registry):
    """FP16 / INT32 table quantisation barely moves the approximation error."""

    def sweep():
        primitive = bench_registry.get("gelu", num_entries=16)
        grid = np.linspace(-5, 5, 2000)
        reference = functions.gelu(grid)
        return {
            "fp32": float(np.mean(np.abs(primitive.lut(grid) - reference))),
            "fp16": float(np.mean(np.abs(quantize_lut_fp16(primitive.lut)(grid) - reference))),
            "int32": float(
                np.mean(np.abs(quantize_lut_int32(primitive.lut, (-5, 5))(grid) - reference))
            ),
        }

    errors = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nGELU mean L1 error vs table precision:", {k: round(v, 5) for k, v in errors.items()})
    assert errors["fp16"] < errors["fp32"] + 0.01
    assert errors["int32"] < errors["fp32"] + 0.001


@pytest.mark.benchmark(group="ablations")
def test_input_scaling_ablation(benchmark, bench_registry):
    """Input scaling (Sec. 3.3.2) is what makes small-variance LayerNorm work."""

    def sweep():
        primitive = bench_registry.get("rsqrt", num_entries=16)
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, 0.05, size=(64, 256))  # variance ~ 0.0025
        reference = functions.layer_norm(x)
        with_scaling = LutLayerNorm(primitive.lut, scaler=InputScaler())
        without_scaling = LutLayerNorm(primitive.lut, scaler=None)
        return {
            "with_scaling": float(np.mean(np.abs(with_scaling(x) - reference))),
            "without_scaling": float(np.mean(np.abs(without_scaling(x) - reference))),
        }

    errors = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nSmall-variance LayerNorm error:", {k: round(v, 4) for k, v in errors.items()})
    assert errors["with_scaling"] < errors["without_scaling"]
