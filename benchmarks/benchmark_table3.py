"""Table 3: MobileBERT-like / synthetic SQuAD with Softmax approximated."""

import pytest

from repro.experiments.table3 import run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_squad_softmax(benchmark, bench_registry, bench_scale):
    result = benchmark.pedantic(
        lambda: run_table3(scale=bench_scale, registry=bench_registry),
        iterations=1,
        rounds=1,
    )
    print("\n" + result.report())
    baseline = result.results["Baseline"].f1
    nn_fp32 = result.results["NN-LUT FP32"].f1
    nn_fp16 = result.results["NN-LUT FP16"].f1
    # Paper shape: NN-LUT matches the baseline in both precisions.
    assert baseline > 60.0
    assert abs(baseline - nn_fp32) < 10.0
    assert abs(nn_fp32 - nn_fp16) < 5.0
