"""Benchmark-regression harness for the vectorized inference engine.

Measures the engine's hot paths against a faithful replica of the *seed*
implementation — float64 compute, per-call weight (re)quantisation and the
un-fused double-cast LUT evaluation — and writes ``BENCH_engine.json`` so
subsequent PRs have a perf trajectory to regress against.

What "seed path" means precisely:

* every ``Linear`` re-derives its weight operand on each call
  (``cache_weights=False``), exactly as the seed's ``matmul_with_precision``
  did, with the INT8 accumulation in int64;
* the whole engine runs in float64 (``compute_dtype="float64"``);
* LUT primitives are evaluated through :class:`SeedLutEvaluator`, which
  reproduces the seed's ``LookupTable.__call__``: two float64 casts of the
  input, a ``searchsorted``, two fancy-index gathers and two temporaries.

The fast path is the current engine: float32 compute, weight operands
prepared once (I-BERT's static-weight discipline), fused
``LookupTable.evaluate`` kernels with buffer reuse.  The
``session_ragged_fp32`` row additionally compares the legacy one-forward-
per-request serving pattern against :class:`repro.api.InferenceSession`'s
dynamic micro-batching on a ragged request mix, and the
``server_concurrent_fp32`` row (schema v3) measures the concurrent serving
subsystem — a 2-replica :class:`repro.api.SessionPool` behind a
batch-coalescing :class:`repro.api.ServingQueue`, fed short-request traffic
from concurrent client threads — against the same one-forward-per-request
baseline, with a float64 bitwise-parity check vs single-session serving.
The ``server_sharded_fp32`` row (schema v4) swaps the threaded pool for a
:class:`repro.api.ShardedPool` — replicas in worker *processes* over
shared-memory weights — measuring what multi-process sharding buys over the
same per-call baseline (the row records ``cpu_count``: on a single-core
machine the number isolates IPC overhead vs batch density; the multi-core
speedup the subsystem exists for needs real cores).  Schema v5 adds
``server_sharded_shm_fp32`` — the same sharded harness with
``transport="shm_ring"``, i.e. requests/results through shared-memory rings
instead of pickle-over-pipe (rows now record ``transport``, and the queue
digest splits latency into ``mean_queue_wait_ms``/``mean_service_ms``) —
plus an ``ipc`` section from the pickle-vs-ring transport microbenchmark
(``--ipc`` runs it standalone): echo round trips at the 48-short-request
serving workload's batch shapes, isolating per-request transport overhead
with zero compute.  Schema v6 adds a ``kernels`` section — per-op
ComputeKernel rows timing the same operation through the NumpyKernel
reference and (when the compiler seam is available) the compiled
NativeKernel: true int8 GEMM vs the float64-carrier linear path, packed
quantisation, the fused LUT epilogues vs their unfused numpy sequences, and
an int8 encoder forward per kernel with a bitwise-parity check
(``--kernels`` runs just this section, no multiprocessing involved).
Schema v7 adds ``server_sharded_leastloaded_fp32`` — the sharded pool behind
the queue's ``router="least_loaded"`` scheduling, fed a seeded trace replay
(bursty arrivals, diurnal ramp, heavy-tailed lengths; see
``benchmarks/traces.py``) instead of steady all-at-once traffic, with the
latency digest split into inside-burst vs steady-state percentiles (the
p99-under-burst number load-aware routing exists for) and the same float64
bitwise-parity check vs per-call serving.
Schema v8 adds ``server_sharded_chaos_fp32`` — the same trace replayed twice
against the retrying queue (``RetryPolicy`` + per-replica circuit breakers),
once fault-free and once under a seeded ``FaultPlan`` that crashes a worker
on its first served batch: the row reports ``goodput_ratio`` (chaos vs clean
completed requests per second), ``p99_degradation_x`` for the tail stretch
while the survivor absorbs rerouted work, the retry/breaker/retirement
counters, and a float64 twin proving retried responses stay bitwise-equal to
per-call serving (the retry-idempotency contract).

Run directly to regenerate the report (or use ``scripts/bench.sh``)::

    PYTHONPATH=src python benchmarks/regression.py --mode full

Smoke mode (tiny shapes, used by the tier-1 test run via
``benchmarks/benchmark_engine.py``) exercises every code path in well under a
second without touching ``BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import sys
import threading
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import traces  # noqa: E402  (benchmarks/ is not a package)

from repro.api import (
    BackendSpec,
    FaultPlan,
    InferenceSession,
    RequestBatcher,
    RetryPolicy,
    ServingQueue,
    SessionPool,
    ShardedPool,
    build_backend,
    inject,
)
from repro.api.transport import (
    _shutdown_echo_worker,
    _spawn_echo_worker,
    serving_ring_bytes,
)
from repro.core.approximators import LutGelu, LutLayerNorm
from repro.core.kernels import (
    get_kernel,
    native_available,
    native_unavailable_reason,
)
from repro.core.lut import LookupTable
from repro.core.registry import LutRegistry
from repro.core.scaling import InputScaler
from repro.core.training import TrainingConfig
from repro.transformer import (
    EncoderModel,
    Linear,
    TransformerConfig,
    backend_from_luts,
)

SCHEMA_VERSION = 8

#: Default report location: the repository root (next to ROADMAP.md).
DEFAULT_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Cheap-but-real fitting configuration (table *quality* is irrelevant for
#: timing; 16-entry structure is what matters).
BENCH_TRAINING_CONFIG = TrainingConfig(
    hidden_size=15,
    num_samples=12_000,
    batch_size=2048,
    epochs=40,
    learning_rate=1e-3,
    seed=0,
    num_restarts=1,
)


@dataclass(frozen=True)
class EngineShapes:
    """Shapes of the end-to-end encoder-forward benchmark."""

    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    sequence_length: int
    batch_size: int
    vocab_size: int
    #: element count for the per-op LUT kernel timings
    lut_elements: int
    #: timing repeats (min is reported)
    repeats: int

    @property
    def tokens(self) -> int:
        return self.batch_size * self.sequence_length


#: BERT-base layer geometry, batched sequences.
FULL_SHAPES = EngineShapes(
    hidden_size=768,
    num_layers=12,
    num_heads=12,
    intermediate_size=3072,
    sequence_length=128,
    batch_size=4,
    vocab_size=4000,
    lut_elements=2_000_000,
    repeats=3,
)

#: INT8 runs the seed accumulation in int64 (no BLAS), so its end-to-end row
#: uses a reduced depth to keep the regeneration under a minute.
FULL_INT8_SHAPES = replace(FULL_SHAPES, num_layers=2, sequence_length=64, batch_size=2)

SMOKE_SHAPES = EngineShapes(
    hidden_size=64,
    num_layers=2,
    num_heads=2,
    intermediate_size=128,
    sequence_length=16,
    batch_size=2,
    vocab_size=200,
    lut_elements=10_000,
    repeats=1,
)


# --------------------------------------------------------------------------- #
# Seed-path replicas (verbatim ports of the seed implementations)
# --------------------------------------------------------------------------- #
class SeedLutEvaluator:
    """The seed's ``LookupTable.__call__``: double cast, un-fused gathers.

    Deliberately does *not* expose ``evaluate``, so nothing downstream can
    accidentally route it through the fused kernel.
    """

    def __init__(self, lut: LookupTable) -> None:
        self._lut = lut
        self.name = lut.name

    def __call__(self, x: np.ndarray) -> np.ndarray:
        lut = self._lut
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(lut.breakpoints, np.asarray(x, dtype=np.float64), side="right")
        return lut.slopes[idx] * x + lut.intercepts[idx]


class SeedLutGelu:
    """The seed's ``LutGelu``: float64 casts and fresh ``np.where`` arrays."""

    def __init__(self, gelu_approx, clip_range=(-5.0, 5.0)) -> None:
        self.gelu_approx = gelu_approx
        self.clip_range = clip_range

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        low, high = self.clip_range
        inside = np.clip(x, low, high)
        approx = np.asarray(self.gelu_approx(inside))
        result = np.where(x > high, x, approx)
        result = np.where(x < low, 0.0, result)
        return result


class SeedLutSoftmax:
    """The seed's ``LutSoftmax``: float64 compute, a temporary per step."""

    def __init__(self, exp_approx, reciprocal_approx, exp_clip=-256.0, axis=-1) -> None:
        self.exp_approx = exp_approx
        self.reciprocal_approx = reciprocal_approx
        self.exp_clip = exp_clip
        self.axis = axis

    def __call__(self, x: np.ndarray, axis: int | None = None) -> np.ndarray:
        axis = self.axis if axis is None else axis
        x = np.asarray(x, dtype=np.float64)
        shifted = x - np.max(x, axis=axis, keepdims=True)
        shifted = np.clip(shifted, self.exp_clip, 0.0)
        exps = np.asarray(self.exp_approx(shifted), dtype=np.float64)
        exps = np.maximum(exps, 0.0)
        denom = np.sum(exps, axis=axis, keepdims=True)
        denom = np.maximum(denom, 1e-12)
        inv = np.asarray(self.reciprocal_approx(denom), dtype=np.float64)
        inv = np.maximum(inv, 0.0)
        return exps * inv


class SeedLutLayerNorm:
    """The seed's ``LutLayerNorm`` incl. its ``InputScaler.apply`` replica."""

    def __init__(self, rsqrt_approx, scale_bits=10, threshold=1.0, eps=1e-5,
                 axis=-1, clip_max=1024.0) -> None:
        self.rsqrt_approx = rsqrt_approx
        self.scale = float(2**scale_bits)
        self.output_scale = float(np.sqrt(self.scale))
        self.threshold = threshold
        self.eps = eps
        self.axis = axis
        self.clip_max = clip_max

    def _rsqrt(self, variance: np.ndarray) -> np.ndarray:
        variance = np.asarray(variance, dtype=np.float64)
        if self.clip_max is not None:
            variance = np.minimum(variance, self.clip_max)
        small = variance < self.threshold
        scaled_input = np.where(small, variance * self.scale, variance)
        raw = np.asarray(self.rsqrt_approx(scaled_input), dtype=np.float64)
        return np.where(small, raw * self.output_scale, raw)

    def __call__(self, x, gamma=None, beta=None, axis=None) -> np.ndarray:
        axis = self.axis if axis is None else axis
        x = np.asarray(x, dtype=np.float64)
        mean = np.mean(x, axis=axis, keepdims=True)
        var = np.mean((x - mean) ** 2, axis=axis, keepdims=True)
        inv_std = self._rsqrt(var + self.eps)
        normalised = (x - mean) * inv_std
        if gamma is not None:
            normalised = normalised * gamma
        if beta is not None:
            normalised = normalised + beta
        return normalised


def seed_nn_lut_backend(registry: LutRegistry, num_entries: int = 16):
    """NN-LUT backend evaluating entirely through the seed-path replicas."""
    luts = {
        name: SeedLutEvaluator(registry.lut(name, num_entries=num_entries))
        for name in ("gelu", "exp", "reciprocal", "rsqrt")
    }
    backend = backend_from_luts(luts, name="nn-lut-fp32-seed")
    backend.gelu = SeedLutGelu(luts["gelu"])
    backend.softmax = SeedLutSoftmax(luts["exp"], luts["reciprocal"])
    backend.layernorm = SeedLutLayerNorm(luts["rsqrt"])
    return backend


def build_fast_backend(registry: LutRegistry, kernel: str = "numpy") -> object:
    """The engine's fast path, declared through the serving API."""
    return build_backend(BackendSpec.nn_lut(kernel=kernel), registry=registry)


def build_engine(
    shapes: EngineShapes,
    matmul_precision: str = "fp32",
    compute_dtype: str = "float32",
    cache_weights: bool = True,
    seed: int = 0,
    kernel: str = "numpy",
) -> EncoderModel:
    """Encoder model in the requested engine configuration.

    Models built with the same ``seed`` share identical weights regardless of
    engine configuration, so seed/fast timings compare the same network.
    """
    config = TransformerConfig(
        hidden_size=shapes.hidden_size,
        num_layers=shapes.num_layers,
        num_heads=shapes.num_heads,
        intermediate_size=shapes.intermediate_size,
        max_sequence_length=shapes.sequence_length,
        vocab_size=shapes.vocab_size,
        matmul_precision=matmul_precision,
        compute_dtype=compute_dtype,
        kernel=kernel,
        name=f"bench-{matmul_precision}-{compute_dtype}",
    )
    model = EncoderModel.initialize(config, seed=seed)
    if not cache_weights:
        for linear in model.iter_linears():
            linear.cache_weights = False
    return model


# --------------------------------------------------------------------------- #
# Timing
# --------------------------------------------------------------------------- #
def time_call(fn: Callable[[], object], repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn`` after ``warmup`` calls."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _op_row(seed_s: float, fast_s: float) -> Dict[str, float]:
    return {
        "seed_s": seed_s,
        "fast_s": fast_s,
        "speedup": seed_s / fast_s if fast_s > 0 else float("inf"),
    }


def benchmark_ops(registry: LutRegistry, shapes: EngineShapes) -> Dict[str, Dict[str, float]]:
    """Per-op timings: LUT kernels, softmax/layernorm composites, linears."""
    rng = np.random.default_rng(0)
    repeats = shapes.repeats
    ops: Dict[str, Dict[str, float]] = {}

    gelu_lut = registry.lut("gelu", num_entries=16)
    seed_gelu = SeedLutEvaluator(gelu_lut)
    x64 = rng.uniform(-5.0, 5.0, size=shapes.lut_elements)
    x32 = x64.astype(np.float32)
    out32 = np.empty_like(x32)
    ops["lut_gelu_eval"] = _op_row(
        time_call(lambda: seed_gelu(x64), repeats),
        time_call(lambda: gelu_lut.evaluate(x32, out=out32), repeats),
    )

    seed_backend = seed_nn_lut_backend(registry)
    fast_backend = build_fast_backend(registry)
    scores = rng.normal(
        size=(shapes.batch_size, shapes.num_heads, shapes.sequence_length, shapes.sequence_length)
    )
    scores32 = scores.astype(np.float32)
    ops["lut_softmax"] = _op_row(
        time_call(lambda: seed_backend.apply_softmax(scores), repeats),
        time_call(lambda: fast_backend.apply_softmax(scores32), repeats),
    )

    hidden = rng.normal(size=(shapes.batch_size, shapes.sequence_length, shapes.hidden_size))
    hidden32 = hidden.astype(np.float32)
    gamma = rng.normal(1.0, 0.05, size=shapes.hidden_size)
    beta = rng.normal(0.0, 0.05, size=shapes.hidden_size)
    gamma32, beta32 = gamma.astype(np.float32), beta.astype(np.float32)
    ops["lut_layernorm"] = _op_row(
        time_call(lambda: seed_backend.apply_layernorm(hidden, gamma=gamma, beta=beta), repeats),
        time_call(
            lambda: fast_backend.apply_layernorm(hidden32, gamma=gamma32, beta=beta32), repeats
        ),
    )

    tokens2d = rng.normal(size=(shapes.tokens, shapes.hidden_size))
    tokens2d32 = tokens2d.astype(np.float32)
    for precision in ("fp32", "int8"):
        seed_linear = Linear.initialize(
            shapes.hidden_size,
            shapes.intermediate_size,
            np.random.default_rng(1),
            precision=precision,
            compute_dtype="float64",
            cache_weights=False,
        )
        fast_linear = Linear.initialize(
            shapes.hidden_size,
            shapes.intermediate_size,
            np.random.default_rng(1),
            precision=precision,
            compute_dtype="float32",
        )
        ops[f"linear_{precision}"] = _op_row(
            time_call(lambda: seed_linear(tokens2d), repeats),
            time_call(lambda: fast_linear(tokens2d32), repeats),
        )
    return ops


def benchmark_kernels(
    registry: LutRegistry,
    shapes: EngineShapes,
    int8_shapes: EngineShapes | None = None,
) -> Dict[str, object]:
    """Per-op ComputeKernel rows: NumpyKernel vs compiled NativeKernel.

    Every row times the same operation through each available kernel on
    identical inputs.  Fused epilogues clobber their input, so those timed
    calls include one defensive copy for *both* kernels — speedups compare
    like with like.  Two rows carry the acceptance gates:

    * ``gemm_int8`` — NativeKernel's true int8 GEMM (int32 accumulation)
      against the NumpyKernel float64-carrier linear path, including the
      activation quantise/pack and the dequantise+bias epilogue;
    * ``lut_gelu_bias`` — the fused bias+LUT-GELU epilogue against the
      engine's original unfused bias-add + LUT sequence (the numpy row *is*
      the unfused path, so this row doubles as fused-vs-unfused).

    The ``encoder_forward_int8`` row runs a full int8 encoder forward per
    kernel and records bitwise parity between them.  No multiprocessing, no
    pickling — safe to run standalone via ``regression.py --kernels``.
    """
    rng = np.random.default_rng(21)
    repeats = shapes.repeats
    int8_shapes = int8_shapes or shapes
    names = ["numpy"] + (["native"] if native_available() else [])
    kernels = {name: get_kernel(name) for name in names}

    section: Dict[str, object] = {
        "native_available": native_available(),
        "kernels": names,
    }
    if not native_available():
        section["native_unavailable_reason"] = native_unavailable_reason()
    else:
        native = kernels["native"]
        section["gemm_impl"] = native.gemm_impl  # 2 = VNNI dot-product GEMM
        section["num_threads"] = native.num_threads

    tokens, hidden = shapes.tokens, shapes.hidden_size
    inter = shapes.intermediate_size
    x32 = rng.normal(size=(tokens, hidden)).astype(np.float32)
    w32 = rng.normal(scale=0.02, size=(hidden, hidden)).astype(np.float32)
    w_q = rng.integers(-127, 128, size=(hidden, hidden), dtype=np.int8)
    weight_scale = 0.01
    bias_h = rng.normal(scale=0.02, size=hidden).astype(np.float32)
    bias_i = rng.normal(scale=0.02, size=inter).astype(np.float32)
    gelu_in = rng.normal(size=(tokens, inter)).astype(np.float32)
    residual = rng.normal(size=(tokens, hidden)).astype(np.float32)
    hidden3d = rng.normal(
        size=(shapes.batch_size, shapes.sequence_length, hidden)
    ).astype(np.float32)
    gamma = rng.normal(1.0, 0.05, size=hidden).astype(np.float32)
    beta = rng.normal(0.0, 0.05, size=hidden).astype(np.float32)

    gelu_op = LutGelu(registry.lut("gelu", num_entries=16))
    layernorm_op = LutLayerNorm(
        registry.lut("rsqrt", num_entries=16), scaler=InputScaler()
    )
    packed = {name: kernel.pack_weight_int8(w_q) for name, kernel in kernels.items()}

    def per_kernel(make_call) -> Dict[str, object]:
        row: Dict[str, object] = {}
        for name, kernel in kernels.items():
            row[f"{name}_s"] = time_call(make_call(name, kernel), repeats)
        if "native_s" in row:
            row["speedup"] = row["numpy_s"] / row["native_s"]
        return row

    ops: Dict[str, Dict[str, object]] = {}
    ops["gemm_int8"] = per_kernel(
        lambda name, kernel: lambda: kernel.linear_int8(
            x32, packed[name], weight_scale, np.float32, bias=bias_h
        )
    )
    ops["gemm_fp32"] = per_kernel(
        lambda name, kernel: lambda: kernel.matmul_fp32(
            x32, w32, np.float32, bias=bias_h
        )
    )
    ops["quantize_pack"] = per_kernel(
        lambda name, kernel: lambda: kernel.quantize_pack(
            x32, kernel.quantize_scale(x32)
        )
    )
    ops["lut_gelu_bias"] = per_kernel(
        lambda name, kernel: lambda: kernel.lut_gelu_bias(
            gelu_op, gelu_in.copy(), bias_i
        )
    )
    ops["lut_layernorm"] = per_kernel(
        lambda name, kernel: lambda: kernel.lut_layernorm(
            layernorm_op, hidden3d.copy(), gamma, beta
        )
    )
    ops["bias_residual"] = per_kernel(
        lambda name, kernel: lambda: kernel.bias_residual(
            x32.copy(), bias_h, residual
        )
    )

    forward_tokens = np.random.default_rng(22).integers(
        0,
        int8_shapes.vocab_size,
        size=(int8_shapes.batch_size, int8_shapes.sequence_length),
    )
    forward_row: Dict[str, object] = {}
    outputs: Dict[str, np.ndarray] = {}
    for name in kernels:
        model = build_engine(
            int8_shapes, "int8", compute_dtype="float32", kernel=name
        )
        backend = build_fast_backend(registry, kernel=name)
        forward_row[f"{name}_s"] = time_call(
            lambda m=model, b=backend: m.forward(forward_tokens, backend=b), repeats
        )
        outputs[name] = model.forward(forward_tokens, backend=backend)
    if "native_s" in forward_row:
        forward_row["speedup"] = forward_row["numpy_s"] / forward_row["native_s"]
        forward_row["bitwise_equal_vs_numpy"] = bool(
            np.array_equal(outputs["numpy"], outputs["native"], equal_nan=True)
        )
    ops["encoder_forward_int8"] = forward_row

    section["ops"] = ops
    return section


def benchmark_end_to_end(
    registry: LutRegistry,
    shapes: EngineShapes,
    matmul_precision: str = "fp32",
    check_equivalence: bool = True,
) -> Dict[str, object]:
    """End-to-end encoder forward: seed path vs fast path, same weights."""
    rng = np.random.default_rng(7)
    tokens = rng.integers(0, shapes.vocab_size, size=(shapes.batch_size, shapes.sequence_length))

    seed_model = build_engine(
        shapes, matmul_precision, compute_dtype="float64", cache_weights=False
    )
    fast_model = build_engine(shapes, matmul_precision, compute_dtype="float32")
    seed_backend = seed_nn_lut_backend(registry)
    fast_backend = build_fast_backend(registry)

    seed_s = time_call(lambda: seed_model.forward(tokens, backend=seed_backend), shapes.repeats)
    fast_s = time_call(lambda: fast_model.forward(tokens, backend=fast_backend), shapes.repeats)

    row: Dict[str, object] = {
        "shape": asdict(shapes),
        **_op_row(seed_s, fast_s),
        "tokens_per_s_seed": shapes.tokens / seed_s,
        "tokens_per_s_fast": shapes.tokens / fast_s,
    }
    if check_equivalence:
        # The cached float64 engine with the fused kernels must reproduce the
        # full seed path (uncached weights AND seed-replica LUT composites)
        # bit for bit; the float32 engine is reported as a max-abs deviation.
        compat_model = build_engine(shapes, matmul_precision, compute_dtype="float64")
        reference = seed_model.forward(tokens, backend=seed_backend)
        compat = compat_model.forward(tokens, backend=fast_backend)
        fast = fast_model.forward(tokens, backend=fast_backend)
        row["cached_float64_bitwise_equal"] = bool(np.array_equal(reference, compat))
        row["float32_max_abs_diff"] = float(np.max(np.abs(fast - reference)))
    return row


def ragged_request_lengths(shapes: EngineShapes, num_requests: int) -> List[int]:
    """A serving-like ragged workload: few distinct lengths, with repeats."""
    rng = np.random.default_rng(11)
    seq = shapes.sequence_length
    candidates = sorted({max(8, seq // 4), max(8, seq // 2), seq})
    return [int(length) for length in rng.choice(candidates, size=num_requests)]


def benchmark_session_ragged(
    registry: LutRegistry,
    shapes: EngineShapes,
    num_requests: int = 12,
    check_equivalence: bool = True,
) -> Dict[str, object]:
    """Ragged-request serving: per-call loop vs InferenceSession micro-batching.

    The "seed" path here is the legacy serving pattern — one ``model.forward``
    per request — and the fast path is :class:`repro.api.InferenceSession`
    with length-bucketed dynamic micro-batching over the same fast engine, so
    the speedup isolates what batching itself buys.
    """
    rng = np.random.default_rng(12)
    lengths = ragged_request_lengths(shapes, num_requests)
    requests = [rng.integers(0, shapes.vocab_size, size=length) for length in lengths]
    total_tokens = int(sum(lengths))

    model = build_engine(shapes, "fp32", compute_dtype="float32")
    spec = BackendSpec.nn_lut()
    session = InferenceSession.from_model(
        model, spec=spec, registry=registry, max_batch_size=shapes.batch_size * 4
    )

    def per_call() -> None:
        for request in requests:
            model.forward(request[None, :], backend=session.backend)

    seed_s = time_call(per_call, shapes.repeats)
    fast_s = time_call(lambda: session.forward(requests), shapes.repeats)

    row: Dict[str, object] = {
        "shape": asdict(shapes),
        "num_requests": num_requests,
        "total_tokens": total_tokens,
        **_op_row(seed_s, fast_s),
        "tokens_per_s_seed": total_tokens / seed_s,
        "tokens_per_s_fast": total_tokens / fast_s,
    }
    if check_equivalence:
        # Under the float64 engine the micro-batched session must reproduce
        # the per-call outputs bit for bit (exact-length bucketing: no
        # padding enters the computation); the float32 engine is reported as
        # a max-abs deviation between the batched and per-call paths.
        model64 = build_engine(shapes, "fp32", compute_dtype="float64")
        session64 = InferenceSession.from_model(model64, spec=spec, registry=registry)
        batched64 = session64.forward(requests)
        bitwise = all(
            np.array_equal(
                model64.forward(request[None, :], backend=session64.backend)[0],
                batched64[i],
            )
            for i, request in enumerate(requests)
        )
        batched32 = session.forward(requests)
        diff32 = max(
            float(
                np.max(
                    np.abs(
                        model.forward(request[None, :], backend=session.backend)[0]
                        - batched32[i]
                    )
                )
            )
            for i, request in enumerate(requests)
        )
        row["cached_float64_bitwise_equal"] = bool(bitwise)
        row["float32_max_abs_diff"] = diff32
    return row


def server_request_lengths(shapes: EngineShapes, num_requests: int) -> List[int]:
    """Short-request serving traffic: the regime batched scheduling targets.

    Interactive serving is dominated by short sequences (queries, snippets),
    where the per-request fixed cost — small under-utilised GEMMs plus the
    Python operator overhead of a depth-``num_layers`` forward — is exactly
    what cross-caller batch coalescing amortises.
    """
    rng = np.random.default_rng(13)
    seq = shapes.sequence_length
    candidates = sorted({max(2, seq // 16), max(2, 3 * seq // 32), max(2, seq // 8)})
    return [int(length) for length in rng.choice(candidates, size=num_requests)]


def _concurrent_clients(
    queue: ServingQueue, requests: List[np.ndarray], num_clients: int
) -> List[np.ndarray]:
    """Submit ``requests`` from ``num_clients`` threads; results in order."""
    futures: List[List] = [[] for _ in range(num_clients)]
    errors: List[BaseException] = []
    shards = [list(range(c, len(requests), num_clients)) for c in range(num_clients)]

    def client(c: int) -> None:
        try:
            futures[c] = [queue.submit(requests[i]) for i in shards[c]]
        except BaseException as exc:  # surface, don't silently drop results
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    outputs: List[np.ndarray] = [None] * len(requests)  # type: ignore[list-item]
    for c, shard in enumerate(shards):
        for future, i in zip(futures[c], shard):
            outputs[i] = future.result(600)
    return outputs


def _close_pool(pool) -> None:
    """Close a pool if its kind needs closing (ShardedPool does)."""
    close = getattr(pool, "close", None)
    if callable(close):
        close()


def _benchmark_pool_serving(
    shapes: EngineShapes,
    make_pool,
    num_requests: int,
    num_replicas: int,
    check_equivalence: bool,
) -> Dict[str, object]:
    """Shared harness: per-call loop vs a replica pool behind a ServingQueue.

    ``make_pool(model)`` builds the pool under test over the given engine
    model (any :class:`repro.api.ReplicaPool`); its ``template`` backend
    doubles as the per-call oracle.  The "seed" path is the naive serving
    loop — one ``model.forward`` per request as traffic arrives — and the
    fast path runs the same requests through the batch-coalescing scheduler
    from concurrent client threads.  The float64 twin of the pool must
    reproduce per-call serving bit for bit (exact-length bucketing +
    identical replicas); float32 is reported as a max-abs deviation.
    """
    rng = np.random.default_rng(14)
    lengths = server_request_lengths(shapes, num_requests)
    requests = [rng.integers(0, shapes.vocab_size, size=length) for length in lengths]
    total_tokens = int(sum(lengths))
    num_clients = min(8, num_requests)

    model = build_engine(shapes, "fp32", compute_dtype="float32")
    pool = make_pool(model)
    try:
        baseline_backend = pool.template.backend

        def per_call() -> None:
            for request in requests:
                model.forward(request[None, :], backend=baseline_backend)

        seed_s = time_call(per_call, shapes.repeats)
        with ServingQueue(
            pool, max_wait_ms=10.0, max_queue_depth=4 * num_requests
        ) as queue:
            fast_s = time_call(
                lambda: _concurrent_clients(queue, requests, num_clients),
                shapes.repeats,
            )
            stats = queue.stats()

        row: Dict[str, object] = {
            "shape": asdict(shapes),
            "num_requests": num_requests,
            "num_replicas": num_replicas,
            "num_clients": num_clients,
            "total_tokens": total_tokens,
            **_op_row(seed_s, fast_s),
            "tokens_per_s_seed": total_tokens / seed_s,
            "tokens_per_s_fast": total_tokens / fast_s,
            "queue": {
                "mean_batch_size": stats.mean_batch_size,
                "p50_latency_ms": stats.p50_latency_ms,
                "p99_latency_ms": stats.p99_latency_ms,
                "mean_queue_wait_ms": stats.mean_queue_wait_ms,
                "mean_service_ms": stats.mean_service_ms,
                "completed": stats.completed,
                "rejected": stats.rejected,
                "expired": stats.expired,
            },
        }
        if check_equivalence:
            model64 = build_engine(shapes, "fp32", compute_dtype="float64")
            pool64 = make_pool(model64)
            try:
                with ServingQueue(pool64, max_wait_ms=10.0) as queue64:
                    served64 = _concurrent_clients(queue64, requests, num_clients)
                oracle64 = pool64.template.backend
                bitwise = all(
                    np.array_equal(
                        model64.forward(request[None, :], backend=oracle64)[0],
                        served64[i],
                    )
                    for i, request in enumerate(requests)
                )
            finally:
                _close_pool(pool64)
            with ServingQueue(pool, max_wait_ms=10.0) as queue32:
                served32 = _concurrent_clients(queue32, requests, num_clients)
            diff32 = max(
                float(
                    np.max(
                        np.abs(
                            model.forward(
                                request[None, :], backend=baseline_backend
                            )[0]
                            - served32[i]
                        )
                    )
                )
                for i, request in enumerate(requests)
            )
            row["cached_float64_bitwise_equal"] = bool(bitwise)
            row["float32_max_abs_diff"] = diff32
        return row
    finally:
        _close_pool(pool)


def benchmark_server_concurrent(
    registry: LutRegistry,
    shapes: EngineShapes,
    num_requests: int = 48,
    num_replicas: int = 2,
    check_equivalence: bool = True,
) -> Dict[str, object]:
    """Concurrent serving: per-call loop vs SessionPool + ServingQueue.

    The ROADMAP's "batched multi-sequence scheduling": replica threads over
    one shared frozen encoder behind the coalescing scheduler (see
    :func:`_benchmark_pool_serving` for the harness and parity contract).
    """
    return _benchmark_pool_serving(
        shapes,
        lambda model: SessionPool.from_model(
            model, spec=BackendSpec.nn_lut(), registry=registry,
            num_replicas=num_replicas, max_batch_size=16,
        ),
        num_requests=num_requests,
        num_replicas=num_replicas,
        check_equivalence=check_equivalence,
    )


def benchmark_server_sharded(
    registry: LutRegistry,
    shapes: EngineShapes,
    num_requests: int = 48,
    num_replicas: int = 2,
    check_equivalence: bool = True,
    transport: str = "pipe",
) -> Dict[str, object]:
    """Multi-process sharded serving: per-call loop vs ShardedPool + queue.

    Same harness as ``benchmark_server_concurrent`` (one shared
    :func:`_benchmark_pool_serving`, same traffic), but the replicas live in
    worker *processes* over shared-memory weights, so on a multi-core machine
    the forwards themselves (not just the BLAS inner loops) run in parallel.
    The row records ``cpu_count`` so the speedup can be read in context: on
    one core it isolates the IPC overhead the process boundary adds — and
    ``transport`` selects how requests/results cross that boundary
    (``"pipe"`` = pickle, ``"shm_ring"`` = shared-memory rings; the
    ``server_sharded_shm_fp32`` row is this benchmark at ``"shm_ring"``).
    """
    row = _benchmark_pool_serving(
        shapes,
        lambda model: ShardedPool.from_model(
            model, spec=BackendSpec.nn_lut(), registry=registry,
            num_replicas=num_replicas, max_batch_size=16, transport=transport,
        ),
        num_requests=num_requests,
        num_replicas=num_replicas,
        check_equivalence=check_equivalence,
    )
    row["cpu_count"] = os.cpu_count()
    row["transport"] = transport
    return row


def benchmark_server_trace_leastloaded(
    registry: LutRegistry,
    shapes: EngineShapes,
    num_requests: int = 48,
    num_replicas: int = 2,
    duration_s: float = 0.3,
    check_equivalence: bool = True,
) -> Dict[str, object]:
    """Least-loaded routing under a bursty trace replay (schema v7).

    Unlike the steady all-at-once traffic of the other serving rows, this
    one replays a seeded trace — bursty arrivals over a diurnal ramp with
    heavy-tailed request lengths (see :mod:`traces`) — against a sharded
    pool behind ``router="least_loaded"``, and digests latency separately
    for requests that arrived *inside* a burst window vs steady state.
    The p99-under-burst is the number load-aware routing exists to hold
    down: round-robin placement lets a burst queue behind whichever replica
    the rotation happens to point at, while least-loaded placement (plus
    work stealing) spreads it by actual queued cost.

    The seed path is the same naive per-call loop as every serving row, and
    the float64 twin replays routing-equivalence: least-loaded placement
    must reproduce per-call serving bit for bit (replica identity never
    changes results), even though *which* replica served each request is
    timing-dependent.
    """
    trace = traces.generate_trace(
        traces.TraceConfig(
            num_requests=num_requests,
            duration_s=duration_s,
            seed=16,
            min_length=2,
            max_length=shapes.sequence_length,
            vocab_size=shapes.vocab_size,
        )
    )
    requests = list(trace.requests)
    model = build_engine(shapes, "fp32", compute_dtype="float32")
    pool = ShardedPool.from_model(
        model, spec=BackendSpec.nn_lut(), registry=registry,
        num_replicas=num_replicas, max_batch_size=16,
    )
    try:
        baseline_backend = pool.template.backend

        def per_call() -> None:
            for request in requests:
                model.forward(request[None, :], backend=baseline_backend)

        seed_s = time_call(per_call, shapes.repeats)
        with ServingQueue(
            pool, max_wait_ms=2.0, max_queue_depth=4 * num_requests,
            router="least_loaded",
        ) as queue:
            replayed = traces.replay(queue, trace, keep_results=False)
            stats = queue.stats()
        fast_s = replayed.elapsed_s

        row: Dict[str, object] = {
            "shape": asdict(shapes),
            "trace": traces.trace_row(trace),
            "num_requests": num_requests,
            "num_replicas": num_replicas,
            "router": "least_loaded",
            "transport": pool.transport_name,
            "cpu_count": os.cpu_count(),
            "total_tokens": trace.total_tokens,
            **_op_row(seed_s, fast_s),
            "tokens_per_s_seed": trace.total_tokens / seed_s,
            "tokens_per_s_fast": trace.total_tokens / fast_s,
            "latency": traces.burst_digest(replayed),
            "queue": {
                "mean_batch_size": stats.mean_batch_size,
                "p50_latency_ms": stats.p50_latency_ms,
                "p99_latency_ms": stats.p99_latency_ms,
                "mean_queue_wait_ms": stats.mean_queue_wait_ms,
                "mean_service_ms": stats.mean_service_ms,
                "completed": stats.completed,
                "rejected": stats.rejected,
                "expired": stats.expired,
                "stolen": sum(replica.stolen for replica in stats.replicas),
            },
        }
        if check_equivalence:
            model64 = build_engine(shapes, "fp32", compute_dtype="float64")
            pool64 = ShardedPool.from_model(
                model64, spec=BackendSpec.nn_lut(), registry=registry,
                num_replicas=num_replicas, max_batch_size=16,
            )
            try:
                with ServingQueue(
                    pool64, max_wait_ms=2.0, router="least_loaded"
                ) as queue64:
                    served64 = queue64.serve(requests, timeout=600)
                oracle64 = pool64.template.backend
                bitwise = all(
                    np.array_equal(
                        model64.forward(request[None, :], backend=oracle64)[0],
                        served64[i],
                    )
                    for i, request in enumerate(requests)
                )
            finally:
                _close_pool(pool64)
            row["cached_float64_bitwise_equal"] = bool(bitwise)
        return row
    finally:
        _close_pool(pool)


def benchmark_server_chaos(
    registry: LutRegistry,
    shapes: EngineShapes,
    num_requests: int = 48,
    num_replicas: int = 2,
    duration_s: float = 0.3,
    check_equivalence: bool = True,
) -> Dict[str, object]:
    """Goodput and tail latency under an injected worker crash (schema v8).

    Replays the same seeded trace twice against a sharded pool behind the
    retrying queue — identical queue configuration both times, only the
    fault plan differs.  The clean pass establishes the fault-free
    baseline; the chaos pass arms a :class:`FaultPlan` that hard-kills
    worker 0 (``os._exit``) on its first served batch, so the retry policy
    must re-route the orphaned batch and the fleet must retire the corpse
    while traffic keeps arriving.  The row reports what resilience
    actually buys: ``goodput_ratio`` (completed requests per second, chaos
    vs clean) and ``p99_degradation_x`` (how far the tail stretches while
    the survivor absorbs rerouted work), plus the retry/breaker/retirement
    counters.

    The float64 twin replays the *chaos* scenario and requires every
    successful response — including the retried ones — to be bitwise
    identical to per-call serving: re-dispatching a batch to a different
    replica must never change results (the retry-idempotency contract).
    """
    trace = traces.generate_trace(
        traces.TraceConfig(
            num_requests=num_requests,
            duration_s=duration_s,
            seed=17,
            min_length=2,
            max_length=shapes.sequence_length,
            vocab_size=shapes.vocab_size,
        )
    )
    plan = FaultPlan(seed=17, worker_crash_at=1, crash_worker_index=0)
    retry = RetryPolicy(
        max_attempts=3, backoff_base_s=0.005, backoff_max_s=0.05
    )
    model = build_engine(shapes, "fp32", compute_dtype="float32")

    def _replay_once():
        pool = ShardedPool.from_model(
            model, spec=BackendSpec.nn_lut(), registry=registry,
            num_replicas=num_replicas, max_batch_size=16,
        )
        try:
            transport_name = pool.transport_name
            with ServingQueue(
                pool, max_wait_ms=2.0, max_queue_depth=4 * num_requests,
                router="least_loaded", retry=retry,
            ) as queue:
                replayed = traces.replay(queue, trace, keep_results=False)
                stats = queue.stats()
        finally:
            _close_pool(pool)
        return replayed, stats, transport_name

    def _run_row(replayed, stats) -> Dict[str, object]:
        digest = traces.burst_digest(replayed)
        return {
            "elapsed_s": replayed.elapsed_s,
            "completed": replayed.completed,
            "failed": replayed.failed,
            "goodput_rps": replayed.completed / replayed.elapsed_s,
            "p50_ms": digest["all"]["p50_ms"],
            "p99_ms": digest["all"]["p99_ms"],
            "retry_attempts": stats.retry_attempts,
            "retried_requests": stats.retried_requests,
            "breaker_opens": stats.breaker_opens,
            "breaker_closes": stats.breaker_closes,
            "integrity_failures": stats.integrity_failures,
            "expired_in_flight": stats.expired_in_flight,
            "replicas_retired": stats.replicas_retired,
        }

    clean, clean_stats, transport_name = _replay_once()
    # The injector must be live while the pool *spawns*: worker-side
    # faults ship with the worker init message, not per request.
    with inject(plan):
        chaos, chaos_stats, _ = _replay_once()

    clean_row = _run_row(clean, clean_stats)
    chaos_row = _run_row(chaos, chaos_stats)
    clean_p99 = clean_row["p99_ms"]
    row: Dict[str, object] = {
        "shape": asdict(shapes),
        "trace": traces.trace_row(trace),
        "num_requests": num_requests,
        "num_replicas": num_replicas,
        "router": "least_loaded",
        "transport": transport_name,
        "cpu_count": os.cpu_count(),
        "fault_plan": asdict(plan),
        "retry": asdict(retry),
        "clean": clean_row,
        "chaos": chaos_row,
        "goodput_ratio": (
            chaos_row["goodput_rps"] / clean_row["goodput_rps"]
            if clean_row["goodput_rps"] > 0 else 0.0
        ),
        "p99_degradation_x": (
            chaos_row["p99_ms"] / clean_p99 if clean_p99 > 0 else 0.0
        ),
    }
    if check_equivalence:
        model64 = build_engine(shapes, "fp32", compute_dtype="float64")
        with inject(plan):
            pool64 = ShardedPool.from_model(
                model64, spec=BackendSpec.nn_lut(), registry=registry,
                num_replicas=num_replicas, max_batch_size=16,
            )
            try:
                with ServingQueue(
                    pool64, max_wait_ms=2.0, router="least_loaded",
                    retry=retry,
                ) as queue64:
                    replay64 = traces.replay(queue64, trace)
                oracle64 = pool64.template.backend
                bitwise = all(
                    np.array_equal(
                        model64.forward(
                            trace.requests[o.index][None, :],
                            backend=oracle64,
                        )[0],
                        o.result,
                    )
                    for o in replay64.outcomes
                    if o.ok
                )
            finally:
                _close_pool(pool64)
        row["chaos64_failed"] = replay64.failed
        row["cached_float64_bitwise_equal"] = bool(bitwise)
    return row


def benchmark_ipc_transports(
    shapes: EngineShapes,
    num_requests: int = 48,
    max_batch_size: int = 16,
    repeats: int | None = None,
    response_dtype: str = "float32",
) -> Dict[str, object]:
    """Pickle-pipe vs shm-ring transport cost at serving batch shapes.

    Round-trips the exact batches the 48-short-request serving workload
    dispatches — ragged int64 token batches out, serving-shaped
    ``(length, hidden)`` result blocks back — against an echo worker that
    does *no* compute, so the per-request time is pure transport: request
    packing/pickling, the pipe write (or ring doorbell), and the
    parent-side result copy-out.  ``overhead_ratio`` is how many times
    cheaper the shm ring makes one request's boundary crossing.
    """
    rng = np.random.default_rng(15)
    lengths = server_request_lengths(shapes, num_requests)
    requests = [rng.integers(0, shapes.vocab_size, size=length) for length in lengths]
    plan = RequestBatcher(max_batch_size=max_batch_size).plan(
        lengths, shapes.sequence_length
    )
    batches = [[requests[i] for i in indices] for _, indices in plan]
    dtype = np.dtype(response_dtype)
    # Rings sized exactly like ShardedPool's default: one full batch of
    # maximum-length sequences per direction (the shared formula).
    request_bytes, response_bytes = serving_ring_bytes(
        rows=max_batch_size,
        seq_len=shapes.sequence_length,
        hidden=shapes.hidden_size,
        itemsize=dtype.itemsize,
    )
    repeats = shapes.repeats if repeats is None else repeats
    context = multiprocessing.get_context("spawn")

    row: Dict[str, object] = {
        "shape": asdict(shapes),
        "num_requests": num_requests,
        "num_batches": len(batches),
        "mean_batch_size": num_requests / len(batches),
        "response_dtype": response_dtype,
        "request_ring_bytes": request_bytes,
        "response_ring_bytes": response_bytes,
    }
    per_request: Dict[str, float] = {}
    for kind in ("pipe", "shm_ring"):
        transport, process = _spawn_echo_worker(
            kind, context, shapes.hidden_size, dtype, request_bytes, response_bytes
        )
        try:

            def roundtrip_all() -> None:
                for batch in batches:
                    transport.send("echo", batch)
                    if not transport.poll(600):
                        raise TimeoutError(f"{kind} echo round trip stalled")
                    status, value = transport.recv()
                    if status != "ok":
                        raise RuntimeError(f"{kind} echo failed: {value}")

            per_request[kind] = time_call(roundtrip_all, repeats) / num_requests
            if kind == "shm_ring":
                stats = transport.stats
                row["shm_ring_hot_path_hits"] = stats["ring_requests"]
                if not stats["ring_requests"]:
                    raise RuntimeError(
                        "shm ring benchmark never used the ring; the "
                        "measurement would compare pipe against pipe"
                    )
        finally:
            _shutdown_echo_worker(transport, process)
    row["pipe_per_request_s"] = per_request["pipe"]
    row["shm_ring_per_request_s"] = per_request["shm_ring"]
    row["overhead_ratio"] = per_request["pipe"] / per_request["shm_ring"]
    return row


def fused_lut_equivalence(registry: LutRegistry, num_points: int = 200_001) -> Dict[str, float]:
    """Max |fused fp32 evaluate - seed fp64 call| per primitive, on-range."""
    out: Dict[str, float] = {}
    for name in ("gelu", "exp", "reciprocal", "rsqrt"):
        lut = registry.lut(name, num_entries=16)
        low, high = lut.metadata.get("input_range", (-5.0, 5.0))
        grid = np.linspace(float(low), float(high), num_points)
        seed_values = SeedLutEvaluator(lut)(grid)
        fused32 = lut.evaluate(grid.astype(np.float32))
        out[name] = float(np.max(np.abs(fused32 - seed_values)))
    return out


def run_engine_benchmark(mode: str = "smoke", registry: LutRegistry | None = None) -> Dict[str, object]:
    """Produce the full BENCH_engine.json payload (without writing it)."""
    if mode not in ("smoke", "full"):
        raise ValueError(f"mode must be 'smoke' or 'full', got {mode!r}")
    registry = registry or LutRegistry(training_config=BENCH_TRAINING_CONFIG)
    shapes = FULL_SHAPES if mode == "full" else SMOKE_SHAPES
    int8_shapes = FULL_INT8_SHAPES if mode == "full" else SMOKE_SHAPES
    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "ops": benchmark_ops(registry, shapes),
        "kernels": benchmark_kernels(registry, shapes, int8_shapes),
        "end_to_end": {
            "encoder_forward_fp32": benchmark_end_to_end(registry, shapes, "fp32"),
            "encoder_forward_int8": benchmark_end_to_end(registry, int8_shapes, "int8"),
            "session_ragged_fp32": benchmark_session_ragged(
                registry, shapes, num_requests=12 if mode == "full" else 6
            ),
            "server_concurrent_fp32": benchmark_server_concurrent(
                registry, shapes, num_requests=48 if mode == "full" else 8
            ),
            "server_sharded_fp32": benchmark_server_sharded(
                registry, shapes, num_requests=48 if mode == "full" else 8
            ),
            "server_sharded_shm_fp32": benchmark_server_sharded(
                registry, shapes, num_requests=48 if mode == "full" else 8,
                transport="shm_ring",
            ),
            "server_sharded_leastloaded_fp32": benchmark_server_trace_leastloaded(
                registry, shapes, num_requests=48 if mode == "full" else 8,
                duration_s=2.0 if mode == "full" else 0.2,
            ),
            "server_sharded_chaos_fp32": benchmark_server_chaos(
                registry, shapes, num_requests=48 if mode == "full" else 8,
                duration_s=2.0 if mode == "full" else 0.2,
            ),
        },
        "ipc": benchmark_ipc_transports(
            shapes, num_requests=48 if mode == "full" else 8
        ),
        "equivalence": {"fused_lut_fp32_max_abs_diff": fused_lut_equivalence(registry)},
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    return report


def write_report(report: Dict[str, object], path: Path = DEFAULT_REPORT_PATH) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def print_kernel_rows(section: Dict[str, object]) -> None:
    if not section["native_available"]:
        print(
            "kernels: native unavailable "
            f"({section.get('native_unavailable_reason')}); numpy rows only"
        )
    else:
        print(
            "kernels: numpy + native "
            f"(gemm_impl={section['gemm_impl']}, "
            f"{section['num_threads']} thread(s))"
        )
    for name, row in section["ops"].items():
        parts = [f"numpy {1e3 * row['numpy_s']:8.2f} ms"]
        if "native_s" in row:
            parts.append(
                f"native {1e3 * row['native_s']:8.2f} ms -> {row['speedup']:.2f}x"
            )
        if "bitwise_equal_vs_numpy" in row:
            parts.append(f"bitwise_equal={row['bitwise_equal_vs_numpy']}")
        print(f"  {name:<22} " + "  ".join(parts))


def print_ipc_row(row: Dict[str, object]) -> None:
    print(
        f"ipc transport: pickle pipe {1e6 * row['pipe_per_request_s']:.0f} us/req "
        f"vs shm ring {1e6 * row['shm_ring_per_request_s']:.0f} us/req "
        f"-> {row['overhead_ratio']:.2f}x lower overhead "
        f"({row['num_requests']} requests in {row['num_batches']} batches, "
        f"{row['response_dtype']} results)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="full")
    parser.add_argument("--output", type=Path, default=DEFAULT_REPORT_PATH)
    parser.add_argument(
        "--ipc", action="store_true",
        help="run only the pickle-vs-ring IPC microbenchmark (no report write)",
    )
    parser.add_argument(
        "--kernels", action="store_true",
        help="run only the per-op ComputeKernel microbenchmarks "
        "(no report write, no multiprocessing)",
    )
    args = parser.parse_args(argv)
    if args.kernels:
        shapes = FULL_SHAPES if args.mode == "full" else SMOKE_SHAPES
        int8_shapes = FULL_INT8_SHAPES if args.mode == "full" else SMOKE_SHAPES
        registry = LutRegistry(training_config=BENCH_TRAINING_CONFIG)
        print_kernel_rows(benchmark_kernels(registry, shapes, int8_shapes))
        return 0
    if args.ipc:
        shapes = FULL_SHAPES if args.mode == "full" else SMOKE_SHAPES
        print_ipc_row(
            benchmark_ipc_transports(
                shapes, num_requests=48 if args.mode == "full" else 8
            )
        )
        return 0
    report = run_engine_benchmark(mode=args.mode)
    path = write_report(report, args.output)
    fp32 = report["end_to_end"]["encoder_forward_fp32"]
    int8 = report["end_to_end"]["encoder_forward_int8"]
    session = report["end_to_end"]["session_ragged_fp32"]
    server = report["end_to_end"]["server_concurrent_fp32"]
    print(f"wrote {path}")
    print(
        f"encoder forward fp32: {fp32['speedup']:.2f}x "
        f"({fp32['tokens_per_s_seed']:.0f} -> {fp32['tokens_per_s_fast']:.0f} tokens/s)"
    )
    print(
        f"encoder forward int8: {int8['speedup']:.2f}x "
        f"({int8['tokens_per_s_seed']:.0f} -> {int8['tokens_per_s_fast']:.0f} tokens/s)"
    )
    print(
        f"session ragged fp32:  {session['speedup']:.2f}x "
        f"({session['tokens_per_s_seed']:.0f} -> {session['tokens_per_s_fast']:.0f} tokens/s, "
        f"micro-batching over {session['num_requests']} requests)"
    )
    print(
        f"server concurrent fp32: {server['speedup']:.2f}x "
        f"({server['tokens_per_s_seed']:.0f} -> {server['tokens_per_s_fast']:.0f} tokens/s, "
        f"{server['num_replicas']} replicas x {server['num_clients']} clients, "
        f"{server['num_requests']} requests, "
        f"mean batch {server['queue']['mean_batch_size']:.1f}, "
        f"p50 {server['queue']['p50_latency_ms']:.0f} ms / "
        f"p99 {server['queue']['p99_latency_ms']:.0f} ms)"
    )
    for name in ("server_sharded_fp32", "server_sharded_shm_fp32"):
        sharded = report["end_to_end"][name]
        print(
            f"{name}: {sharded['speedup']:.2f}x "
            f"({sharded['tokens_per_s_seed']:.0f} -> {sharded['tokens_per_s_fast']:.0f} tokens/s, "
            f"{sharded['num_replicas']} worker processes ({sharded['transport']}) "
            f"on {sharded['cpu_count']} cores, "
            f"{sharded['num_clients']} clients, {sharded['num_requests']} requests, "
            f"mean batch {sharded['queue']['mean_batch_size']:.1f}, "
            f"p50 {sharded['queue']['p50_latency_ms']:.0f} ms / "
            f"p99 {sharded['queue']['p99_latency_ms']:.0f} ms, "
            f"mean service {sharded['queue']['mean_service_ms']:.0f} ms)"
        )
    trace_replay = report["end_to_end"]["server_sharded_leastloaded_fp32"]
    latency = trace_replay["latency"]
    print(
        f"server_sharded_leastloaded_fp32: trace replay "
        f"({trace_replay['num_requests']} requests over "
        f"{trace_replay['trace']['duration_s']:.1f} s, "
        f"{trace_replay['num_replicas']} worker processes, "
        f"router={trace_replay['router']}, "
        f"burst p50 {latency['burst']['p50_ms']:.0f} ms / "
        f"p99 {latency['burst']['p99_ms']:.0f} ms vs steady "
        f"p50 {latency['steady']['p50_ms']:.0f} ms / "
        f"p99 {latency['steady']['p99_ms']:.0f} ms, "
        f"{trace_replay['queue']['stolen']} batches stolen)"
    )
    chaos = report["end_to_end"]["server_sharded_chaos_fp32"]
    print(
        f"server_sharded_chaos_fp32: worker crash at batch "
        f"{chaos['fault_plan']['worker_crash_at']} -> goodput ratio "
        f"{chaos['goodput_ratio']:.2f} "
        f"({chaos['clean']['goodput_rps']:.0f} -> "
        f"{chaos['chaos']['goodput_rps']:.0f} req/s), "
        f"p99 {chaos['p99_degradation_x']:.2f}x "
        f"({chaos['clean']['p99_ms']:.0f} -> {chaos['chaos']['p99_ms']:.0f} ms), "
        f"{chaos['chaos']['retry_attempts']} retries / "
        f"{chaos['chaos']['replicas_retired']} retired, "
        f"{chaos['chaos']['failed']} lost, "
        f"float64 bitwise equal: {chaos.get('cached_float64_bitwise_equal')}"
    )
    print_ipc_row(report["ipc"])
    print_kernel_rows(report["kernels"])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
