"""Compact ComputeKernel parity table: NumpyKernel vs compiled NativeKernel.

Run via ``scripts/check_kernel_parity.sh`` (or directly with
``PYTHONPATH=src python benchmarks/kernel_parity.py``).  Prints one row per
op/path across int8/fp32 — per-op kernels first, then an end-to-end encoder
forward and pooled output through :class:`repro.api.InferenceSession` — and
exits non-zero if any row violates the parity contract.  The contract is
*bitwise* everywhere: the native kernel is a drop-in replacement, not an
approximation, so ``max_abs_diff`` must print as exactly zero.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.api import BackendSpec, InferenceSession  # noqa: E402
from repro.core.approximators import LutGelu, LutLayerNorm, LutSoftmax  # noqa: E402
from repro.core.kernels import (  # noqa: E402
    NUMPY_KERNEL,
    get_kernel,
    native_available,
    native_unavailable_reason,
)
from repro.core.registry import LutRegistry  # noqa: E402
from repro.core.scaling import InputScaler  # noqa: E402
from repro.transformer import tiny_test_config  # noqa: E402
from repro.transformer.models import EncoderModel  # noqa: E402

import regression  # noqa: E402  (benchmarks/ is not a package)


def build_rows(registry: LutRegistry) -> list:
    native = get_kernel("native")
    rng = np.random.default_rng(3)
    rows: list = []

    def add(name: str, precision: str, a, b) -> None:
        a, b = np.asarray(a), np.asarray(b)
        bitwise = bool(np.array_equal(a, b, equal_nan=True))
        diff = 0.0
        if a.size and not bitwise:
            diff = float(np.nanmax(np.abs(a.astype(np.float64) - b)))
        rows.append((name, precision, diff, bitwise))

    x = rng.normal(size=(96, 48)).astype(np.float32)
    bias = rng.normal(size=32).astype(np.float32)

    w_q = rng.integers(-127, 128, size=(48, 32), dtype=np.int8)
    add(
        "linear",
        "int8",
        native.linear_int8(
            x, native.pack_weight_int8(w_q), 0.017, np.float32, bias=bias
        ),
        NUMPY_KERNEL.linear_int8(
            x, NUMPY_KERNEL.pack_weight_int8(w_q), 0.017, np.float32, bias=bias
        ),
    )
    w32 = rng.normal(size=(48, 32)).astype(np.float32)
    add(
        "linear",
        "fp32",
        native.matmul_fp32(x, w32, np.float32, bias=bias),
        NUMPY_KERNEL.matmul_fp32(x, w32, np.float32, bias=bias),
    )
    scale = NUMPY_KERNEL.quantize_scale(x)
    assert float(native.quantize_scale(x)) == float(scale)
    add(
        "quantize_pack",
        "int8",
        native.quantize_pack(x, scale),
        NUMPY_KERNEL.quantize_pack(x, scale),
    )

    gelu_op = LutGelu(registry.lut("gelu", num_entries=16))
    g = rng.uniform(-9.0, 9.0, size=(64, 40)).astype(np.float32)
    gelu_bias = rng.normal(size=40).astype(np.float32)
    add(
        "lut_gelu_bias",
        "fp32",
        native.lut_gelu_bias(gelu_op, g.copy(), gelu_bias),
        NUMPY_KERNEL.lut_gelu_bias(gelu_op, g.copy(), gelu_bias),
    )

    softmax_op = LutSoftmax(
        registry.lut("exp", num_entries=16),
        registry.lut("reciprocal", num_entries=16),
    )
    scores = rng.normal(scale=2.0, size=(2, 2, 12, 12)).astype(np.float32)
    add(
        "lut_softmax",
        "fp32",
        native.lut_softmax(softmax_op, scores.copy(), -1),
        NUMPY_KERNEL.lut_softmax(softmax_op, scores.copy(), -1),
    )

    layernorm_op = LutLayerNorm(
        registry.lut("rsqrt", num_entries=16), scaler=InputScaler()
    )
    hidden = rng.normal(size=(2, 9, 32)).astype(np.float32)
    gamma = rng.normal(1.0, 0.1, size=32).astype(np.float32)
    beta = rng.normal(0.0, 0.1, size=32).astype(np.float32)
    add(
        "lut_layernorm",
        "fp32",
        native.lut_layernorm(layernorm_op, hidden.copy(), gamma, beta),
        NUMPY_KERNEL.lut_layernorm(layernorm_op, hidden.copy(), gamma, beta),
    )

    residual = rng.normal(size=(96, 32)).astype(np.float32)
    pre = rng.normal(size=(96, 32)).astype(np.float32)
    add(
        "bias_residual",
        "fp32",
        native.bias_residual(pre.copy(), bias, residual),
        NUMPY_KERNEL.bias_residual(pre.copy(), bias, residual),
    )

    for precision in ("fp32", "int8"):
        requests = [rng.integers(0, 100, size=n) for n in (5, 11, 8)]
        served = {}
        for kernel in ("numpy", "native"):
            model = EncoderModel.initialize(
                tiny_test_config(
                    matmul_precision=precision,
                    compute_dtype="float32",
                    kernel=kernel,
                ),
                seed=3,
            )
            session = InferenceSession.from_model(
                model, spec=BackendSpec.nn_lut(), registry=registry
            )
            served[kernel] = (
                np.concatenate([o.ravel() for o in session.forward(requests)]),
                session.pooled(requests),
            )
        add("encoder_forward", precision, served["native"][0], served["numpy"][0])
        add("pooled", precision, served["native"][1], served["numpy"][1])
    return rows


def main() -> int:
    if not native_available():
        print(
            f"native kernel unavailable ({native_unavailable_reason()}); "
            "nothing to compare — the engine runs on the numpy kernel"
        )
        return 0
    registry = LutRegistry(training_config=regression.BENCH_TRAINING_CONFIG)
    rows = build_rows(registry)
    print(
        "kernel parity: numpy vs native "
        f"(gemm_impl={get_kernel('native').gemm_impl}, "
        "2 = VNNI dot-product GEMM)"
    )
    header = f"{'op/path':<16} {'precision':<9} {'max_abs_diff':>12}  parity"
    print(header)
    print("-" * len(header))
    failed = False
    for name, precision, diff, bitwise in rows:
        status = "bitwise" if bitwise else "MISMATCH"
        failed = failed or not bitwise
        print(f"{name:<16} {precision:<9} {diff:>12.3e}  {status}")
    if failed:
        print("FAIL: native kernel deviates from the numpy reference")
        return 1
    print("OK: every row bitwise-identical across kernels")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
