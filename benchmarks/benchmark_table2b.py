"""Table 2(b): INT8-matmul model, I-BERT vs NN-LUT, with calibration."""

import numpy as np
import pytest

from repro.experiments.table2 import run_table2b


@pytest.mark.benchmark(group="table2b")
def test_table2b_int8_model(benchmark, bench_registry, small_scale):
    result = benchmark.pedantic(
        lambda: run_table2b(scale=small_scale, registry=bench_registry),
        iterations=1,
        rounds=1,
    )
    print("\n" + result.report())
    averages = result.averages()
    # Paper shape: on the INT8 model NN-LUT is on par with I-BERT, and the
    # INT32 variant tracks the FP32 one.  (Operator-level calibration gains
    # are asserted in tests/core and the ablation benchmarks; the end-to-end
    # "+C" rows are reported here without a hard threshold because the
    # synthetic-task variance is of the same order as the calibration effect.)
    assert abs(averages["NN-LUT FP32"] - averages["I-BERT"]) < 10.0
    assert abs(averages["NN-LUT INT32"] - averages["NN-LUT FP32"]) < 10.0
    assert "NN-LUT FP32+C" in averages and "NN-LUT INT32+C" in averages
