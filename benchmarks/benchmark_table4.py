"""Table 4: arithmetic-unit area / power / delay comparison."""

import pytest

from repro.experiments.table4 import PAPER_TABLE4, run_table4


@pytest.mark.benchmark(group="table4")
def test_table4_arithmetic_units(benchmark):
    result = benchmark(run_table4)
    print("\n" + result.report())
    ratios = result.ratios()
    assert 2.0 < ratios["area_ratio"] < 3.5        # paper: 2.63x
    assert 20.0 < ratios["power_ratio"] < 60.0     # paper: 36.4x
    assert 3.0 < ratios["delay_ratio"] < 5.0       # paper: 3.93x
    for unit in result.units:
        key = f"{unit.name} {unit.precision}"
        paper_area = PAPER_TABLE4[key]["area_um2"]
        assert abs(unit.area_um2 - paper_area) / paper_area < 0.25
