"""Micro-benchmarks: LUT fitting and evaluation throughput."""

import numpy as np
import pytest

from repro.core.registry import fit_lut
from repro.core.training import TrainingConfig


@pytest.mark.benchmark(group="runtime")
def test_lut_evaluation_throughput(benchmark, bench_registry):
    """Evaluating a 16-entry LUT over a large tensor (the inference hot loop)."""
    lut = bench_registry.get("gelu", num_entries=16).lut
    x = np.random.default_rng(0).uniform(-5, 5, size=1_000_000)
    result = benchmark(lut, x)
    assert result.shape == x.shape


@pytest.mark.benchmark(group="runtime")
def test_nn_lut_fitting_time(benchmark):
    """One-time offline fitting cost of a 16-entry NN-LUT (paper: ~2 min on V100)."""
    config = TrainingConfig(
        hidden_size=15, num_samples=10_000, batch_size=2048, epochs=20, num_restarts=1
    )
    primitive = benchmark.pedantic(
        lambda: fit_lut("gelu", num_entries=16, config=config), iterations=1, rounds=1
    )
    assert primitive.lut.num_entries == 16
