"""Seedable trace-replay load generation for the serving benchmarks.

The steady-Poisson traffic the existing serving rows use answers "how much
does coalescing help on average"; it cannot answer the scheduling questions
PR 9 introduces — how the least-loaded router and the autoscaler behave when
traffic is *not* steady.  This module generates reproducible request traces
with the three shapes real serving traffic has:

* **bursty arrivals** — short windows where the arrival rate multiplies,
  the regime where routing policy decides the p99;
* **a diurnal ramp** — a slow sinusoidal swell across the trace, the shape
  autoscaling exists for;
* **heavy-tailed lengths** — Pareto-distributed request sizes, so a few
  expensive requests ride among many cheap ones and per-token cost (not
  request count) is what loads a replica.

Everything is driven by one ``numpy`` :class:`~numpy.random.Generator` seed:
the same seed yields the same trace — arrival times, lengths and token ids —
so replay runs are comparable across commits and the float64 parity check
can replay the identical workload against the per-call oracle.

:func:`replay` plays a trace against anything with the ``ServingQueue``
``submit`` surface in (scaled) real time, optionally firing scheduled
*actions* mid-run (retire a replica, hot-add one) to exercise live
membership under load, and returns per-request outcomes.
:func:`burst_digest` then splits the latency distribution into
inside-burst vs outside-burst percentiles — the "p99 under burst" number
the ``server_sharded_leastloaded_fp32`` row reports.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "TraceConfig",
    "Trace",
    "ReplayOutcome",
    "ReplayResult",
    "generate_trace",
    "replay",
    "burst_digest",
]


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of one generated trace (all randomness flows from ``seed``)."""

    num_requests: int = 48
    duration_s: float = 1.0
    seed: int = 0
    #: Number of burst windows spread across the trace.
    num_bursts: int = 2
    #: Each burst multiplies the arrival intensity by this factor.
    burst_intensity: float = 6.0
    #: Burst width as a fraction of the trace duration.
    burst_width_frac: float = 0.08
    #: Diurnal swell: intensity varies by ``1 +- diurnal_amplitude`` over
    #: ``diurnal_cycles`` sine cycles across the trace.
    diurnal_amplitude: float = 0.5
    diurnal_cycles: float = 1.0
    #: Request lengths: ``min_length + Pareto(tail_alpha)`` scaled, clipped
    #: to ``max_length``.  Smaller alpha = heavier tail.
    min_length: int = 2
    max_length: int = 16
    tail_alpha: float = 1.5
    vocab_size: int = 200

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if not 1 <= self.min_length <= self.max_length:
            raise ValueError(
                f"need 1 <= min_length <= max_length, got "
                f"{self.min_length}..{self.max_length}"
            )
        if self.tail_alpha <= 0:
            raise ValueError(f"tail_alpha must be > 0, got {self.tail_alpha}")


@dataclass(frozen=True)
class Trace:
    """One reproducible workload: who arrives when, asking for how much."""

    config: TraceConfig
    #: Arrival offsets from trace start, seconds, non-decreasing.
    arrivals_s: Tuple[float, ...]
    #: Token count per request (heavy-tailed).
    lengths: Tuple[int, ...]
    #: Token id arrays, one per request (int64, ``lengths[i]`` long).
    requests: Tuple[np.ndarray, ...] = field(repr=False)
    #: ``(start_s, end_s)`` spans where the burst intensity applied.
    burst_windows: Tuple[Tuple[float, float], ...] = ()

    @property
    def total_tokens(self) -> int:
        return int(sum(self.lengths))

    def in_burst(self, index: int) -> bool:
        """Whether request ``index`` arrived inside a burst window."""
        at = self.arrivals_s[index]
        return any(start <= at <= end for start, end in self.burst_windows)


def _burst_windows(config: TraceConfig, rng: np.random.Generator):
    """Burst spans placed away from the trace edges, non-degenerate."""
    width = config.burst_width_frac * config.duration_s
    windows: List[Tuple[float, float]] = []
    for _ in range(max(0, config.num_bursts)):
        start = float(
            rng.uniform(0.1 * config.duration_s, 0.9 * config.duration_s - width)
        )
        windows.append((start, start + width))
    return tuple(sorted(windows))


def generate_trace(config: TraceConfig | None = None, **kwargs) -> Trace:
    """Build one trace; ``kwargs`` override :class:`TraceConfig` fields.

    Arrival times come from inverting the cumulative intensity of a
    non-homogeneous process — diurnal sine times burst multipliers — at
    evenly spaced quantiles with seeded jitter, which yields *exactly*
    ``num_requests`` arrivals whose local density follows the intensity
    (a burst window at 6x intensity receives ~6x its share of arrivals).
    """
    if config is None:
        config = TraceConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a TraceConfig or field overrides, not both")
    rng = np.random.default_rng(config.seed)
    windows = _burst_windows(config, rng)

    grid = np.linspace(0.0, config.duration_s, 2048)
    intensity = 1.0 + config.diurnal_amplitude * np.sin(
        2.0 * np.pi * config.diurnal_cycles * grid / config.duration_s
    )
    intensity = np.maximum(intensity, 0.05)
    for start, end in windows:
        intensity[(grid >= start) & (grid <= end)] *= config.burst_intensity
    cumulative = np.concatenate([[0.0], np.cumsum(intensity[:-1] * np.diff(grid))])
    # Jittered quantiles of the cumulative intensity -> arrival offsets.
    quantiles = (
        np.arange(config.num_requests) + rng.uniform(0.0, 1.0, config.num_requests)
    ) / config.num_requests
    arrivals = np.interp(quantiles * cumulative[-1], cumulative, grid)
    arrivals = np.sort(arrivals)

    spread = config.max_length - config.min_length
    raw = rng.pareto(config.tail_alpha, size=config.num_requests)
    lengths = np.minimum(
        config.min_length + np.floor(raw * max(1, spread // 4)).astype(np.int64),
        config.max_length,
    )
    requests = tuple(
        rng.integers(0, config.vocab_size, size=int(length), dtype=np.int64)
        for length in lengths
    )
    return Trace(
        config=config,
        arrivals_s=tuple(float(at) for at in arrivals),
        lengths=tuple(int(length) for length in lengths),
        requests=requests,
        burst_windows=windows,
    )


@dataclass(frozen=True)
class ReplayOutcome:
    """What happened to one replayed request."""

    index: int
    arrival_s: float
    length: int
    in_burst: bool
    latency_ms: Optional[float]  # None when the request did not complete
    error: Optional[str]  # exception class name for failures
    result: Optional[np.ndarray] = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ReplayResult:
    """All outcomes of one replay run, plus the wall time it took."""

    outcomes: Tuple[ReplayOutcome, ...]
    elapsed_s: float

    @property
    def completed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def failed(self) -> int:
        return len(self.outcomes) - self.completed

    def results(self) -> List[Optional[np.ndarray]]:
        """Request-ordered results (None where the request failed)."""
        return [outcome.result for outcome in self.outcomes]


def replay(
    queue,
    trace: Trace,
    time_scale: float = 1.0,
    deadline_ms: Optional[float] = None,
    result_timeout_s: float = 600.0,
    actions: Sequence[Tuple[float, Callable[[], object]]] = (),
    keep_results: bool = True,
) -> ReplayResult:
    """Play ``trace`` against ``queue`` in (scaled) real time.

    The replay thread sleeps until each request's scheduled arrival
    (``arrival_s * time_scale``) and submits it; results are collected
    afterwards so slow requests never delay later arrivals.  ``actions``
    are ``(at_s, callable)`` pairs fired (once each, in trace time) the
    first time the replay clock passes ``at_s`` — the hook the
    membership-churn benchmarks use to retire/hot-add replicas mid-run.
    An action that raises aborts the replay (a churn benchmark must not
    silently skip its churn).

    Submission failures (admission rejection, validation) are recorded as
    failed outcomes, not raised: overload behaviour is part of what a
    trace replay measures.
    """
    pending_actions = sorted(actions, key=lambda pair: pair[0])
    next_action = 0
    futures: List[Tuple[int, object, Optional[BaseException]]] = []
    start = time.monotonic()
    for index, arrival in enumerate(trace.arrivals_s):
        while (
            next_action < len(pending_actions)
            and pending_actions[next_action][0] <= arrival
        ):
            pending_actions[next_action][1]()
            next_action += 1
        delay = arrival * time_scale - (time.monotonic() - start)
        if delay > 0:
            time.sleep(delay)
        try:
            future = queue.submit(trace.requests[index], deadline_ms=deadline_ms)
            futures.append((index, future, None))
        except Exception as exc:
            futures.append((index, None, exc))
    while next_action < len(pending_actions):
        pending_actions[next_action][1]()
        next_action += 1

    outcomes: List[ReplayOutcome] = []
    for index, future, submit_error in futures:
        arrival = trace.arrivals_s[index]
        error: Optional[str] = None
        latency_ms: Optional[float] = None
        result: Optional[np.ndarray] = None
        if submit_error is not None:
            error = type(submit_error).__name__
        else:
            try:
                result = future.result(result_timeout_s)
                latency_ms = 1000.0 * (
                    future.done_at - (start + arrival * time_scale)
                )
            except Exception as exc:
                error = type(exc).__name__
                result = None
        outcomes.append(
            ReplayOutcome(
                index=index,
                arrival_s=arrival,
                length=trace.lengths[index],
                in_burst=trace.in_burst(index),
                latency_ms=latency_ms,
                error=error,
                result=result if keep_results else None,
            )
        )
    elapsed = time.monotonic() - start
    return ReplayResult(outcomes=tuple(outcomes), elapsed_s=elapsed)


def _percentiles(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0, "count": 0}
    array = np.asarray(values, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(array, 50)),
        "p99_ms": float(np.percentile(array, 99)),
        "mean_ms": float(np.mean(array)),
        "count": int(array.size),
    }


def burst_digest(result: ReplayResult) -> Dict[str, object]:
    """Latency percentiles split by burst membership (the p99-under-burst).

    ``burst`` digests requests that *arrived inside* a burst window —
    exactly the ones a routing policy must not let queue behind a busy
    replica — ``steady`` digests the rest, and ``all`` is the union.
    """
    burst = [o.latency_ms for o in result.outcomes if o.ok and o.in_burst]
    steady = [o.latency_ms for o in result.outcomes if o.ok and not o.in_burst]
    return {
        "burst": _percentiles(burst),
        "steady": _percentiles(steady),
        "all": _percentiles(burst + steady),
        "failed": result.failed,
    }


def trace_row(trace: Trace) -> Dict[str, object]:
    """The trace's reproducibility record for a benchmark report row."""
    return {
        **asdict(trace.config),
        "total_tokens": trace.total_tokens,
        "burst_windows_s": [list(window) for window in trace.burst_windows],
    }
