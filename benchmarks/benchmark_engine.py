"""End-to-end inference-engine benchmark and regression gate.

Unlike the table/figure benchmarks in this directory, this module is wired
into the tier-1 test run (see ``conftest.py``): every plain ``pytest``
invocation executes it in *smoke* mode — tiny shapes, single repeats, no
report file — so the benchmark harness itself can never silently rot.

Set ``BENCH_ENGINE_FULL=1`` (or run ``scripts/bench.sh``) to run the full
BERT-base-shaped benchmark and regenerate ``BENCH_engine.json``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

import regression  # noqa: E402  (benchmarks/ is not a package)

FULL_MODE = os.environ.get("BENCH_ENGINE_FULL", "") == "1"
MODE = "full" if FULL_MODE else "smoke"


@pytest.fixture(scope="module")
def engine_registry():
    """Fitted primitives shared by every engine benchmark in this module."""
    return regression.LutRegistry(training_config=regression.BENCH_TRAINING_CONFIG)


@pytest.fixture(scope="module")
def engine_report(engine_registry):
    report = regression.run_engine_benchmark(mode=MODE, registry=engine_registry)
    if FULL_MODE:
        path = regression.write_report(report)
        print(f"\nwrote {path}")
    return report


def test_report_schema(engine_report):
    """The BENCH_engine.json payload carries every documented section."""
    assert engine_report["schema_version"] == regression.SCHEMA_VERSION
    assert engine_report["mode"] == MODE
    assert set(engine_report["ops"]) == {
        "lut_gelu_eval",
        "lut_softmax",
        "lut_layernorm",
        "linear_fp32",
        "linear_int8",
    }
    assert set(engine_report["end_to_end"]) == {
        "encoder_forward_fp32",
        "encoder_forward_int8",
        "session_ragged_fp32",
        "server_concurrent_fp32",
        "server_sharded_fp32",
        "server_sharded_shm_fp32",
        "server_sharded_leastloaded_fp32",
        "server_sharded_chaos_fp32",
    }
    for row in engine_report["ops"].values():
        assert row["seed_s"] > 0 and row["fast_s"] > 0 and row["speedup"] > 0
    kernels = engine_report["kernels"]
    assert set(kernels["ops"]) == {
        "gemm_int8",
        "gemm_fp32",
        "quantize_pack",
        "lut_gelu_bias",
        "lut_layernorm",
        "bias_residual",
        "encoder_forward_int8",
    }
    assert isinstance(kernels["native_available"], bool)
    for name, row in kernels["ops"].items():
        assert row["numpy_s"] > 0, name
        if kernels["native_available"]:
            assert row["native_s"] > 0 and row["speedup"] > 0, name
        else:
            assert "native_s" not in row, name
    if kernels["native_available"]:
        # Per-kernel int8 encoder forwards must agree bit for bit.
        assert kernels["ops"]["encoder_forward_int8"]["bitwise_equal_vs_numpy"]
    else:
        assert kernels["native_unavailable_reason"]
    for name, row in engine_report["end_to_end"].items():
        if name == "server_sharded_chaos_fp32":
            # The chaos row compares two replays of the same queue setup,
            # so its rate is goodput (completed req/s), not a seed-vs-fast
            # tokens/s pair.
            assert row["clean"]["goodput_rps"] > 0
            assert row["chaos"]["goodput_rps"] > 0
            continue
        assert row["tokens_per_s_fast"] > 0 and row["tokens_per_s_seed"] > 0
    ipc = engine_report["ipc"]
    assert ipc["pipe_per_request_s"] > 0 and ipc["shm_ring_per_request_s"] > 0
    assert ipc["overhead_ratio"] > 0 and ipc["shm_ring_hot_path_hits"] >= 1


def test_cached_engine_is_bit_compatible(engine_report):
    """The cached float64 engine reproduces the seed path bit for bit."""
    for name, row in engine_report["end_to_end"].items():
        assert row["cached_float64_bitwise_equal"], name


def test_fused_lut_fp32_within_tolerance(engine_report):
    """Acceptance gate: fused fp32 kernels match the seed LUT path to 1e-6."""
    for name, diff in engine_report["equivalence"]["fused_lut_fp32_max_abs_diff"].items():
        assert diff < 1e-6, f"{name}: fused fp32 deviates by {diff}"


@pytest.mark.skipif(not FULL_MODE, reason="speed gates only meaningful at full shapes")
def test_full_mode_speedups(engine_report):
    """Full-shape run: the engine must beat the seed path end to end."""
    end_to_end = engine_report["end_to_end"]
    assert end_to_end["encoder_forward_int8"]["speedup"] >= 3.0
    assert end_to_end["encoder_forward_fp32"]["speedup"] >= 1.25
    # Acceptance gate: pooled concurrent serving vs one-forward-per-request.
    # Observed 1.4-1.8x across runs on the shared single-core reference
    # machine; gate at the low edge so ambient CPU contention cannot flake
    # the build while a real regression (coalescing loss -> ~1.0x) still
    # trips it.
    assert end_to_end["server_concurrent_fp32"]["speedup"] >= 1.3
    # Sharded serving's multi-core win needs real cores; on a single-core
    # machine the gate only bounds the IPC overhead the process boundary adds
    # (batch density still offsets most of it).  The shm-ring row carries the
    # same floor — it must never serve *worse* than the pickle pipe setup.
    for name in ("server_sharded_fp32", "server_sharded_shm_fp32"):
        sharded = end_to_end[name]
        sharded_floor = 1.2 if (sharded["cpu_count"] or 1) >= 2 else 0.5
        assert sharded["speedup"] >= sharded_floor, (name, sharded)
    # Acceptance gate: the shm ring must cut per-request transport overhead
    # at least in half vs pickle-over-pipe at the serving workload's shapes.
    assert engine_report["ipc"]["overhead_ratio"] >= 2.0, engine_report["ipc"]
    for name, row in engine_report["ops"].items():
        assert row["speedup"] >= 1.0, f"op {name} regressed: {row}"
    # Acceptance gates for the compiled kernel seam (only meaningful when the
    # native kernel compiled; a machine without a C compiler skips them).
    kernels = engine_report["kernels"]
    if kernels["native_available"]:
        ops = kernels["ops"]
        # True int8 GEMM (int32 accumulation) vs the float64-carrier path.
        assert ops["gemm_int8"]["speedup"] >= 2.0, ops["gemm_int8"]
        # Fused bias+LUT-GELU epilogue vs the unfused numpy sequence.
        assert ops["lut_gelu_bias"]["speedup"] >= 1.3, ops["lut_gelu_bias"]


@pytest.mark.benchmark(group="engine")
def test_fused_lut_kernel_throughput(benchmark, engine_registry):
    """Fused float32 GELU-table kernel over a large tensor."""
    lut = engine_registry.lut("gelu", num_entries=16)
    size = 1_000_000 if FULL_MODE else 10_000
    x = np.random.default_rng(0).uniform(-5, 5, size=size).astype(np.float32)
    out = np.empty_like(x)
    result = benchmark(lut.evaluate, x, out=out)
    assert result.shape == x.shape


@pytest.mark.benchmark(group="engine")
def test_engine_forward_throughput(benchmark, engine_registry):
    """Fast-path encoder forward at the mode's benchmark shape."""
    shapes = regression.FULL_SHAPES if FULL_MODE else regression.SMOKE_SHAPES
    model = regression.build_engine(shapes, "fp32", compute_dtype="float32")
    backend = regression.build_fast_backend(engine_registry)
    tokens = np.random.default_rng(1).integers(
        0, shapes.vocab_size, size=(shapes.batch_size, shapes.sequence_length)
    )
    hidden = benchmark(model.forward, tokens, backend=backend)
    assert hidden.shape == (shapes.batch_size, shapes.sequence_length, shapes.hidden_size)


def test_session_ragged_row(engine_report):
    """The serving row: micro-batched session reproduces per-call outputs."""
    row = engine_report["end_to_end"]["session_ragged_fp32"]
    assert row["num_requests"] >= 1 and row["total_tokens"] > 0
    assert row["cached_float64_bitwise_equal"]


def test_server_concurrent_row(engine_report):
    """The concurrent-serving row: pooled serving matches single-session.

    Runs in tier-1 smoke mode too, so the SessionPool + ServingQueue path
    (2 replicas, mixed-length traffic, concurrent clients) cannot rot.
    """
    row = engine_report["end_to_end"]["server_concurrent_fp32"]
    assert row["num_replicas"] >= 2 and row["num_clients"] >= 1
    assert row["num_requests"] >= 1 and row["total_tokens"] > 0
    assert row["cached_float64_bitwise_equal"]
    queue = row["queue"]
    assert queue["completed"] >= row["num_requests"]
    assert queue["rejected"] == 0 and queue["expired"] == 0
    assert queue["mean_batch_size"] >= 1.0
    assert 0.0 < queue["p50_latency_ms"] <= queue["p99_latency_ms"]


def test_server_sharded_row(engine_report):
    """The sharded-serving row: worker processes match single-session serving.

    Runs in tier-1 smoke mode too, so the ShardedPool path — spawned worker
    processes reconstructing replicas from the serializable spec over
    shared-memory weights — cannot silently rot.
    """
    row = engine_report["end_to_end"]["server_sharded_fp32"]
    assert row["transport"] == "pipe"
    assert row["num_replicas"] >= 2 and row["num_clients"] >= 1
    assert row["num_requests"] >= 1 and row["total_tokens"] > 0
    assert row["cpu_count"] >= 1
    assert row["cached_float64_bitwise_equal"]
    queue = row["queue"]
    assert queue["completed"] >= row["num_requests"]
    assert queue["rejected"] == 0 and queue["expired"] == 0
    assert queue["mean_batch_size"] >= 1.0
    assert 0.0 < queue["p50_latency_ms"] <= queue["p99_latency_ms"]


def test_server_sharded_shm_row(engine_report):
    """The shm-ring sharded row: zero-copy IPC matches single-session serving.

    Runs in tier-1 smoke mode too, so the ShmRingTransport path — packed
    token batches through the request ring, hidden-state rows written into
    the response ring — cannot silently rot, and stays bitwise-equal to
    single-session serving.
    """
    row = engine_report["end_to_end"]["server_sharded_shm_fp32"]
    assert row["transport"] == "shm_ring"
    assert row["num_replicas"] >= 2 and row["num_clients"] >= 1
    assert row["num_requests"] >= 1 and row["total_tokens"] > 0
    assert row["cpu_count"] >= 1
    assert row["cached_float64_bitwise_equal"]
    queue = row["queue"]
    assert queue["completed"] >= row["num_requests"]
    assert queue["rejected"] == 0 and queue["expired"] == 0
    assert queue["mean_batch_size"] >= 1.0
    assert 0.0 < queue["p50_latency_ms"] <= queue["p99_latency_ms"]
    assert queue["mean_service_ms"] > 0.0 and queue["mean_queue_wait_ms"] >= 0.0


def test_server_trace_leastloaded_row(engine_report):
    """The trace-replay row: least-loaded routing under a seeded burst.

    Runs in tier-1 smoke mode too, so the trace generator, the replay
    harness and the ``router="least_loaded"`` scheduling path (work
    stealing included) cannot rot.  Every replayed request must complete —
    a lost or double-served future would show up as a failed outcome or a
    completion-count mismatch — and least-loaded placement must stay
    bitwise-equal to per-call serving under float64.
    """
    row = engine_report["end_to_end"]["server_sharded_leastloaded_fp32"]
    assert row["router"] == "least_loaded"
    assert row["num_replicas"] >= 2 and row["num_requests"] >= 1
    assert row["total_tokens"] > 0 and row["cpu_count"] >= 1
    assert row["cached_float64_bitwise_equal"]
    trace = row["trace"]
    assert trace["num_requests"] == row["num_requests"]
    assert len(trace["burst_windows_s"]) == trace["num_bursts"]
    latency = row["latency"]
    assert latency["failed"] == 0
    assert latency["all"]["count"] == row["num_requests"]
    assert latency["burst"]["count"] + latency["steady"]["count"] == row["num_requests"]
    assert latency["all"]["p50_ms"] > 0.0
    queue = row["queue"]
    assert queue["completed"] >= row["num_requests"]
    assert queue["rejected"] == 0 and queue["expired"] == 0
    assert queue["stolen"] >= 0


def test_server_chaos_row(engine_report):
    """The chaos row: a worker crash mid-trace must not lose a request.

    Runs in tier-1 smoke mode too, so the fault injector, the retrying
    queue and the fleet's dead-replica retirement path cannot rot.  The
    plan hard-kills worker 0 on its first served batch, so the chaos
    replay is guaranteed to exercise a retry and a retirement — yet every
    future must still resolve (goodput degrades; correctness does not),
    and the float64 twin proves the retried responses stay bitwise-equal
    to per-call serving.
    """
    row = engine_report["end_to_end"]["server_sharded_chaos_fp32"]
    assert row["router"] == "least_loaded"
    assert row["num_replicas"] >= 2 and row["num_requests"] >= 1
    assert row["fault_plan"]["worker_crash_at"] == 1
    assert row["retry"]["max_attempts"] >= 2
    clean, chaos = row["clean"], row["chaos"]
    # Fault-free pass: nothing retries, nothing dies.
    assert clean["failed"] == 0
    assert clean["retry_attempts"] == 0 and clean["replicas_retired"] == 0
    assert clean["completed"] == row["num_requests"]
    # Chaos pass: the crash fires (a retirement and at least one retried
    # batch) but zero futures are lost.
    assert chaos["failed"] == 0
    assert chaos["completed"] == row["num_requests"]
    assert chaos["retry_attempts"] >= 1
    assert chaos["replicas_retired"] >= 1
    assert row["goodput_ratio"] > 0
    assert row["p99_degradation_x"] >= 0
    # Retry idempotency: re-dispatched float64 batches are bitwise-equal
    # to per-call serving.
    assert row["chaos64_failed"] == 0
    assert row["cached_float64_bitwise_equal"]


@pytest.mark.benchmark(group="engine")
def test_session_ragged_throughput(benchmark, engine_registry):
    """InferenceSession serving a ragged request list at the mode's shape."""
    shapes = regression.FULL_SHAPES if FULL_MODE else regression.SMOKE_SHAPES
    model = regression.build_engine(shapes, "fp32", compute_dtype="float32")
    session = regression.InferenceSession.from_model(
        model,
        spec=regression.BackendSpec.nn_lut(),
        registry=engine_registry,
        max_batch_size=shapes.batch_size * 4,
    )
    rng = np.random.default_rng(2)
    lengths = regression.ragged_request_lengths(shapes, num_requests=8)
    requests = [rng.integers(0, shapes.vocab_size, size=length) for length in lengths]
    outputs = benchmark(session.forward, requests)
    assert [o.shape[0] for o in outputs] == lengths
