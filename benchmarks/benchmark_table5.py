"""Table 5: system-level cycle breakdown and NN-LUT speedup over I-BERT."""

import pytest

from repro.experiments.table5 import PAPER_SPEEDUPS, run_table5


@pytest.mark.benchmark(group="table5")
def test_table5_system_performance(benchmark):
    result = benchmark(run_table5)
    print("\n" + result.report())
    speedups = result.speedups()
    for sequence_length, paper_value in PAPER_SPEEDUPS.items():
        assert speedups[sequence_length] == pytest.approx(paper_value, abs=0.05)
