"""Figure 2: operator-level approximation accuracy (NN-LUT vs Linear-LUT)."""

import pytest

from repro.experiments.figure2 import run_figure2


@pytest.mark.benchmark(group="figure2")
def test_figure2_operator_accuracy(benchmark, bench_registry):
    result = benchmark.pedantic(
        lambda: run_figure2(registry=bench_registry), iterations=1, rounds=1
    )
    print("\n" + result.report())
    errors = result.errors
    # Reproduction checks: NN-LUT clearly better on the wide-dynamic-range ops.
    assert errors["NN-LUT"]["softmax"] < errors["Linear-LUT"]["softmax"]
    assert errors["NN-LUT"]["layernorm"] < errors["Linear-LUT"]["layernorm"]
