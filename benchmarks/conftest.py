"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints the
reproduced rows (so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
report generator for EXPERIMENTS.md), while pytest-benchmark records the
runtime of the regeneration itself.

``benchmark_engine.py`` is special-cased into plain test collection below so
the tier-1 run (``pytest -x -q`` from the repository root) always executes
its smoke mode — tiny shapes, single repeats — and the engine benchmark
can never silently rot.  ``BENCH_ENGINE_FULL=1`` (see ``scripts/bench.sh``)
switches it to the full BERT-base-shaped run that regenerates
``BENCH_engine.json``.
"""

from __future__ import annotations

import pytest

from repro.core.registry import LutRegistry
from repro.experiments.common import ExperimentScale

#: benchmark_* files don't match pytest's default test-file glob; these are
#: collected anyway so they run (in smoke mode) as part of tier-1.
TIER1_BENCHMARK_FILES = {"benchmark_engine.py"}


def pytest_collect_file(file_path, parent):
    if file_path.name not in TIER1_BENCHMARK_FILES:
        return None
    # When the file is named explicitly on the command line pytest already
    # collects it; collecting here too would run every test twice.
    for arg in parent.config.invocation_params.args:
        if str(arg).split("::")[0].endswith(file_path.name):
            return None
    return pytest.Module.from_parent(parent, path=file_path)


@pytest.fixture(scope="session")
def bench_registry() -> LutRegistry:
    """Shared fitted-primitive registry so tables are fitted exactly once."""
    return LutRegistry()


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Scale used for the software-accuracy benchmarks (see EXPERIMENTS.md)."""
    return ExperimentScale(
        num_train=160,
        num_test=96,
        sequence_length=48,
        glue_tasks=("MRPC", "RTE", "CoLA", "SST-2", "STS-B", "QQP", "MNLI", "QNLI"),
    )


@pytest.fixture(scope="session")
def small_scale() -> ExperimentScale:
    """Reduced scale for the heavier sweeps (per-operator Table 2a variants)."""
    return ExperimentScale(
        num_train=96,
        num_test=64,
        sequence_length=48,
        glue_tasks=("MRPC", "CoLA", "SST-2", "STS-B"),
    )
