"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints the
reproduced rows (so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
report generator for EXPERIMENTS.md), while pytest-benchmark records the
runtime of the regeneration itself.
"""

from __future__ import annotations

import pytest

from repro.core.registry import LutRegistry
from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="session")
def bench_registry() -> LutRegistry:
    """Shared fitted-primitive registry so tables are fitted exactly once."""
    return LutRegistry()


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Scale used for the software-accuracy benchmarks (see EXPERIMENTS.md)."""
    return ExperimentScale(
        num_train=160,
        num_test=96,
        sequence_length=48,
        glue_tasks=("MRPC", "RTE", "CoLA", "SST-2", "STS-B", "QQP", "MNLI", "QNLI"),
    )


@pytest.fixture(scope="session")
def small_scale() -> ExperimentScale:
    """Reduced scale for the heavier sweeps (per-operator Table 2a variants)."""
    return ExperimentScale(
        num_train=96,
        num_test=64,
        sequence_length=48,
        glue_tasks=("MRPC", "CoLA", "SST-2", "STS-B"),
    )
