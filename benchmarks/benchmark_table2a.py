"""Table 2(a): direct approximation of non-linear ops on the FP32 model."""

import numpy as np
import pytest

from repro.experiments.table2 import run_table2a


@pytest.mark.benchmark(group="table2a")
def test_table2a_direct_approximation(benchmark, bench_registry, small_scale):
    result = benchmark.pedantic(
        lambda: run_table2a(scale=small_scale, registry=bench_registry),
        iterations=1,
        rounds=1,
    )
    print("\n" + result.report())
    scores = result.scores
    baseline = np.mean(list(scores["Baseline"].values()))
    nn_all = np.mean(list(scores["NN-LUT Altogether"].values()))
    linear_all = np.mean(list(scores["Linear-LUT Altogether"].values()))
    # Paper shape: NN-LUT tracks the baseline; Linear-LUT falls behind NN-LUT.
    assert abs(baseline - nn_all) < 10.0
    assert nn_all > linear_all - 2.0
