"""Concurrent serving: a SessionPool behind a batch-coalescing ServingQueue.

Builds a pool of replica inference sessions over one shared frozen encoder,
starts the scheduler, and fires mixed-length traffic at it from several
client threads — then prints the latency/throughput digest and verifies that
pooled concurrent serving reproduces single-session serving bit for bit
(float64 engine, exact-length bucketing).

Run with:  python examples/serving_demo.py
"""

import threading

import numpy as np

import example_utils
from repro.api import (
    AutoscalerConfig,
    BackendSpec,
    DeadlineExceededError,
    InferenceSession,
    QueueFullError,
    ServingQueue,
    SessionConfig,
    SessionPool,
)


def main() -> None:
    registry = example_utils.example_registry()
    config = SessionConfig(
        model_family="tiny" if example_utils.SMOKE else "roberta",
        compute_dtype="float64",  # bitwise parity with per-call serving
        max_batch_size=8,
    )

    # 1. One frozen model, N replica sessions: the weights and their one-time
    #    preparation are shared; each replica owns its batching buffers and
    #    backend, so they can serve simultaneously from threads.
    pool = SessionPool(
        config, spec=BackendSpec.nn_lut(), registry=registry, num_replicas=2
    )
    print(
        f"SessionPool: {pool.num_replicas} replicas over one "
        f"{pool.model.config.name!r} model "
        f"({pool.model.num_parameters():,} shared parameters)"
    )

    # 2. Mixed-length traffic from concurrent closed-loop clients.
    rng = np.random.default_rng(0)
    num_clients, requests_per_client = 4, 6 if example_utils.SMOKE else 12
    traffic = [
        [
            rng.integers(0, 100, size=int(length))
            for length in rng.choice((6, 10, 14, 22), size=requests_per_client)
        ]
        for _ in range(num_clients)
    ]
    results: list = [None] * num_clients

    with ServingQueue(pool, max_wait_ms=5.0, max_queue_depth=256) as queue:

        def client(c: int) -> None:
            results[c] = [queue.serve_one(tokens, timeout=120) for tokens in traffic[c]]

        threads = [
            threading.Thread(target=client, args=(c,)) for c in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = queue.stats()

    print(
        f"\nServed {stats.completed} requests from {num_clients} client threads "
        f"(router={stats.router}):"
        f"\n  latency    p50 {stats.p50_latency_ms:.1f} ms | "
        f"p99 {stats.p99_latency_ms:.1f} ms | mean {stats.mean_latency_ms:.1f} ms"
        f"\n  throughput {stats.throughput_rps:.0f} req/s over "
        f"{stats.batches} coalesced batches "
        f"(mean batch size {stats.mean_batch_size:.1f})"
        f"\n  queue      max depth seen {stats.max_queue_depth_seen}, "
        f"rejected {stats.rejected}, expired {stats.expired}"
    )
    for replica in stats.replicas:
        print(
            f"  replica {replica.replica_id}: {replica.batches_served} batches, "
            f"{replica.completed} requests, {replica.stolen} stolen"
        )

    # 3. Parity: every concurrently-served result equals single-session
    #    serving bit for bit on the float64 engine.
    single = InferenceSession.from_model(
        pool.model, spec=pool.spec, registry=registry, max_batch_size=8
    )
    mismatches = sum(
        not np.array_equal(result, expected)
        for c in range(num_clients)
        for result, expected in zip(results[c], single.forward(traffic[c]))
    )
    print(
        f"\nBitwise parity vs single-session serving: "
        f"{'OK' if mismatches == 0 else f'{mismatches} MISMATCHES'}"
    )

    # 4. Overload behaviour: a full queue rejects instead of growing without
    #    bound, and a request whose deadline lapses is never half-served.
    tight = ServingQueue(pool, max_queue_depth=2, start=False)
    tight.submit(traffic[0][0])
    expiring = tight.submit(traffic[0][1], deadline_ms=0.0)
    try:
        tight.submit(traffic[0][2])
    except QueueFullError as exc:
        print(f"\nOverload: {exc}")
    tight.start()
    try:
        expiring.result(timeout=120)
    except DeadlineExceededError as exc:
        print(f"Deadline: {exc}")
    tight.close()

    # 5. Autoscaling episode: a queue constructed below its configured
    #    min_replicas scales up on the first tick; sustained idleness then
    #    builds down-pressure until the fleet sheds back to the floor.  The
    #    ticks are driven manually here so the demo is deterministic.
    small = SessionPool.from_model(
        pool.model, spec=pool.spec, registry=registry,
        num_replicas=1, max_batch_size=8,
    )
    autoscaled = ServingQueue(
        small,
        max_wait_ms=5.0,
        router="least_loaded",
        autoscale=AutoscalerConfig(
            min_replicas=2, max_replicas=3, interval_s=60.0, patience=2
        ),
    )
    try:
        print(f"\nAutoscaler episode (router={autoscaled.stats().router}):")
        for _ in range(2):
            decision = autoscaled.autoscaler.step()
            print(
                f"  tick: {decision.action:>4} "
                f"[{decision.live_replicas} live] {decision.reason}"
                f"{' -> applied' if decision.applied else ''}"
            )
        episode = [d.action for d in autoscaled.autoscaler.episodes()]
        print(
            f"  fleet now {autoscaled.stats().live_replicas} replicas "
            f"(episode: {' -> '.join(episode)})"
        )
    finally:
        autoscaled.close()


if __name__ == "__main__":
    main()
