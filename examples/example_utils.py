"""Shared helpers for the example scripts.

Every example honours ``EXAMPLES_SMOKE=1`` (set by ``scripts/run_examples.sh``
and the tier-1 pytest shim): smoke mode shrinks the LUT fitting budget and
the synthetic-task sizes so the whole example suite runs in CI time while
still exercising every code path.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.core.registry import LutRegistry, default_registry
from repro.core.training import TrainingConfig

#: True when the caller asked for the CI-sized run.
SMOKE = os.environ.get("EXAMPLES_SMOKE", "") == "1"

#: Reduced-cost fitting configuration for smoke runs (still 16-entry tables).
SMOKE_TRAINING_CONFIG = TrainingConfig(
    hidden_size=15,
    num_samples=8_000,
    batch_size=2048,
    epochs=30,
    learning_rate=1e-3,
    seed=0,
    num_restarts=1,
)


def training_config() -> TrainingConfig | None:
    """Fitting configuration for this run (None = library default)."""
    return SMOKE_TRAINING_CONFIG if SMOKE else None


def example_registry() -> LutRegistry:
    """A fitted-primitive registry sized for this run."""
    if SMOKE:
        return LutRegistry(training_config=SMOKE_TRAINING_CONFIG)
    return default_registry()


def glue_sizes() -> Dict[str, int]:
    """Synthetic GLUE task sizes for this run."""
    if SMOKE:
        return {"num_train": 64, "num_test": 32, "sequence_length": 24}
    return {"num_train": 192, "num_test": 96, "sequence_length": 48}
