"""Figure-2 style comparison: NN-LUT vs Linear-LUT on GELU / Softmax / LayerNorm.

Run with:  python examples/operator_accuracy.py
"""

import example_utils
from repro.analysis import operator_error_curve, operator_error_summary
from repro.analysis.reporting import format_mapping_table
from repro.baselines import linear_lut_for


def main() -> None:
    registry = example_utils.example_registry()
    primitives = ("gelu", "exp", "reciprocal", "rsqrt")
    nn_lut = {name: registry.lut(name, num_entries=16) for name in primitives}
    linear = {name: linear_lut_for(name, num_entries=16) for name in primitives}

    summary = operator_error_summary({"NN-LUT": nn_lut, "Linear-LUT": linear})
    print("Mean L1 error per Transformer operator (16-entry tables)\n")
    print(format_mapping_table(summary, row_label="method", float_format="{:.4f}"))

    # Dump one curve in CSV form so it can be plotted externally.
    curve = operator_error_curve("gelu", nn_lut, method="NN-LUT", num_points=21)
    print("\nGELU approximation curve (x, reference, NN-LUT, |error|):")
    for x, ref, approx, err in zip(
        curve.inputs, curve.reference, curve.approximation, curve.error
    ):
        print(f"{x:7.3f}, {ref:8.4f}, {approx:8.4f}, {err:8.5f}")


if __name__ == "__main__":
    main()
