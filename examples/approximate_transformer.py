"""Replace every non-linear operation of a Transformer and measure the impact.

This mirrors the Table-2 protocol on synthetic GLUE tasks, entirely through
the serving API: each scenario is a declarative ``BackendSpec``, the scores
come from the same frozen model + heads, and the final section serves a
ragged request mix through a prepared ``InferenceSession``.

Run with:  python examples/approximate_transformer.py
"""

import numpy as np

import example_utils
from repro.api import BackendSpec, InferenceSession, SessionConfig
from repro.tasks import GlueBenchmark


def main() -> None:
    registry = example_utils.example_registry()
    config = SessionConfig(model_family="roberta", model_size="small", seed=3)
    model = config.build_model()
    benchmark = GlueBenchmark.build(
        model,
        task_names=["SST-2", "MRPC"],
        seed=0,
        spec_overrides=example_utils.glue_sizes(),
    )

    specs = {
        "Baseline (exact FP32)": BackendSpec.exact(),
        "NN-LUT (all ops)": BackendSpec.nn_lut(),
        "NN-LUT (LayerNorm only)": BackendSpec.nn_lut(replace=["layernorm"]),
        "Linear-LUT (all ops)": BackendSpec.linear_lut(),
        "I-BERT": BackendSpec.ibert(),
    }
    print(f"Model: {model.config.name}, {model.num_parameters():,} parameters")
    print(f"{'backend':28s} " + " ".join(f"{task:>8s}" for task in benchmark.tasks))
    for name, spec in specs.items():
        scores = benchmark.score_all(spec, registry=registry)
        print(f"{name:28s} " + " ".join(f"{scores[task]:8.1f}" for task in benchmark.tasks))

    # Serving-grade entry point: the same model + NN-LUT spec prepared once,
    # then fed a ragged mix of request lengths (dynamically micro-batched).
    session = InferenceSession.from_model(
        model, spec=BackendSpec.nn_lut(), registry=registry, max_batch_size=8
    )
    rng = np.random.default_rng(0)
    requests = [
        rng.integers(0, model.config.vocab_size, size=length)
        for length in (12, 31, 12, 24, 7, 31, 31, 12)
    ]
    pooled = session.pooled(requests)
    print(
        f"\nInferenceSession served {len(requests)} ragged requests "
        f"(lengths {sorted({r.size for r in requests})}) -> pooled {pooled.shape}"
    )


if __name__ == "__main__":
    main()
