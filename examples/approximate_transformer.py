"""Replace every non-linear operation of a Transformer and measure the impact.

This mirrors the Table-2 protocol on one synthetic GLUE task: fit the task
head with exact operators, then evaluate the same frozen model with NN-LUT,
Linear-LUT and I-BERT backends.

Run with:  python examples/approximate_transformer.py
"""

from repro.tasks import GlueBenchmark
from repro.transformer import (
    RobertaLikeModel,
    exact_backend,
    ibert_backend,
    linear_lut_backend,
    nn_lut_backend,
)


def main() -> None:
    model = RobertaLikeModel.build(seed=3)
    benchmark = GlueBenchmark.build(
        model,
        task_names=["SST-2", "MRPC"],
        seed=0,
        spec_overrides={"num_train": 192, "num_test": 96, "sequence_length": 48},
    )

    backends = {
        "Baseline (exact FP32)": exact_backend(),
        "NN-LUT (all ops)": nn_lut_backend(),
        "NN-LUT (LayerNorm only)": nn_lut_backend(replace=["layernorm"]),
        "Linear-LUT (all ops)": linear_lut_backend(),
        "I-BERT": ibert_backend(),
    }
    print(f"Model: {model.config.name}, {model.num_parameters():,} parameters")
    print(f"{'backend':28s} " + " ".join(f"{task:>8s}" for task in benchmark.tasks))
    for name, backend in backends.items():
        scores = benchmark.score_all(backend)
        print(f"{name:28s} " + " ".join(f"{scores[task]:8.1f}" for task in benchmark.tasks))


if __name__ == "__main__":
    main()
