"""Chaos serving: a worker crash mid-run that callers never see.

Arms the fault-injection subsystem (``repro.api.faults``) with a seeded
``FaultPlan`` that hard-kills worker 0 (``os._exit``) on its second served
batch, then drives a sharded pool through a ``ServingQueue`` configured
with a retry policy and per-replica circuit breakers.  The crash fires
mid-traffic: the fleet retires the dead worker, the orphaned batch is
re-routed to the survivor after a short backoff, and every submitted
request still completes.  Because a forward is a pure function of the
request tokens and the frozen replica state (the retry-idempotency
contract), the float64 responses — including the retried ones — stay
bitwise-equal to single-session serving.

Run with:  python examples/chaos_demo.py
"""

import numpy as np

import example_utils
from repro.api import (
    BackendSpec,
    FaultPlan,
    InferenceSession,
    RetryPolicy,
    ServingQueue,
    SessionConfig,
    ShardedPool,
    inject,
)


def main() -> None:
    registry = example_utils.example_registry()
    config = SessionConfig(
        model_family="tiny" if example_utils.SMOKE else "roberta",
        compute_dtype="float64",  # bitwise parity with per-call serving
        max_batch_size=4,
    )
    spec = BackendSpec.nn_lut()

    rng = np.random.default_rng(23)
    requests = [
        rng.integers(0, 100, size=int(length))
        for length in rng.choice((5, 8, 12, 17), size=12)
    ]

    # 1. The fault plan: worker 0 exits the hard way (os._exit, no cleanup,
    # no goodbye) while serving its 2nd batch.  Deterministic given the
    # seed, so this demo replays exactly.  The injector must be armed
    # before the pool spawns — worker-side faults ship with the worker
    # init payload.
    plan = FaultPlan(worker_crash_at=2, crash_worker_index=0)
    print(f"armed: {plan}")
    with inject(plan):
        pool = ShardedPool(config, spec=spec, registry=registry, num_replicas=2)
        print(
            f"ShardedPool: {pool.num_replicas} worker processes "
            f"(pids {[client.process.pid for client in pool.sessions]})"
        )
        with pool:
            # 2. Retries + breakers: a batch whose dispatch dies retryably
            # is re-routed to a survivor after exponential backoff; a
            # replica that keeps failing is ejected (breaker open) and
            # probed again after a cooldown.
            with ServingQueue(
                pool,
                max_wait_ms=5.0,
                retry=RetryPolicy(max_attempts=3, backoff_base_s=0.02),
            ) as queue:
                served = queue.serve(requests, timeout=300)
                stats = queue.stats()

    # 3. What happened: the crash cost a retirement and a retry, not a
    # single lost request.
    print(
        f"served {stats.completed}/{len(requests)} requests "
        f"({stats.failed} failed) through a mid-run worker crash"
    )
    print(
        f"  retries: {stats.retry_attempts} dispatch attempt(s) re-routed, "
        f"{stats.retried_requests} request(s) retried"
    )
    print(
        f"  fleet: {stats.replicas_retired} replica retired, "
        f"{len(stats.replicas)} still live"
    )
    for replica in stats.replicas:
        print(
            f"  replica {replica.replica_id}: {replica.completed} requests, "
            f"{replica.errors} errors, breaker {replica.breaker_state} "
            f"(service EWMA {replica.service_ewma_ms:.1f} ms)"
        )

    # 4. The retry-idempotency contract, checked: responses (retried ones
    # included) are bitwise-equal to a fresh single session on the same
    # config/spec/registry.
    single = InferenceSession(config, spec=spec, registry=registry)
    oracle = single.forward(requests)
    mismatches = sum(
        not np.array_equal(a, b) for a, b in zip(served, oracle)
    )
    print(
        f"Bitwise parity vs single-session serving: "
        f"{'OK' if mismatches == 0 else f'{mismatches} MISMATCHES'}"
    )


if __name__ == "__main__":
    main()
