"""Dataset-free calibration demo (paper Sec. 3.3.3).

The generic 1/sqrt table is trained on (0.1, 1024), but a specific model site
only ever sees variances in a narrow band.  Calibrating the table on a few
unlabelled activations recovers most of the approximation error.

Run with:  python examples/calibration_demo.py
"""

import numpy as np

from repro.core import (
    CalibrationConfig,
    LutLayerNorm,
    InputScaler,
    calibrate_lut,
    default_registry,
    functions,
)


def main() -> None:
    registry = default_registry()
    primitive = registry.get("rsqrt", num_entries=16)

    # The "deployed model": LayerNorm inputs whose variance sits in (1, 20).
    rng = np.random.default_rng(0)
    activations = rng.normal(0.0, 2.0, size=(256, 128))
    reference = functions.layer_norm(activations)

    direct = LutLayerNorm(primitive.lut, scaler=InputScaler())
    direct_error = np.mean(np.abs(direct(activations) - reference))

    # Dataset-free calibration: re-fit the table on the variances the model
    # actually produces (no labels involved).
    variances = np.var(activations, axis=-1) + 1e-5
    calibrated_lut = calibrate_lut(
        primitive.network,
        functions.rsqrt,
        variances,
        config=CalibrationConfig(epochs=5),
        name="rsqrt",
    )
    calibrated = LutLayerNorm(calibrated_lut, scaler=InputScaler())
    calibrated_error = np.mean(np.abs(calibrated(activations) - reference))

    print(f"LayerNorm mean L1 error, direct approximation : {direct_error:.4f}")
    print(f"LayerNorm mean L1 error, after calibration    : {calibrated_error:.4f}")
    print(f"Error reduced by {100 * (1 - calibrated_error / max(direct_error, 1e-12)):.0f}%")


if __name__ == "__main__":
    main()
