"""Dataset-free calibration demo (paper Sec. 3.3.3).

The generic 1/sqrt table is trained on (0.1, 1024), but a specific model site
only ever sees variances in a narrow band.  Calibrating the table on a few
unlabelled activations recovers most of the approximation error.

Part one shows the operator-level effect; part two runs the same workflow
end to end through ``InferenceSession.calibrate`` — record what the deployed
model actually computes, re-fit the flagged tables, swap them in.

Run with:  python examples/calibration_demo.py
"""

import numpy as np

import example_utils
from repro.api import BackendSpec, InferenceSession, SessionConfig
from repro.core import (
    CalibrationConfig,
    LutLayerNorm,
    InputScaler,
    calibrate_lut,
    functions,
)


def main() -> None:
    registry = example_utils.example_registry()
    primitive = registry.get("rsqrt", num_entries=16)

    # The "deployed model": LayerNorm inputs whose variance sits in (1, 20).
    rng = np.random.default_rng(0)
    activations = rng.normal(0.0, 2.0, size=(256, 128))
    reference = functions.layer_norm(activations)

    direct = LutLayerNorm(primitive.lut, scaler=InputScaler())
    direct_error = np.mean(np.abs(direct(activations) - reference))

    # Dataset-free calibration: re-fit the table on the variances the model
    # actually produces (no labels involved).
    variances = np.var(activations, axis=-1) + 1e-5
    calibrated_lut = calibrate_lut(
        primitive.network,
        functions.rsqrt,
        variances,
        config=CalibrationConfig(epochs=5),
        name="rsqrt",
    )
    calibrated = LutLayerNorm(calibrated_lut, scaler=InputScaler())
    calibrated_error = np.mean(np.abs(calibrated(activations) - reference))

    print(f"LayerNorm mean L1 error, direct approximation : {direct_error:.4f}")
    print(f"LayerNorm mean L1 error, after calibration    : {calibrated_error:.4f}")
    print(f"Error reduced by {100 * (1 - calibrated_error / max(direct_error, 1e-12)):.0f}%")

    # End-to-end: the same workflow as a one-call session method.  The spec
    # flags LayerNorm for calibration; `calibrate` records unlabelled traffic,
    # re-fits the 1/sqrt table and swaps it into the serving backend.
    spec = BackendSpec.nn_lut().with_calibration("layernorm")
    config = SessionConfig(model_family="tiny", compute_dtype="float64")
    session = InferenceSession(config, spec=spec, registry=registry)
    exact = InferenceSession(config, spec=BackendSpec.exact(), registry=registry)

    samples = [rng.integers(0, 100, size=length) for length in (10, 16, 10, 24, 16, 12)]
    pooled_reference = exact.pooled(samples)
    before = np.mean(np.abs(session.pooled(samples) - pooled_reference))
    calibrated_tables = session.calibrate(samples)
    after = np.mean(np.abs(session.pooled(samples) - pooled_reference))
    print(
        f"\nInferenceSession.calibrate re-fitted {sorted(calibrated_tables)} "
        f"on {len(samples)} unlabelled sequences"
    )
    print(f"pooled-output L1 error vs exact backend: {before:.5f} -> {after:.5f} "
          f"(backend now: {session.backend.name})")


if __name__ == "__main__":
    main()
