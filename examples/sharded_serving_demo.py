"""Multi-process sharded serving: a ShardedPool of worker-process replicas.

Builds a pool whose replicas run in worker *processes* — each reconstructs
its InferenceSession from the serializable SessionConfig/BackendSpec payloads
and maps the frozen encoder's weights read-only out of shared memory, so the
weight bytes are paid once per machine no matter how many replicas serve.
Requests and results cross the process boundary through the zero-copy
``shm_ring`` transport: packed token batches ride a preallocated
shared-memory request ring, hidden-state rows are written straight into the
response ring, and the pipe is only a doorbell (plus the fallback for
anything the rings cannot hold).  The ServingQueue then runs on top of it
completely unchanged, and the demo verifies that sharded serving reproduces
single-session serving bit for bit (float64 engine, exact-length bucketing).

Run with:  python examples/sharded_serving_demo.py
"""

import numpy as np

import example_utils
from repro.api import (
    BackendSpec,
    InferenceSession,
    ServingQueue,
    SessionConfig,
    ShardedPool,
)


def main() -> None:
    registry = example_utils.example_registry()
    config = SessionConfig(
        model_family="tiny" if example_utils.SMOKE else "roberta",
        compute_dtype="float64",  # bitwise parity with per-call serving
        max_batch_size=8,
    )
    spec = BackendSpec.nn_lut()

    # 1. Spin up worker-process replicas on the zero-copy transport.  The
    # parent fits the LUT tables and builds the frozen model once; workers
    # get the weights through shared memory, the backend recipe through the
    # serializable spec, and hot-path traffic through shared-memory rings.
    pool = ShardedPool(
        config, spec=spec, registry=registry, num_replicas=2,
        transport="shm_ring",
    )
    print(
        f"ShardedPool[{pool.transport_name}]: {pool.num_replicas} worker "
        f"processes (pids {[client.process.pid for client in pool.sessions]}) "
        f"over one {pool.model.config.name!r} model — "
        f"{pool.shared_weight_bytes:,} bytes of weights in shared memory"
    )

    rng = np.random.default_rng(0)
    requests = [
        rng.integers(0, 100, size=int(length))
        for length in rng.choice((6, 10, 14, 22), size=12)
    ]

    with pool:
        # 2. Direct pool serving: deterministic micro-batch -> worker sharding.
        sharded = pool.forward(requests)

        # 3. The batch-coalescing scheduler runs unchanged on the sharded
        # pool — same knobs, same deadlines/overload behaviour.  Its stats
        # split latency into queue-wait vs service time, so the IPC cost of
        # the process boundary reads directly off the service number.  The
        # least-loaded router places each batch on the worker with the least
        # outstanding token cost (placement varies run to run; float64
        # results never do — every worker serves the same frozen model).
        with ServingQueue(
            pool, max_wait_ms=5.0, max_queue_depth=256, router="least_loaded"
        ) as queue:
            queued = queue.serve(requests, timeout=300)
            stats = queue.stats()
        print(
            f"ServingQueue over ShardedPool (router={stats.router}): "
            f"{stats.completed} served, "
            f"mean batch {stats.mean_batch_size:.1f}, "
            f"p50 {stats.p50_latency_ms:.1f} ms / p99 {stats.p99_latency_ms:.1f} ms "
            f"(queue-wait {stats.mean_queue_wait_ms:.1f} ms + "
            f"service {stats.mean_service_ms:.1f} ms)"
        )
        for replica in stats.replicas:
            print(
                f"  replica {replica.replica_id}: "
                f"{replica.batches_served} batches, "
                f"{replica.completed} requests, {replica.stolen} stolen"
            )

        # 4. How the traffic actually routed: forward batches and their
        # results ride the rings; only control messages took the pipe.
        for client in pool.sessions:
            print(
                f"  worker {client.index} transport: "
                f"{client.transport.stats['ring_requests']} ring / "
                f"{client.transport.stats['pipe_requests']} pipe requests"
            )

    # 5. Parity: a fresh single session from the same config/spec/registry
    # builds the same frozen model (same seed) — sharded serving must match
    # it bit for bit on the float64 engine, whatever the transport.
    single = InferenceSession(config, spec=spec, registry=registry)
    oracle = single.forward(requests)
    mismatches = sum(
        not (np.array_equal(a, b) and np.array_equal(q, b))
        for a, q, b in zip(sharded, queued, oracle)
    )
    print(
        f"Bitwise parity vs single-session serving: "
        f"{'OK' if mismatches == 0 else f'{mismatches} MISMATCHES'}"
    )


if __name__ == "__main__":
    main()
