"""Quickstart: fit an NN-LUT, convert it, and use it as a drop-in GELU.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import LutGelu, fit_lut, functions, lut_matches_network


def main() -> None:
    # 1. Fit a one-hidden-layer ReLU network to GELU and convert it to a
    #    16-entry look-up table (paper Sec. 3.2, Table 1 recipe).
    primitive = fit_lut("gelu", num_entries=16)
    lut = primitive.lut
    print(f"Fitted GELU NN-LUT: {lut.num_entries} entries, "
          f"final L1 loss {primitive.training_result.final_loss:.4f}")

    # 2. The conversion is exact: the network and the table agree everywhere.
    exact_equivalence = lut_matches_network(primitive.network, lut, primitive.input_range)
    print(f"NN(x) == LUT(x) on the training range: {exact_equivalence}")

    # 3. Use the table as a drop-in replacement of GELU.
    gelu_op = LutGelu(lut)
    x = np.linspace(-6, 6, 13)
    approx = gelu_op(x)
    exact = functions.gelu(x)
    print(f"{'x':>6} {'GELU':>9} {'NN-LUT':>9} {'error':>9}")
    for xi, e, a in zip(x, exact, approx):
        print(f"{xi:6.1f} {e:9.4f} {a:9.4f} {abs(e - a):9.5f}")

    # 4. Inspect the learned table (breakpoints concentrate where GELU bends).
    print("\nBreakpoints:", np.round(lut.breakpoints, 3))
    print("Slopes     :", np.round(lut.slopes, 3))


if __name__ == "__main__":
    main()
