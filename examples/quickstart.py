"""Quickstart: fit an NN-LUT, use it as a drop-in GELU, then serve with it.

Run with:  python examples/quickstart.py
"""

import numpy as np

import example_utils
from repro.api import BackendSpec, InferenceSession, SessionConfig
from repro.core import LutGelu, fit_lut, functions, lut_matches_network


def main() -> None:
    # 1. Fit a one-hidden-layer ReLU network to GELU and convert it to a
    #    16-entry look-up table (paper Sec. 3.2, Table 1 recipe).
    primitive = fit_lut("gelu", num_entries=16, config=example_utils.training_config())
    lut = primitive.lut
    print(f"Fitted GELU NN-LUT: {lut.num_entries} entries, "
          f"final L1 loss {primitive.training_result.final_loss:.4f}")

    # 2. The conversion is exact: the network and the table agree everywhere.
    exact_equivalence = lut_matches_network(primitive.network, lut, primitive.input_range)
    print(f"NN(x) == LUT(x) on the training range: {exact_equivalence}")

    # 3. Use the table as a drop-in replacement of GELU.
    gelu_op = LutGelu(lut)
    x = np.linspace(-6, 6, 13)
    approx = gelu_op(x)
    exact = functions.gelu(x)
    print(f"{'x':>6} {'GELU':>9} {'NN-LUT':>9} {'error':>9}")
    for xi, e, a in zip(x, exact, approx):
        print(f"{xi:6.1f} {e:9.4f} {a:9.4f} {abs(e - a):9.5f}")

    # 4. Inspect the learned table (breakpoints concentrate where GELU bends).
    print("\nBreakpoints:", np.round(lut.breakpoints, 3))
    print("Slopes     :", np.round(lut.slopes, 3))

    # 5. Serve with it: declare the scenario as a BackendSpec and prepare an
    #    InferenceSession once — it batches ragged requests dynamically.
    session = InferenceSession(
        SessionConfig(model_family="tiny"),
        spec=BackendSpec.nn_lut(),
        registry=example_utils.example_registry(),
    )
    rng = np.random.default_rng(0)
    requests = [rng.integers(0, 100, size=length) for length in (6, 14, 6, 10)]
    hidden = session.forward(requests)
    print(
        f"\nInferenceSession ({session.backend.name}) served "
        f"{len(requests)} ragged requests -> shapes {[h.shape for h in hidden]}"
    )


if __name__ == "__main__":
    main()
