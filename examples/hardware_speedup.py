"""Hardware evaluation demo: Table 4 unit costs and Table 5 system speedup.

Run with:  python examples/hardware_speedup.py
"""

from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5


def main() -> None:
    print(run_table4().report())
    print()
    result = run_table5()
    print(result.report())
    speedups = result.speedups()
    print(
        f"\nNN-LUT end-to-end speedup over I-BERT grows from "
        f"{speedups[16]:.2f}x at sequence length 16 to {speedups[1024]:.2f}x at 1024."
    )


if __name__ == "__main__":
    main()
